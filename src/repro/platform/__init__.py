"""repro.platform -- processors, platforms and platform scheduling policies.

The platform model of the execution layer: :class:`Processor` (exact
rational speed factor, optional power weights), :class:`Platform`
(homogeneous or heterogeneous processor sets with optional task affinity)
and the :class:`PlatformPolicy` protocol whose decisions are *(task,
processor, start | preempt | resume)* triples rather than the legacy
boolean start-gate.

Built-in policies:

* degenerate re-expressions of the legacy policies, with bit-identical
  traces: :class:`SelfTimedPlatform`, :class:`ListScheduledPlatform`,
  :class:`StaticOrderPlatform`,
* the new capabilities they unlock: :class:`FixedPriorityPreemptive`
  (suspend/resume with exact remaining-work re-posting) and
  :class:`PartitionedHeterogeneous` (pinned tasks on mixed-speed
  processors).

Plumbing: ``Simulation(..., platform=...)`` / ``run_tasks(...,
platform=...)`` accept a :class:`Platform` (its :meth:`Platform.policy`
default) or any policy instance via ``scheduler=``/``policy=``;
``Analysis.run(platform=...)`` and the ``"platform"`` sweep axis expose the
same knob through the facade, and platforms are plain picklable data so
heterogeneous speedup grids run on the process sweep backend.
"""

from repro.platform.model import Platform, Processor
from repro.platform.policies import (
    FixedPriorityPreemptive,
    ListScheduledPlatform,
    PartitionedHeterogeneous,
    PlatformDecision,
    PlatformPolicy,
    PlatformPolicyBase,
    SelfTimedPlatform,
    StaticOrderPlatform,
)

__all__ = [
    "FixedPriorityPreemptive",
    "ListScheduledPlatform",
    "PartitionedHeterogeneous",
    "Platform",
    "PlatformDecision",
    "PlatformPolicy",
    "PlatformPolicyBase",
    "Processor",
    "SelfTimedPlatform",
    "StaticOrderPlatform",
]
