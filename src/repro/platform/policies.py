"""Platform scheduling policies: decisions are (task, processor, action).

The legacy :class:`~repro.engine.policies.SchedulerPolicy` protocol is a
boolean start-gate -- it can say *whether* an eligible task may start, but
not *where* it runs, and it cannot express "this firing is suspended with
three ticks of work left on processor 2".  The platform protocol replaces
the boolean with a :class:`PlatformDecision`: which processor the firing
occupies, and optionally which in-flight firing is preempted to make room.
The execution engine performs the mechanics (cancelling and re-posting
completion events, tracking remaining work, per-processor busy accounting);
the policy only decides.

Policies
--------
* :class:`SelfTimedPlatform` -- one virtual processor per task; the
  degenerate re-expression of
  :class:`~repro.engine.policies.SelfTimedUnbounded` (bit-identical traces).
* :class:`ListScheduledPlatform` -- greedy list scheduling: first free
  processor in platform order.  On a homogeneous platform this re-expresses
  :class:`~repro.engine.policies.BoundedProcessors` bit-identically; on a
  heterogeneous platform it is speed-aware greedy scheduling (fastest-first
  when the platform lists fast processors first).
* :class:`StaticOrderPlatform` -- a fixed (cyclic) firing sequence on a
  single processor; re-expresses
  :class:`~repro.engine.policies.StaticOrder`, optionally on a scaled
  processor.
* :class:`FixedPriorityPreemptive` -- preemptive fixed-priority scheduling:
  an eligible task preempts the lowest-priority running firing when no
  processor is free and that firing's priority is strictly lower.  Priorities
  default to registration (extraction) order; lower value = higher priority.
* :class:`PartitionedHeterogeneous` -- non-migrating partitioned scheduling:
  every task is pinned to one processor (explicit mapping, the platform's
  affinity table, or round-robin by default) and runs to completion there at
  the processor's speed.

Every policy is picklable before binding (module-level key functions, plain
data), so platform policies travel as sweep axes to worker processes; the
engine binds them to the task fleet in ``wire_buffers``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.engine.policies import _task_name
from repro.platform.model import Platform, Processor
from repro.util.validation import require

if TYPE_CHECKING:  # annotations only -- the engine imports nothing from here
    from repro.runtime.tasks import RuntimeTask


@dataclass(frozen=True)
class PlatformDecision:
    """One scheduling decision: start (or resume) on *processor*, after
    suspending *preempt* (when set, an in-flight lower-priority firing whose
    remaining work the engine re-posts on resume)."""

    processor: Processor
    preempt: Optional["RuntimeTask"] = None


@runtime_checkable
class PlatformPolicy(Protocol):
    """The rich scheduling protocol of the platform layer.

    The engine detects platform policies by the presence of
    ``decide_start`` (duck-typed, so :mod:`repro.engine` never imports this
    package); legacy boolean policies keep their original dispatch path
    untouched.
    """

    platform: Platform

    def bind(self, tasks: Sequence["RuntimeTask"]) -> None:
        """Resolve task-dependent state (priorities, affinity, virtual
        processors).  Called by the engine once the fleet is registered."""
        ...

    def decide_start(self, task: "RuntimeTask") -> Optional[PlatformDecision]:
        """Where may this *eligible* task start a fresh firing right now?
        ``None`` keeps it queued."""
        ...

    def decide_resume(self, task: "RuntimeTask") -> Optional[PlatformDecision]:
        """Where may this *suspended* firing continue right now?"""
        ...

    def on_start(self, task: "RuntimeTask", processor: Processor) -> None: ...

    def on_preempt(self, task: "RuntimeTask", processor: Processor) -> None: ...

    def on_resume(self, task: "RuntimeTask", processor: Processor) -> None: ...

    def on_complete(self, task: "RuntimeTask", processor: Processor) -> None: ...

    def reset(self) -> None: ...


class PlatformPolicyBase:
    """Shared bookkeeping: which task occupies which processor.

    Subclasses implement :meth:`decide_start` (and, for preemptive policies,
    :meth:`decide_resume`); the engine drives the ``on_*`` notifications,
    which maintain the occupancy table here.
    """

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        #: processor name -> the task whose firing currently occupies it
        self._running: Dict[str, "RuntimeTask"] = {}
        self._tasks: Tuple["RuntimeTask", ...] = ()

    # ------------------------------------------------------------------ bind
    @property
    def processors(self) -> Tuple[Processor, ...]:
        """The concrete processor set scheduling runs on (after bind for
        virtual platforms)."""
        return self.platform.processors

    @property
    def migrates_across_speeds(self) -> bool:
        """True when a suspended firing may resume on a different-speed
        processor.  Rescaled remainders (``remaining * s1 / s2``) are not
        closed under any finite tick grid, so the automatic time-base
        selection must fall back to exact fractions for such policies."""
        return False

    def bind(self, tasks: Sequence["RuntimeTask"]) -> None:
        self._tasks = tuple(tasks)
        self._bound()

    def _bound(self) -> None:
        """Subclass hook run after :meth:`bind` stored the fleet."""

    # -------------------------------------------------------------- decisions
    def first_free(self) -> Optional[Processor]:
        for processor in self.processors:
            if processor.name not in self._running:
                return processor
        return None

    def decide_start(self, task: "RuntimeTask") -> Optional[PlatformDecision]:
        raise NotImplementedError

    def decide_resume(self, task: "RuntimeTask") -> Optional[PlatformDecision]:
        """Non-preemptive policies never suspend, so a resume request can
        only be a protocol misuse."""
        raise RuntimeError(
            f"{type(self).__name__} never preempts; there is no firing to resume"
        )

    # ---------------------------------------------------------- notifications
    def on_start(self, task: "RuntimeTask", processor: Processor) -> None:
        self._running[processor.name] = task

    def on_preempt(self, task: "RuntimeTask", processor: Processor) -> None:
        if self._running.get(processor.name) is task:
            del self._running[processor.name]

    def on_resume(self, task: "RuntimeTask", processor: Processor) -> None:
        self._running[processor.name] = task

    def on_complete(self, task: "RuntimeTask", processor: Processor) -> None:
        if self._running.get(processor.name) is task:
            del self._running[processor.name]

    def reset(self) -> None:
        self._running.clear()

    def steady_state_key(self) -> tuple:
        """Hashable occupancy summary for the steady-state detector.

        The *insertion order* of the occupancy table is part of the key, not
        just its contents: :class:`FixedPriorityPreemptive` scans the table
        in that order when selecting a preemption victim, so two states with
        equal contents but different order can schedule differently.
        """
        return tuple((name, task.producer_key()) for name, task in self._running.items())


class SelfTimedPlatform(PlatformPolicyBase):
    """Self-timed execution on virtually unbounded hardware: every task owns
    its own processor, so an eligible task always starts immediately.

    The degenerate platform re-expression of
    :class:`~repro.engine.policies.SelfTimedUnbounded` -- traces are
    bit-identical (regression-asserted).  Per-task processors are
    materialised at bind time and named by the task's producer key, so the
    per-processor busy accounting doubles as per-task busy accounting.
    """

    def __init__(self, platform: Optional[Platform] = None) -> None:
        platform = platform if platform is not None else Platform.unbounded()
        require(platform.is_unbounded, "SelfTimedPlatform runs on Platform.unbounded()")
        super().__init__(platform)
        self._processor_of: Dict["RuntimeTask", Processor] = {}
        self._virtual: Tuple[Processor, ...] = ()

    @property
    def processors(self) -> Tuple[Processor, ...]:
        return self._virtual

    def _bound(self) -> None:
        self._processor_of = {
            task: Processor(task.producer_key()) for task in self._tasks
        }
        self._virtual = tuple(self._processor_of[task] for task in self._tasks)

    def decide_start(self, task: "RuntimeTask") -> Optional[PlatformDecision]:
        return PlatformDecision(self._processor_of[task])

    def steady_state_key(self) -> tuple:
        # One virtual processor per task: the occupancy table mirrors the
        # tasks' busy flags, which the detector's state key already covers.
        return ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SelfTimedPlatform()"


class ListScheduledPlatform(PlatformPolicyBase):
    """Greedy list scheduling: an eligible task takes the first free
    processor in platform order (tasks are offered in static order, the
    classical list-scheduling priority).

    On ``Platform.homogeneous(n)`` this re-expresses
    :class:`~repro.engine.policies.BoundedProcessors` with bit-identical
    traces; on a heterogeneous platform the processor *order* becomes the
    allocation preference (list fast processors first to keep them busy).
    """

    def __init__(self, platform: Platform) -> None:
        require(not platform.is_unbounded, "ListScheduledPlatform needs concrete processors")
        super().__init__(platform)

    def decide_start(self, task: "RuntimeTask") -> Optional[PlatformDecision]:
        processor = self.first_free()
        return PlatformDecision(processor) if processor is not None else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ListScheduledPlatform({self.platform.name!r})"


class StaticOrderPlatform(PlatformPolicyBase):
    """A fixed (cyclic) firing sequence on one processor -- the platform
    re-expression of :class:`~repro.engine.policies.StaticOrder`, with the
    same one-shot and stale-completion semantics, optionally on a scaled
    processor (a generated sequential schedule on slower silicon)."""

    def __init__(
        self,
        order: Sequence[str],
        *,
        cyclic: bool = True,
        key: Optional[Callable[["RuntimeTask"], str]] = None,
        platform: Optional[Platform] = None,
    ) -> None:
        platform = platform if platform is not None else Platform.homogeneous(1)
        require(len(platform) == 1, "StaticOrderPlatform schedules a single processor")
        require(len(order) > 0, "a static-order schedule needs at least one entry")
        super().__init__(platform)
        self.order: List[str] = list(order)
        self.cyclic = cyclic
        self.position = 0
        self._key = key if key is not None else _task_name

    def current(self) -> Optional[str]:
        if not self.cyclic and self.position >= len(self.order):
            return None
        return self.order[self.position % len(self.order)]

    def decide_start(self, task: "RuntimeTask") -> Optional[PlatformDecision]:
        processor = self.first_free()
        if processor is None:
            return None
        if task.one_shot or self._key(task) == self.current():
            return PlatformDecision(processor)
        return None

    def on_complete(self, task: "RuntimeTask", processor: Processor) -> None:
        if self._running.get(processor.name) is not task:
            # stale completion of a run stopped mid-flight: do not advance
            # the schedule past entries that never ran
            return
        super().on_complete(task, processor)
        if not task.one_shot:
            self.position += 1

    def reset(self) -> None:
        super().reset()
        self.position = 0

    def steady_state_key(self) -> tuple:
        position = self.position % len(self.order) if self.cyclic else self.position
        return super().steady_state_key() + (position,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StaticOrderPlatform({len(self.order)} firings, cyclic={self.cyclic})"


class FixedPriorityPreemptive(PlatformPolicyBase):
    """Preemptive fixed-priority scheduling on a shared processor set.

    Every task has a static priority (lower value = higher priority;
    unlisted tasks default to their registration index, which is the
    extraction order -- the engine's documented static priority order).  An
    eligible task takes a free processor when one exists; otherwise it
    preempts the lowest-priority running firing *iff* that firing's priority
    is strictly lower than its own.  Preempted firings keep their consumed
    inputs and resume -- possibly on a different processor -- with exactly
    the remaining work re-posted by the engine; a suspended high-priority
    firing may itself preempt a lower-priority one to resume.

    On heterogeneous platforms a migrated resume rescales the remaining
    work by the speed ratio.  Rescaled remainders are not representable on
    any finite tick grid in general, so on multi-speed platforms this
    policy reports :attr:`migrates_across_speeds` and ``time_base="auto"``
    falls back to exact fractions (observationally identical); an
    *explicitly* requested tick base is honoured and raises
    :class:`~repro.util.rational.TimeBaseError` if a migrated remainder
    falls off the grid.
    """

    def __init__(
        self,
        platform: Platform,
        *,
        priorities: Optional[Mapping[str, int]] = None,
        key: Optional[Callable[["RuntimeTask"], str]] = None,
    ) -> None:
        require(not platform.is_unbounded, "FixedPriorityPreemptive needs concrete processors")
        super().__init__(platform)
        self.priorities: Dict[str, int] = dict(priorities or {})
        self._key = key if key is not None else _task_name
        #: task -> (priority value, registration index): total order, ties
        #: broken by registration so victim selection is deterministic
        self._rank: Dict["RuntimeTask", Tuple[int, int]] = {}

    def _bound(self) -> None:
        self._rank = {
            task: (self.priorities.get(self._key(task), index), index)
            for index, task in enumerate(self._tasks)
        }

    def rank_of(self, task: "RuntimeTask") -> Tuple[int, int]:
        return self._rank[task]

    @property
    def migrates_across_speeds(self) -> bool:
        return len(set(self.platform.speeds)) > 1

    def _decide(self, task: "RuntimeTask") -> Optional[PlatformDecision]:
        processor = self.first_free()
        if processor is not None:
            return PlatformDecision(processor)
        victim_name = None
        victim_rank = self.rank_of(task)
        for name, running in self._running.items():
            rank = self.rank_of(running)
            if rank > victim_rank:
                victim_name, victim_rank = name, rank
        if victim_name is None:
            return None
        return PlatformDecision(
            self.platform.processor(victim_name), preempt=self._running[victim_name]
        )

    decide_start = _decide
    decide_resume = _decide

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FixedPriorityPreemptive({self.platform.name!r}, "
            f"{len(self.priorities)} explicit priorities)"
        )


class PartitionedHeterogeneous(PlatformPolicyBase):
    """Non-migrating partitioned scheduling on a (possibly heterogeneous)
    processor set: every task is pinned to one processor and its firings run
    there to completion at the processor's speed.

    The pin comes from *mapping* (task key -> processor name), falling back
    to the platform's affinity table, falling back to round-robin over the
    processors in registration order.  This is the classical partitioned
    model: a firing never migrates, so heterogeneous speeds stay exact under
    integer-tick time bases (each task only ever schedules
    ``wcet / speed(pin)``).
    """

    def __init__(
        self,
        platform: Platform,
        *,
        mapping: Optional[Mapping[str, str]] = None,
        key: Optional[Callable[["RuntimeTask"], str]] = None,
    ) -> None:
        require(not platform.is_unbounded, "PartitionedHeterogeneous needs concrete processors")
        super().__init__(platform)
        self.mapping: Dict[str, str] = dict(mapping if mapping is not None else platform.mapping)
        for task_key, processor_name in self.mapping.items():
            platform.processor(processor_name)  # raises KeyError with context
        self._key = key if key is not None else _task_name
        self._processor_of: Dict["RuntimeTask", Processor] = {}

    def _bound(self) -> None:
        processors = self.platform.processors
        self._processor_of = {}
        for index, task in enumerate(self._tasks):
            pinned = self.mapping.get(self._key(task))
            if pinned is None:
                pinned = self.mapping.get(task.producer_key())
            if pinned is not None:
                self._processor_of[task] = self.platform.processor(pinned)
            else:
                self._processor_of[task] = processors[index % len(processors)]

    def processor_of(self, task: "RuntimeTask") -> Processor:
        """The processor *task* is pinned to (after bind)."""
        return self._processor_of[task]

    def decide_start(self, task: "RuntimeTask") -> Optional[PlatformDecision]:
        processor = self._processor_of[task]
        if processor.name in self._running:
            return None
        return PlatformDecision(processor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionedHeterogeneous({self.platform.name!r}, "
            f"{len(self.mapping)} pinned)"
        )
