"""Processors and platforms: the hardware model scheduling policies run on.

The paper's speedup experiments (Fig. 4) assume identical processors and
run-to-completion firings.  This module generalises that into an explicit
platform model:

* :class:`Processor` -- one processing element with an exact rational *speed
  factor* (a firing of response time ``wcet`` takes ``wcet / speed`` seconds
  on it) and optional power weights for energy accounting,
* :class:`Platform` -- an ordered set of processors plus an optional
  task-to-processor *mapping* (affinity) for partitioned schedules.

Platforms are plain, immutable-by-convention data: every field is picklable,
so a platform travels as a :class:`~repro.api.sweep.Sweep` run axis to worker
processes (heterogeneous speedup grids run on the process backend).  The
policies that schedule on a platform live in
:mod:`repro.platform.policies`; :meth:`Platform.policy` builds the natural
default (partitioned when a mapping is present, greedy list scheduling
otherwise).

Exactness contract: speed factors are rationals, and scaled firing durations
(``wcet / speed``) join the simulator's duration set, so integer-tick runs
stay exact on heterogeneous platforms (see ``Simulation._duration_set``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.util.rational import Rat, RationalLike, as_rational
from repro.util.validation import check_positive, require


@dataclass(frozen=True)
class Processor:
    """One processing element of a platform.

    ``speed`` is an exact rational factor relative to the reference
    processor: a firing whose response time is ``wcet`` seconds occupies this
    processor for ``wcet / speed`` seconds.  ``power_active`` /
    ``power_idle`` are optional dimensionless weights (e.g. Watts) that turn
    the per-processor busy-time accounting into an energy estimate
    (:meth:`repro.api.program.RunResult.processor_energy`) -- they do not
    influence scheduling.
    """

    name: str
    speed: Rat = Fraction(1)
    power_active: Optional[float] = None
    power_idle: Optional[float] = None

    def __post_init__(self) -> None:
        require(bool(self.name), "a processor needs a non-empty name")
        speed = as_rational(self.speed)
        if speed <= 0:
            raise ValueError(f"processor {self.name!r}: speed must be positive, got {speed}")
        object.__setattr__(self, "speed", speed)

    def duration_of(self, wcet: RationalLike) -> Rat:
        """Exact occupancy time of a firing with response time *wcet*."""
        return as_rational(wcet) / self.speed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.speed == 1:
            return f"Processor({self.name!r})"
        return f"Processor({self.name!r}, speed={self.speed})"


class Platform:
    """An ordered set of processors, optionally with a task affinity mapping.

    ``mapping`` binds task keys (bare task names by default; policies may use
    ``producer_key()`` form) to processor names -- the partitioned-schedule
    input of :class:`~repro.platform.policies.PartitionedHeterogeneous`.
    Processor order is meaningful: policies allocate the first free processor
    in platform order, so listing a fast processor first makes greedy
    policies prefer it.

    Construction helpers cover the common shapes: :meth:`homogeneous` (the
    Fig. 4 identical-processor axis), :meth:`heterogeneous` (arbitrary speed
    sets, e.g. one fast core plus N slow ones) and :meth:`unbounded` (the
    virtual one-processor-per-task hardware of self-timed analysis).
    """

    def __init__(
        self,
        processors: Iterable[Processor],
        *,
        mapping: Optional[Mapping[str, str]] = None,
        name: Optional[str] = None,
    ) -> None:
        self.processors: Tuple[Processor, ...] = tuple(processors)
        names = [processor.name for processor in self.processors]
        require(len(set(names)) == len(names), "processor names must be unique")
        self.mapping: Dict[str, str] = dict(mapping or {})
        self._by_name: Dict[str, Processor] = {p.name: p for p in self.processors}
        for task_key, processor_name in self.mapping.items():
            if processor_name not in self._by_name:
                raise ValueError(
                    f"platform mapping binds task {task_key!r} to unknown "
                    f"processor {processor_name!r}"
                )
        self.name = name if name is not None else self._default_name()

    def _default_name(self) -> str:
        if not self.processors:
            return "unbounded"
        speeds = sorted({p.speed for p in self.processors}, reverse=True)
        if len(speeds) == 1:
            suffix = "" if speeds[0] == 1 else f"@{speeds[0]}"
            return f"{len(self.processors)}x{suffix}"
        return f"{len(self.processors)}p-hetero"

    # ------------------------------------------------------------ constructors
    @classmethod
    def homogeneous(
        cls, count: int, *, speed: RationalLike = 1, name: Optional[str] = None
    ) -> "Platform":
        """*count* identical processors ``p0 .. p{count-1}``."""
        check_positive(count, "count")
        factor = as_rational(speed)
        return cls(
            (Processor(f"p{i}", speed=factor) for i in range(count)), name=name
        )

    @classmethod
    def heterogeneous(
        cls,
        speeds: Sequence[RationalLike],
        *,
        mapping: Optional[Mapping[str, str]] = None,
        name: Optional[str] = None,
    ) -> "Platform":
        """One processor per entry of *speeds*, named ``p0 .. pN`` in order."""
        require(len(speeds) > 0, "a heterogeneous platform needs at least one speed")
        return cls(
            (Processor(f"p{i}", speed=as_rational(s)) for i, s in enumerate(speeds)),
            mapping=mapping,
            name=name,
        )

    @classmethod
    def unbounded(cls) -> "Platform":
        """The virtual unbounded-parallel hardware: no concrete processor
        set; a self-timed policy materialises one processor per task."""
        return cls((), name="unbounded")

    # ---------------------------------------------------------------- queries
    @property
    def is_unbounded(self) -> bool:
        return not self.processors

    def __len__(self) -> int:
        return len(self.processors)

    def __iter__(self):
        return iter(self.processors)

    def processor(self, name: str) -> Processor:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"platform {self.name!r} has no processor {name!r}; "
                f"available: {sorted(self._by_name)}"
            ) from None

    @property
    def speeds(self) -> Tuple[Rat, ...]:
        return tuple(p.speed for p in self.processors)

    def total_speed(self) -> Rat:
        """Aggregate processing capacity: the sum of all speed factors.  A
        program whose total utilisation exceeds it cannot be scheduled
        without deadline misses (the ``platform.overutilised`` pre-flight
        rule checks exactly this)."""
        return sum((p.speed for p in self.processors), Fraction(0))

    def scaled_durations(self, durations: Iterable[RationalLike]) -> list:
        """Every ``duration / speed`` a firing on this platform can take --
        the extra entries the simulator's tick-base derivation must cover."""
        values = [as_rational(d) for d in durations]
        return [d / speed for speed in set(self.speeds) for d in values]

    # ----------------------------------------------------------------- policy
    def policy(self):
        """The natural default scheduling policy of this platform.

        Partitioned (affinity-respecting) when a mapping is present,
        self-timed for the unbounded virtual platform, greedy list scheduling
        on the concrete processor set otherwise.
        """
        from repro.platform.policies import (
            ListScheduledPlatform,
            PartitionedHeterogeneous,
            SelfTimedPlatform,
        )

        if self.is_unbounded:
            return SelfTimedPlatform(self)
        if self.mapping:
            return PartitionedHeterogeneous(self)
        return ListScheduledPlatform(self)

    # ------------------------------------------------------------------ dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Platform):
            return NotImplemented
        return (
            self.processors == other.processors
            and self.mapping == other.mapping
            and self.name == other.name
        )

    def __hash__(self) -> int:
        return hash((self.processors, tuple(sorted(self.mapping.items())), self.name))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_unbounded:
            return "Platform.unbounded()"
        speeds = ", ".join(str(p.speed) for p in self.processors)
        mapped = f", mapping={len(self.mapping)} tasks" if self.mapping else ""
        return f"Platform({self.name!r}: speeds [{speeds}]{mapped})"
