"""Stream-access chains of the CTA derivation (Sec. V-B.3, Fig. 9).

Each stream a sequential module receives or produces must be accessed
strictly periodically with the stream's rate.  Because the statements
accessing a stream may sit in different while-loops (which execute an unknown
number of iterations), the derivation adds:

* an *input* and an *output* port for the stream on every component
  representing a while-loop or a module -- the input port receives the rate
  constraint from the enclosing level and the output port passes it on,
* one *stream access component* per access inside a loop (the ``w0x``/``w1x``
  components of Fig. 9b), chained in the order defined by the sequential
  program with a rate-dependent delay of one period (``1/r``) from each
  access to the next component,
* a back edge from each output port to the corresponding input port whose
  delay is the negated sum of the forward delays inside, which turns the
  minimum-delay chain into a strict periodicity constraint,
* loops that do not access the stream are traversed with a one-period
  transition delay (the worst case assumed by the abstraction of Sec. III-B:
  a mode transition occurs after every execution of all statements of a
  loop).

The helpers in this module operate on a single stream of a single sequential
module; :mod:`repro.core.loops` drives them for all streams and loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.cta.model import BufferParameter, Component, PortRef


@dataclass
class StreamInterface:
    """The pair of module-level ports representing one stream parameter."""

    name: str
    is_output: bool
    entry: PortRef  # receives data / the rate constraint from the parent level
    exit: PortRef   # returns space / the rate constraint to the parent level
    #: values the module makes available before its steady-state loops start
    #: (written by initialisation statements); they become initial tokens of
    #: the FIFO this stream is bound to
    initial_tokens: int = 0
    #: largest number of values transferred in one access at this boundary
    #: (a lower bound on any FIFO capacity this stream is bound to)
    transfer_count: int = 1


@dataclass
class AccessSite:
    """The access of a stream inside one loop.

    ``task_components`` are all task components of the loop that touch the
    stream.  Several guarded statements writing the same output stream (the
    Fig. 4 pattern) -- or several statements reading the same input stream --
    still transfer only ``count`` values per loop iteration: only the last
    written value becomes visible, and repeated reads observe the same values
    (Sec. IV-A).  The single access component therefore connects to *all*
    these task components but contributes one access worth of values to the
    periodic chain.
    """

    task_components: List[Component]
    count: int
    is_output: bool


def ensure_stream_ports(component: Component, stream: str) -> Tuple[PortRef, PortRef]:
    """Add (idempotently) the ``<stream>.in`` / ``<stream>.out`` port pair."""
    in_name = f"{stream}.in"
    out_name = f"{stream}.out"
    if in_name not in component.ports:
        component.add_port(in_name, direction="in")
    if out_name not in component.ports:
        component.add_port(out_name, direction="out")
    return component.port_ref(in_name), component.port_ref(out_name)


def build_loop_chain(
    loop_component: Component,
    stream: str,
    sites: List[AccessSite],
    buffer_factory,
) -> int:
    """Wire the access chain of *stream* inside one loop component.

    Returns the number of one-period forward delays introduced (the amount the
    enclosing level must account for in its own back edge).  ``buffer_factory``
    is called with a suggested name and returns a fresh
    :class:`~repro.cta.model.BufferParameter` for the per-access distribution
    buffer.
    """
    loop_in, loop_out = ensure_stream_ports(loop_component, stream)

    if not sites:
        # No access in this loop: traverse it with a one-period transition
        # delay and enforce periodicity with the matching back edge.
        loop_component.connect(
            loop_in, loop_out, phi=1, purpose="periodicity", label=f"{stream}:transition"
        )
        loop_component.connect(
            loop_out, loop_in, phi=-1, purpose="periodicity", label=f"{stream}:period"
        )
        return 1

    previous_out: PortRef = loop_in
    forward_delays = 0
    for index, site in enumerate(sites):
        access = loop_component.new_component(f"{stream}.access{index}", kind="stream-access")
        access.metadata["stream"] = stream
        access.metadata["count"] = site.count
        access_in = access.add_port("in", direction="in")
        access_out = access.add_port("out", direction="out")
        access_in_ref = access.port_ref("in")
        access_out_ref = access.port_ref("out")

        # Chain: previous component -> this access (one period after the first
        # access, zero delay from the loop input port).
        phi_in = 0 if index == 0 else 1
        if phi_in:
            forward_delays += 1
        loop_component.connect(
            previous_out,
            access_in_ref,
            phi=phi_in,
            purpose="periodicity",
            label=f"{stream}:chain{index}",
        )
        # Through the access component itself.
        access.connect(access_in_ref, access_out_ref, purpose="periodicity", label=f"{stream}:through{index}")

        # Distribution / combination buffer between the access component and
        # the accessing task(s) (b_x^i of Fig. 9).
        buffer = buffer_factory(f"{stream}.access{index}", site.count)
        for task_index, task in enumerate(site.task_components):
            take_port = task.port_ref(f"{stream}.take")
            give_port = task.port_ref(f"{stream}.give")
            if site.is_output:
                # Space flows from the access component to the task (bounded
                # by the buffer capacity); data flows from the task to the
                # access component, which forwards only the last written
                # values.
                loop_component.connect(
                    access_in_ref,
                    take_port,
                    buffer=buffer,
                    purpose="buffer",
                    label=f"{stream}:space{index}.{task_index}",
                )
                loop_component.connect(
                    give_port,
                    access_out_ref,
                    purpose="buffer-data",
                    label=f"{stream}:data{index}.{task_index}",
                )
            else:
                # Data flows from the access component to the task; space is
                # released back to the access component (bounded by the
                # capacity).
                loop_component.connect(
                    access_in_ref,
                    take_port,
                    purpose="buffer-data",
                    label=f"{stream}:data{index}.{task_index}",
                )
                loop_component.connect(
                    give_port,
                    access_in_ref,
                    buffer=buffer,
                    purpose="buffer",
                    label=f"{stream}:space{index}.{task_index}",
                )
        previous_out = access_out_ref

    # Last access to the loop output port: one period.
    loop_component.connect(
        previous_out, loop_out, phi=1, purpose="periodicity", label=f"{stream}:chain-out"
    )
    forward_delays += 1

    # Strict periodicity of the whole loop: back edge with the negated sum.
    loop_component.connect(
        loop_out,
        loop_in,
        phi=-forward_delays,
        purpose="periodicity",
        label=f"{stream}:period",
    )
    return forward_delays


def build_module_chain(
    module_component: Component,
    stream: str,
    loop_components: List[Tuple[Component, int]],
) -> Tuple[PortRef, PortRef]:
    """Chain the loop components of a module for *stream* (Fig. 9b, ``wA``).

    ``loop_components`` is the ordered list of (loop component, forward delays
    inside the loop).  Returns the module-level (entry, exit) ports.
    """
    module_in, module_out = ensure_stream_ports(module_component, stream)

    if not loop_components:
        module_component.connect(
            module_in, module_out, purpose="periodicity", label=f"{stream}:through"
        )
        return module_in, module_out

    previous_out = module_in
    total_forward = 0
    for loop_component, forward in loop_components:
        loop_in = loop_component.port_ref(f"{stream}.in")
        loop_out = loop_component.port_ref(f"{stream}.out")
        module_component.connect(
            previous_out, loop_in, purpose="periodicity", label=f"{stream}:enter-{loop_component.name}"
        )
        previous_out = loop_out
        total_forward += forward
    module_component.connect(
        previous_out, module_out, purpose="periodicity", label=f"{stream}:exit"
    )
    module_component.connect(
        module_out,
        module_in,
        phi=-total_forward,
        purpose="periodicity",
        label=f"{stream}:period",
    )
    return module_in, module_out
