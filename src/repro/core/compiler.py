"""The OIL compiler front: from OIL source text to an analysable CTA model.

This is the end-to-end pipeline of the paper:

1. parse the OIL program (:mod:`repro.lang.parser`),
2. validate the language rules (:mod:`repro.lang.semantics`),
3. extract a task graph from every sequential module
   (:mod:`repro.graph.extraction`) and assign worst-case response times to the
   coordinated functions,
4. derive the CTA model: task components (Figs. 7/8), while-loop and stream
   constructions (Fig. 9), parallel modules, FIFOs, sources, sinks and latency
   constraints (Fig. 10),
5. analyse: consistency / maximal achievable rates, buffer sizing, latency
   verification (Sec. V-A).

The result object bundles every intermediate artefact so that examples, tests
and benchmarks can inspect any stage of the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.core.modules import DerivationContext, DerivedInstance, build_parallel_module, instantiate_module
from repro.cta.buffer_sizing import BufferSizingResult, size_buffers
from repro.cta.consistency import ConsistencyResult, check_consistency
from repro.cta.latency import LatencyCheck, LatencyConstraint, add_latency_constraint, verify_latency
from repro.cta.model import BufferParameter, CTAModel, PortRef
from repro.graph.extraction import extract_task_graph
from repro.graph.taskgraph import TaskGraph
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.semantics import AnalyzedProgram, BlackBoxModule, analyze_program
from repro.util.rational import Rat, RationalLike, as_rational


@dataclass
class CompilationResult:
    """Everything the compiler produced for one OIL program."""

    program: ast.Program
    analysis: AnalyzedProgram
    task_graphs: Dict[str, TaskGraph]
    model: CTAModel
    root: DerivedInstance
    buffers: Dict[str, BufferParameter]
    latency_constraints: List[LatencyConstraint]
    source_ports: Dict[str, PortRef]
    sink_ports: Dict[str, PortRef]
    warnings: List[str] = field(default_factory=list)

    # ------------------------------------------------------------- analyses
    def check_consistency(self, *, assume_infinite_unsized: bool = True) -> ConsistencyResult:
        """Consistency / maximal achievable rates of the derived CTA model."""
        return check_consistency(self.model, assume_infinite_unsized=assume_infinite_unsized)

    def size_buffers(self, **kwargs) -> BufferSizingResult:
        """Determine sufficient capacities for every buffer of the model."""
        return size_buffers(self.model, **kwargs)

    def verify_latency(self, result: Optional[ConsistencyResult] = None) -> List[LatencyCheck]:
        """Check the program's latency constraints against computed offsets."""
        if result is None:
            result = self.check_consistency(assume_infinite_unsized=False)
        return verify_latency(result, self.latency_constraints)

    def buffer_capacities(self) -> Dict[str, Optional[int]]:
        """The currently assigned capacity of every buffer parameter."""
        return {name: parameter.value for name, parameter in sorted(self.buffers.items())}

    def report(self) -> str:
        """A human-readable compilation / analysis report."""
        from repro.core.report import compilation_report

        return compilation_report(self)


class OilCompiler:
    """Compiles OIL programs into CTA models.

    Parameters
    ----------
    function_wcets:
        Worst-case response times (seconds) per coordinated C/C++ function
        name.  The special key ``"__assignment__"`` provides the response time
        of assignment statements; ``default_wcet`` is used for unknown
        functions.
    black_boxes:
        Declarations of externally implemented modules (interface ports,
        firing duration, maximum rate).
    """

    def __init__(
        self,
        *,
        function_wcets: Optional[Mapping[str, RationalLike]] = None,
        black_boxes: Sequence[BlackBoxModule] = (),
        default_wcet: RationalLike = 0,
        default_black_box_duration: RationalLike = 0,
    ) -> None:
        self.function_wcets: Dict[str, Rat] = {
            name: as_rational(value) for name, value in (function_wcets or {}).items()
        }
        self.black_boxes: Dict[str, BlackBoxModule] = {box.name: box for box in black_boxes}
        self.default_wcet = as_rational(default_wcet)
        self.default_black_box_duration = as_rational(default_black_box_duration)

    # ------------------------------------------------------------------ steps
    def parse(self, source: Union[str, ast.Program]) -> ast.Program:
        if isinstance(source, ast.Program):
            return source
        return parse_program(source)

    def analyze(self, program: ast.Program) -> AnalyzedProgram:
        return analyze_program(program, list(self.black_boxes.values()), strict=True)

    def extract(self, program: ast.Program) -> Dict[str, TaskGraph]:
        graphs: Dict[str, TaskGraph] = {}
        for module in program.sequential_modules():
            graph = extract_task_graph(module)
            graph.set_firing_durations(self.function_wcets, default=self.default_wcet)
            graphs[module.name] = graph
        return graphs

    # ------------------------------------------------------------------ main
    def compile(
        self,
        source: Union[str, ast.Program],
        *,
        top: Optional[str] = None,
        model_name: str = "model",
    ) -> CompilationResult:
        """Run the full pipeline and return the :class:`CompilationResult`.

        ``top`` selects the module to instantiate as the application's root;
        by default the program's anonymous/unreferenced top-level parallel
        module is used, or the unique sequential module for single-module
        programs.
        """
        program = self.parse(source)
        analysis = self.analyze(program)
        task_graphs = self.extract(program)

        model = CTAModel(model_name)
        context = DerivationContext(
            program,
            task_graphs=task_graphs,
            black_boxes=self.black_boxes,
            default_black_box_duration=self.default_black_box_duration,
        )

        root_module = self._select_top(program, top)
        if isinstance(root_module, ast.ParallelModule):
            root = build_parallel_module(context, model, root_module, instance_name=root_module.name)
        else:
            root = instantiate_module(context, model, root_module.name)

        # Encode the latency constraints collected during derivation.
        for constraint in context.latency_constraints:
            add_latency_constraint(model, constraint)

        return CompilationResult(
            program=program,
            analysis=analysis,
            task_graphs=task_graphs,
            model=model,
            root=root,
            buffers=dict(context.buffers),
            latency_constraints=list(context.latency_constraints),
            source_ports=dict(context.source_ports),
            sink_ports=dict(context.sink_ports),
            warnings=list(context.warnings),
        )

    def _select_top(self, program: ast.Program, top: Optional[str]) -> ast.Module:
        if top is not None:
            return program.module(top)
        if program.main is not None:
            return program.main
        modules = program.modules
        if len(modules) == 1:
            return modules[0]
        raise ValueError(
            "cannot determine the top-level module: pass top=<module name> "
            f"(candidates: {[m.name for m in modules]})"
        )


def compile_program(
    source: Union[str, ast.Program],
    *,
    function_wcets: Optional[Mapping[str, RationalLike]] = None,
    black_boxes: Sequence[BlackBoxModule] = (),
    default_wcet: RationalLike = 0,
    top: Optional[str] = None,
) -> CompilationResult:
    """Convenience one-call front for :class:`OilCompiler`."""
    compiler = OilCompiler(
        function_wcets=function_wcets,
        black_boxes=black_boxes,
        default_wcet=default_wcet,
    )
    return compiler.compile(source, top=top)
