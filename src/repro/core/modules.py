"""CTA derivation for parallel OIL modules, sources, sinks and black boxes
(Sec. V-C, Fig. 10).

Every instantiation of a module is converted to a CTA component:

* sequential modules use the derivation of :mod:`repro.core.loops`,
* parallel modules get two ports per stream (modelling artifacts with an
  unbounded maximum rate); input streams are forwarded from the first port to
  every instantiated sub-component using the stream, with a reverse
  connection back to the second port (and symmetrically for output streams),
* FIFOs between module instantiations become two oppositely directed
  connections between the writer's and each reader's stream ports; the
  reverse connection carries the FIFO capacity as a rate-dependent delay
  ``-delta/r``,
* periodic sources and sinks become components with a data port pinned at
  their frequency and an internal connection with constant delay ``1/f``;
  their communication with modules is modelled exactly like FIFO
  communication,
* latency constraints between sources and sinks become single constraint
  connections between the corresponding components,
* registered black-box modules become single components built from their
  declared interface (ports with access counts, a firing duration and an
  optional maximum rate), exactly like a task component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.core.actor_to_cta import build_task_component
from repro.core.loops import DerivedSequentialModule, derive_sequential_module
from repro.core.streams import StreamInterface, ensure_stream_ports
from repro.cta.latency import LatencyConstraint, add_latency_constraint
from repro.cta.model import BufferParameter, Component, PortRef
from repro.graph.extraction import extract_task_graph
from repro.graph.taskgraph import Access, Task, TaskGraph
from repro.lang import ast
from repro.lang.semantics import BlackBoxModule
from repro.util.rational import Rat


@dataclass
class DerivedInstance:
    """One instantiated component plus its per-stream interface ports."""

    component: Component
    #: parameter name (of the instantiated module) -> interface
    interfaces: Dict[str, StreamInterface]
    buffers: Dict[str, BufferParameter] = field(default_factory=dict)
    warnings: List[str] = field(default_factory=list)
    #: for sequential modules: the task components (used by reports/tests)
    sequential: Optional[DerivedSequentialModule] = None


class DerivationContext:
    """Shared state of one program derivation."""

    def __init__(
        self,
        program: ast.Program,
        *,
        task_graphs: Dict[str, TaskGraph],
        black_boxes: Dict[str, BlackBoxModule],
        default_black_box_duration: Rat = Fraction(0),
    ) -> None:
        self.program = program
        self.task_graphs = task_graphs
        self.black_boxes = black_boxes
        self.default_black_box_duration = default_black_box_duration
        self.buffers: Dict[str, BufferParameter] = {}
        self.warnings: List[str] = []
        self.latency_constraints: List[LatencyConstraint] = []
        self.source_ports: Dict[str, PortRef] = {}
        self.sink_ports: Dict[str, PortRef] = {}
        self._instance_counter: Dict[str, int] = {}

    def instance_name(self, module_name: str) -> str:
        index = self._instance_counter.get(module_name, 0)
        self._instance_counter[module_name] = index + 1
        return module_name if index == 0 else f"{module_name}_{index + 1}"

    def register_buffers(self, buffers: Dict[str, BufferParameter]) -> None:
        self.buffers.update(buffers)


# --------------------------------------------------------------------------
# Sources, sinks, black boxes
# --------------------------------------------------------------------------

def build_source_component(
    parent: Component, decl: ast.SourceDecl, *, instance_name: Optional[str] = None
) -> DerivedInstance:
    """A periodic source: data output pinned at its frequency, internal
    connection with constant delay ``1/f`` (Sec. V-C)."""
    frequency = Fraction(decl.frequency_hz)
    component = parent.new_component(instance_name or f"src_{decl.name}", kind="source")
    component.metadata["function"] = decl.function
    component.metadata["frequency_hz"] = frequency
    component.add_port("in", direction="in", max_rate=frequency, fixed_rate=frequency)
    component.add_port("out", direction="out", max_rate=frequency, fixed_rate=frequency)
    component.connect(
        component.port_ref("in"),
        component.port_ref("out"),
        epsilon=Fraction(1) / frequency,
        purpose="firing",
        label=f"{decl.name}:period",
    )
    interface = StreamInterface(
        name=decl.name,
        is_output=True,
        entry=component.port_ref("in"),
        exit=component.port_ref("out"),
    )
    return DerivedInstance(component=component, interfaces={decl.name: interface})


def build_sink_component(
    parent: Component, decl: ast.SinkDecl, *, instance_name: Optional[str] = None
) -> DerivedInstance:
    """A periodic sink: data input pinned at its frequency, internal
    connection with constant delay ``1/f``."""
    frequency = Fraction(decl.frequency_hz)
    component = parent.new_component(instance_name or f"snk_{decl.name}", kind="sink")
    component.metadata["function"] = decl.function
    component.metadata["frequency_hz"] = frequency
    component.add_port("in", direction="in", max_rate=frequency, fixed_rate=frequency)
    component.add_port("out", direction="out", max_rate=frequency, fixed_rate=frequency)
    component.connect(
        component.port_ref("in"),
        component.port_ref("out"),
        epsilon=Fraction(1) / frequency,
        purpose="firing",
        label=f"{decl.name}:period",
    )
    interface = StreamInterface(
        name=decl.name,
        is_output=False,
        entry=component.port_ref("in"),
        exit=component.port_ref("out"),
    )
    return DerivedInstance(component=component, interfaces={decl.name: interface})


def build_black_box_component(
    parent: Component,
    box: BlackBoxModule,
    *,
    instance_name: Optional[str] = None,
    default_duration: Rat = Fraction(0),
) -> DerivedInstance:
    """A black-box module: a single task-style component built from the
    declared interface (access counts per port, firing duration, optional
    maximum rate).  This is how library components with temporal interfaces
    are composed (Sec. I / Sec. V-C)."""
    duration = box.firing_duration if box.firing_duration else default_duration
    task = Task(name=box.name, kind="call", function=box.name, firing_duration=duration)
    task.reads = [Access(port.name, port.count) for port in box.ports if not port.is_output]
    task.writes = [Access(port.name, port.count) for port in box.ports if port.is_output]
    component = build_task_component(task, parent, name=instance_name or box.name)
    component.kind = "black-box"
    component.metadata["black_box"] = box.name

    if box.max_rate is not None:
        for port in box.ports:
            for suffix in ("take", "give"):
                port_obj = component.ports[f"{port.name}.{suffix}"]
                cap = Fraction(box.max_rate) * port.count
                if port_obj.max_rate is None or cap < port_obj.max_rate:
                    port_obj.max_rate = cap

    interfaces: Dict[str, StreamInterface] = {}
    for port in box.ports:
        if port.is_output:
            entry = component.port_ref(f"{port.name}.take")   # space in
            exit_ = component.port_ref(f"{port.name}.give")   # data out
        else:
            entry = component.port_ref(f"{port.name}.take")   # data in
            exit_ = component.port_ref(f"{port.name}.give")   # space out
        interfaces[port.name] = StreamInterface(
            name=port.name,
            is_output=port.is_output,
            entry=entry,
            exit=exit_,
            transfer_count=port.count,
        )
    return DerivedInstance(component=component, interfaces=interfaces)


# --------------------------------------------------------------------------
# Module instantiation
# --------------------------------------------------------------------------

def instantiate_module(
    context: DerivationContext,
    parent: Component,
    module_name: str,
) -> DerivedInstance:
    """Instantiate *module_name* (sequential, parallel or black box) under
    *parent* and return the derived instance."""
    if module_name in context.black_boxes:
        instance = build_black_box_component(
            parent,
            context.black_boxes[module_name],
            instance_name=context.instance_name(module_name),
            default_duration=context.default_black_box_duration,
        )
        return instance

    module = context.program.module(module_name)
    if isinstance(module, ast.SequentialModule):
        graph = context.task_graphs[module_name]
        derived = derive_sequential_module(
            graph, parent, instance_name=context.instance_name(module_name)
        )
        context.register_buffers(derived.buffers)
        context.warnings.extend(derived.warnings)
        return DerivedInstance(
            component=derived.component,
            interfaces=derived.interfaces,
            buffers=derived.buffers,
            warnings=derived.warnings,
            sequential=derived,
        )
    if isinstance(module, ast.ParallelModule):
        return build_parallel_module(context, parent, module)
    raise TypeError(f"unknown module kind for {module_name!r}")  # pragma: no cover


def build_parallel_module(
    context: DerivationContext,
    parent: Component,
    module: ast.ParallelModule,
    *,
    instance_name: Optional[str] = None,
) -> DerivedInstance:
    """Derive the CTA component of a parallel module (Sec. V-C, Fig. 10)."""
    component = parent.new_component(
        instance_name or context.instance_name(module.name), kind="module-par"
    )
    component.metadata["module"] = module.name

    # Module-level stream ports (modelling artifacts, unbounded max rate).
    interfaces: Dict[str, StreamInterface] = {}
    for param in module.params:
        entry, exit_ = ensure_stream_ports(component, param.name)
        interfaces[param.name] = StreamInterface(
            name=param.name, is_output=param.is_output, entry=entry, exit=exit_
        )

    # Sources and sinks declared here.
    local_endpoints: Dict[str, DerivedInstance] = {}
    for source in module.sources:
        instance = build_source_component(component, source)
        local_endpoints[source.name] = instance
        context.source_ports[source.name] = instance.interfaces[source.name].exit
    for sink in module.sinks:
        instance = build_sink_component(component, sink)
        local_endpoints[sink.name] = instance
        context.sink_ports[sink.name] = instance.interfaces[sink.name].entry

    # Instantiate the called modules.
    instances: List[Tuple[ast.ModuleCall, DerivedInstance]] = []
    for call in module.calls:
        instance = instantiate_module(context, component, call.module)
        instances.append((call, instance))

    # Wire every stream: collect the writer interface and reader interfaces.
    stream_writers: Dict[str, List[StreamInterface]] = {}
    stream_readers: Dict[str, List[StreamInterface]] = {}

    def note(stream: str, interface: StreamInterface, is_writer: bool) -> None:
        (stream_writers if is_writer else stream_readers).setdefault(stream, []).append(interface)

    for source_name, instance in local_endpoints.items():
        interface = instance.interfaces[source_name]
        note(source_name, interface, is_writer=interface.is_output)

    for call, instance in instances:
        target = (
            context.black_boxes.get(call.module)
            or context.program.module(call.module)
        )
        params = (
            [(p.name, p.is_output) for p in target.ports]
            if isinstance(target, BlackBoxModule)
            else [(p.name, p.is_output) for p in target.params]
        )
        for (param_name, param_is_out), argument in zip(params, call.arguments):
            interface = instance.interfaces[param_name]
            note(argument.name, interface, is_writer=param_is_out)

    fifo_types = {f.name for f in module.fifos}
    declared_here = fifo_types | {s.name for s in module.sources} | {s.name for s in module.sinks}

    for stream, readers in stream_readers.items():
        writers = stream_writers.get(stream, [])
        if stream in declared_here or writers:
            _wire_buffered_stream(context, component, module, stream, writers, readers)
        else:
            # Input parameter of this module: forward the module ports.
            _wire_module_parameter(component, interfaces.get(stream), readers, is_output=False)

    for stream, writers in stream_writers.items():
        if stream in declared_here:
            continue
        if stream in stream_readers:
            continue  # already handled above
        # Output parameter written by a sub-component but not read locally.
        _wire_module_parameter(component, interfaces.get(stream), writers, is_output=True)

    # Latency constraints between sources and sinks.
    for constraint in module.latency_constraints:
        subject = context.source_ports.get(constraint.subject) or context.sink_ports.get(
            constraint.subject
        )
        reference = context.source_ports.get(constraint.reference) or context.sink_ports.get(
            constraint.reference
        )
        if subject is None or reference is None:
            context.warnings.append(
                f"latency constraint between {constraint.subject!r} and "
                f"{constraint.reference!r} skipped (undeclared endpoints)"
            )
            continue
        latency = LatencyConstraint(
            subject=subject,
            reference=reference,
            bound=Fraction(constraint.amount_seconds),
            kind=constraint.relation,
        )
        context.latency_constraints.append(latency)

    return DerivedInstance(component=component, interfaces=interfaces)


def _wire_buffered_stream(
    context: DerivationContext,
    component: Component,
    module: ast.ParallelModule,
    stream: str,
    writers: List[StreamInterface],
    readers: List[StreamInterface],
) -> None:
    """FIFO / source / sink communication: forward data connection plus a
    reverse connection carrying the capacity (Sec. V-C)."""
    if not writers or not readers:
        context.warnings.append(
            f"stream {stream!r} in module {module.name!r} has "
            f"{len(writers)} writer(s) and {len(readers)} reader(s); not wired"
        )
        return
    writer = writers[0]
    initial = writer.initial_tokens
    # The FIFO must at least hold the largest single transfer of any endpoint
    # (otherwise the implementation deadlocks regardless of timing) plus any
    # initially available values.
    minimum = max(
        [1, initial, writer.transfer_count] + [reader.transfer_count for reader in readers]
    )
    capacity = BufferParameter(f"{module.name}/{stream}", minimum=minimum)
    context.buffers[capacity.name] = capacity
    for reader in readers:
        component.connect(
            writer.exit,
            reader.entry,
            phi=-initial,
            purpose="buffer-data",
            label=f"{stream}:data",
        )
        component.connect(
            reader.exit,
            writer.entry,
            phi=initial,
            buffer=capacity,
            purpose="buffer",
            label=f"{stream}:space",
        )


def _wire_module_parameter(
    component: Component,
    interface: Optional[StreamInterface],
    inner: List[StreamInterface],
    *,
    is_output: bool,
) -> None:
    """Forward a module parameter's ports to the sub-components using it."""
    if interface is None:
        return
    # Propagate the boundary characteristics of the inner users so that the
    # enclosing level sizes its FIFOs correctly.
    if inner:
        interface.transfer_count = max(
            [interface.transfer_count] + [sub.transfer_count for sub in inner]
        )
        if is_output:
            interface.initial_tokens = max(
                [interface.initial_tokens] + [sub.initial_tokens for sub in inner]
            )
    for sub in inner:
        component.connect(
            interface.entry,
            sub.entry,
            purpose="periodicity",
            label=f"{interface.name}:forward",
        )
        component.connect(
            sub.exit,
            interface.exit,
            purpose="periodicity",
            label=f"{interface.name}:return",
        )
