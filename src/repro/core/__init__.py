"""The paper's primary contribution: deriving a CTA model from an OIL program.

* :mod:`repro.core.task_to_actor` -- task -> dataflow actor abstraction,
* :mod:`repro.core.actor_to_cta` -- actor -> CTA component (Figs. 7 and 8),
* :mod:`repro.core.loops` / :mod:`repro.core.streams` -- sequential modules,
  while-loop components and stream access chains (Fig. 9),
* :mod:`repro.core.modules` -- parallel modules, FIFOs, sources, sinks,
  black boxes and latency constraints (Fig. 10),
* :mod:`repro.core.compiler` -- the end-to-end pipeline,
* :mod:`repro.core.report` -- textual reports.
"""

from repro.core.task_to_actor import ActorEdge, TaskActor, task_to_actor
from repro.core.actor_to_cta import (
    ConnectionSpec,
    build_task_component,
    component_connection_table,
    multi_rate_table,
)
from repro.core.streams import AccessSite, StreamInterface
from repro.core.loops import DerivedSequentialModule, derive_sequential_module
from repro.core.modules import (
    DerivationContext,
    DerivedInstance,
    build_black_box_component,
    build_parallel_module,
    build_sink_component,
    build_source_component,
    instantiate_module,
)
from repro.core.compiler import CompilationResult, OilCompiler, compile_program
from repro.core.report import (
    buffer_report,
    compilation_report,
    consistency_report,
    latency_report,
)

__all__ = [
    "ActorEdge",
    "TaskActor",
    "task_to_actor",
    "ConnectionSpec",
    "build_task_component",
    "component_connection_table",
    "multi_rate_table",
    "AccessSite",
    "StreamInterface",
    "DerivedSequentialModule",
    "derive_sequential_module",
    "DerivationContext",
    "DerivedInstance",
    "build_black_box_component",
    "build_parallel_module",
    "build_sink_component",
    "build_source_component",
    "instantiate_module",
    "CompilationResult",
    "OilCompiler",
    "compile_program",
    "buffer_report",
    "compilation_report",
    "consistency_report",
    "latency_report",
]
