"""CTA derivation for sequential OIL modules (Sec. V-B, Fig. 9).

A sequential module is turned into a CTA component as follows:

* the module itself becomes a component with an input/output port pair per
  stream parameter,
* every top-level while-loop becomes a sub-component (tasks of nested loops
  are conservatively assigned to their outermost loop -- the paper's examples
  only use non-nested loops; a warning is recorded in the component metadata
  when flattening happens),
* every task (function call / assignment statement) becomes a sub-component
  of its loop, built with the Fig. 7/8 construction
  (:mod:`repro.core.actor_to_cta`),
* every module-local variable becomes a pair of connections (data and space)
  between its producer and consumer task components, carrying a
  :class:`~repro.cta.model.BufferParameter` for the capacity and the
  initially available values as a negative data delay,
* every stream parameter gets the access-chain construction of
  :mod:`repro.core.streams` with per-access distribution buffers.

Initialization statements (outside every loop, e.g. the ``init`` call writing
the four initial values of Fig. 2c) do not become components: they execute
once before steady state and only contribute initial tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.core.actor_to_cta import build_task_component
from repro.core.streams import AccessSite, StreamInterface, build_loop_chain, build_module_chain
from repro.cta.model import BufferParameter, Component, PortRef
from repro.graph.taskgraph import Task, TaskGraph
from repro.util.rational import Rat


@dataclass
class DerivedSequentialModule:
    """The result of deriving one sequential module."""

    component: Component
    interfaces: Dict[str, StreamInterface]
    #: all buffer parameters created for this module (variables and per-access
    #: distribution buffers), keyed by their hierarchical name
    buffers: Dict[str, BufferParameter] = field(default_factory=dict)
    task_components: Dict[str, Component] = field(default_factory=dict)
    loop_components: Dict[str, Component] = field(default_factory=dict)
    warnings: List[str] = field(default_factory=list)


def _top_level_loop_of(task: Task) -> Optional[str]:
    """The outermost enclosing loop identifier of a task (None for init tasks)."""
    if task.loop is None:
        return None
    return task.loop.split(".")[0]


def derive_sequential_module(
    graph: TaskGraph,
    parent: Component,
    *,
    instance_name: Optional[str] = None,
) -> DerivedSequentialModule:
    """Derive the CTA component of the sequential module described by *graph*
    and nest it inside *parent*.

    Task firing durations must already be assigned on the task graph
    (:meth:`repro.graph.taskgraph.TaskGraph.set_firing_durations`).
    """
    name = instance_name or graph.module_name
    component = parent.new_component(name, kind="module")
    component.metadata["module"] = graph.module_name
    result = DerivedSequentialModule(component=component, interfaces={})

    # ------------------------------------------------------------------ loops
    top_loops = graph.top_level_loops()
    loop_components: Dict[str, Component] = {}
    for loop in top_loops:
        loop_component = component.new_component(loop.identifier, kind="while-loop")
        loop_component.metadata["condition_infinite"] = loop.is_infinite
        loop_components[loop.identifier] = loop_component
    result.loop_components = loop_components

    if any(l.parent is not None for l in graph.loops.values()):
        result.warnings.append(
            f"module {graph.module_name!r} contains nested while-loops; their tasks are "
            "conservatively assigned to the outermost loop for the temporal model"
        )
        component.metadata["nested_loops_flattened"] = True

    # ------------------------------------------------------------------ tasks
    for task in sorted(graph.tasks.values(), key=lambda t: t.order):
        top_loop = _top_level_loop_of(task)
        if top_loop is None:
            # Initialization statement: only its initial tokens matter.
            continue
        owner = loop_components[top_loop]
        result.task_components[task.name] = build_task_component(task, owner)

    # -------------------------------------------------------- variable buffers
    for buffer in graph.buffers.values():
        if buffer.kind != "variable":
            continue
        producer_tasks = [
            (graph.tasks[name], count)
            for name, count in buffer.producers
            if name in result.task_components
        ]
        consumer_tasks = [
            (graph.tasks[name], count)
            for name, count in buffer.consumers
            if name in result.task_components
        ]
        if not producer_tasks or not consumer_tasks:
            continue
        minimum = max(
            [count for _, count in producer_tasks]
            + [count for _, count in consumer_tasks]
            + [buffer.initial_tokens, 1]
        )
        parameter = BufferParameter(f"{name}/{buffer.name}", minimum=minimum)
        result.buffers[parameter.name] = parameter
        for producer, _ in producer_tasks:
            producer_component = result.task_components[producer.name]
            for consumer, _ in consumer_tasks:
                consumer_component = result.task_components[consumer.name]
                component.connect(
                    producer_component.port_ref(f"{buffer.name}.give"),
                    consumer_component.port_ref(f"{buffer.name}.take"),
                    phi=-buffer.initial_tokens,
                    purpose="buffer-data",
                    label=f"{buffer.name}:data",
                )
                component.connect(
                    consumer_component.port_ref(f"{buffer.name}.give"),
                    producer_component.port_ref(f"{buffer.name}.take"),
                    phi=buffer.initial_tokens,
                    buffer=parameter,
                    purpose="buffer",
                    label=f"{buffer.name}:space",
                )

    # ----------------------------------------------------------------- streams
    for stream_name, endpoint in graph.streams.items():
        chained: List[Tuple[Component, int]] = []
        for loop in top_loops:
            loop_component = loop_components[loop.identifier]
            buffer_spec = graph.buffers[stream_name]
            accesses = buffer_spec.producers if endpoint.is_output else buffer_spec.consumers
            loop_accesses: List[Tuple[Task, int]] = []
            for task_name, count in accesses:
                task = graph.tasks[task_name]
                if _top_level_loop_of(task) != loop.identifier:
                    continue
                if task_name not in result.task_components:
                    continue
                loop_accesses.append((task, count))
            loop_accesses.sort(key=lambda item: item[0].order)

            sites: List[AccessSite] = []
            if loop_accesses:
                # All statements accessing the stream in this loop form one
                # access site: only the last written value becomes visible to
                # other modules and repeated reads observe the same values
                # (Sec. IV-A), so one access worth of values is transferred
                # per loop iteration.
                if endpoint.is_output:
                    transferred = loop_accesses[-1][1]
                else:
                    transferred = max(count for _, count in loop_accesses)
                sites.append(
                    AccessSite(
                        task_components=[
                            result.task_components[task.name] for task, _ in loop_accesses
                        ],
                        count=transferred,
                        is_output=endpoint.is_output,
                    )
                )

            def factory(suffix: str, count: int, _loop=loop):
                parameter = BufferParameter(
                    f"{name}/{_loop.identifier}/{suffix}", minimum=max(count, 1)
                )
                result.buffers[parameter.name] = parameter
                return parameter

            forward = build_loop_chain(loop_component, stream_name, sites, factory)
            chained.append((loop_component, forward))

        entry, exit_ = build_module_chain(component, stream_name, chained)
        result.interfaces[stream_name] = StreamInterface(
            name=stream_name,
            is_output=endpoint.is_output,
            entry=entry,
            exit=exit_,
            initial_tokens=endpoint.initial_values if endpoint.is_output else 0,
            transfer_count=max(endpoint.per_loop_counts.values(), default=1),
        )

    return result
