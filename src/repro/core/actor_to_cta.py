"""Dataflow actor -> CTA component construction (Sec. V-B.1, Figs. 7 and 8).

A task's dataflow actor is turned into a CTA component as follows:

* a port is added for every incoming and outgoing edge of the actor,
* a zero-delay connection couples the input ports pairwise so that all inputs
  start at the same time (token consumption of an actor is atomic; the purple
  connections of Fig. 7c),
* a connection is added from every input port to every output port carrying
  the firing duration ``rho`` as constant delay (the orange connections of
  Fig. 7c); for multi-rate actors the connection additionally carries the
  rate-dependent delay ``phi = psi - psi/pi`` and the transfer-rate ratio
  ``gamma = pi / psi`` where ``psi`` is the number of tokens consumed on the
  input edge and ``pi`` the number produced on the output edge (the table of
  Fig. 8c),
* between two input ports the transfer-rate ratio is the ratio of their
  consumption counts (``gamma = psi_out / psi_in``) with zero delay,
* the maximum rate of every port is ``tokens_per_firing / rho`` (one firing
  per response time), unbounded for zero response times.

The free function :func:`multi_rate_table` regenerates exactly the
``(epsilon, phi, gamma)`` table of Fig. 8c and is used by the corresponding
benchmark and regression test.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.core.task_to_actor import ActorEdge, TaskActor, task_to_actor
from repro.cta.model import Component
from repro.graph.taskgraph import Task
from repro.util.rational import Rat


def port_name(edge: ActorEdge) -> str:
    """Canonical port name for an actor edge: ``<buffer>.take`` for incoming
    edges (data of reads, space of writes), ``<buffer>.give`` for outgoing
    edges (space of reads, data of writes)."""
    suffix = "take" if edge.direction == "in" else "give"
    return f"{edge.buffer}.{suffix}"


@dataclass(frozen=True)
class ConnectionSpec:
    """One row of the construction table: a connection of the task component."""

    src: str
    dst: str
    epsilon: Rat
    phi: Rat
    gamma: Rat
    purpose: str


def component_connection_table(task_actor: TaskActor) -> List[ConnectionSpec]:
    """The complete connection table of the CTA component of *task_actor*.

    This is the generalisation of Fig. 8c to any number of accessed buffers.
    """
    rho = task_actor.actor.firing_duration
    rows: List[ConnectionSpec] = []

    inputs = list(task_actor.input_edges)
    outputs = list(task_actor.output_edges)

    # Atomic start: couple consecutive input ports in both directions with
    # zero delay (forces equal start offsets along the chain, Fig. 7c purple /
    # the (p0,p3),(p3,p0) rows of Fig. 8c).
    for first, second in zip(inputs, inputs[1:]):
        gamma = Fraction(second.tokens, first.tokens)
        rows.append(
            ConnectionSpec(
                port_name(first), port_name(second), Fraction(0), Fraction(0), gamma, "atomic-start"
            )
        )
        rows.append(
            ConnectionSpec(
                port_name(second), port_name(first), Fraction(0), Fraction(0), Fraction(1) / gamma, "atomic-start"
            )
        )

    # Firing: every input port to every output port (Fig. 7c orange).
    for inp in inputs:
        psi = Fraction(inp.tokens)
        for out in outputs:
            pi = Fraction(out.tokens)
            phi = psi - psi / pi
            gamma = pi / psi
            rows.append(
                ConnectionSpec(port_name(inp), port_name(out), rho, phi, gamma, "firing")
            )
    return rows


def build_task_component(
    task: Task,
    parent: Component,
    *,
    name: Optional[str] = None,
) -> Component:
    """Create the CTA component of *task* nested inside *parent* and return it."""
    task_actor = task_to_actor(task)
    component = parent.new_component(name or task.name, kind="task")
    component.metadata["task"] = task.name
    component.metadata["firing_duration"] = task.firing_duration
    component.metadata["guarded"] = task.guard is not None

    rho = task.firing_duration
    for edge in task_actor.edges:
        max_rate = None
        if rho > 0:
            max_rate = Fraction(edge.tokens) / rho
        direction = "in" if edge.direction == "in" else "out"
        pname = port_name(edge)
        if pname not in component.ports:
            component.add_port(pname, max_rate=max_rate, direction=direction)

    for row in component_connection_table(task_actor):
        component.connect(
            component.port_ref(row.src),
            component.port_ref(row.dst),
            epsilon=row.epsilon,
            phi=row.phi,
            gamma=row.gamma,
            purpose=row.purpose,
            label=f"{task.name}:{row.src}->{row.dst}",
        )
    return component


def multi_rate_table(
    consumption: int,
    production: int,
    rho: Rat,
    *,
    input_buffer: str = "bx",
    output_buffer: str = "by",
) -> Dict[Tuple[str, str], Tuple[Rat, Rat, Rat]]:
    """Regenerate the Fig. 8c table for an actor consuming *consumption*
    tokens from one buffer and producing *production* tokens to another.

    Returns a mapping from symbolic port pairs (using the paper's p0..p3
    naming: p0 = data input, p1 = space release of the input buffer, p2 = data
    output, p3 = space input of the output buffer) to ``(epsilon, phi,
    gamma)``.
    """
    task = Task(
        name="vg",
        kind="call",
        function="g",
        reads=[],
        writes=[],
        firing_duration=rho,
    )
    # Construct the accesses directly (avoiding the AST layer).
    from repro.graph.taskgraph import Access

    task.reads = [Access(input_buffer, consumption)]
    task.writes = [Access(output_buffer, production)]
    actor = task_to_actor(task)

    paper_names = {
        f"{input_buffer}.take": "p0",
        f"{input_buffer}.give": "p1",
        f"{output_buffer}.give": "p2",
        f"{output_buffer}.take": "p3",
    }
    table: Dict[Tuple[str, str], Tuple[Rat, Rat, Rat]] = {}
    for row in component_connection_table(actor):
        key = (paper_names[row.src], paper_names[row.dst])
        table[key] = (row.epsilon, row.phi, row.gamma)
    return table
