"""Human-readable reports of compilation and analysis results.

The reports are what a user of the compiler would look at after running the
pipeline: which modules and tasks were derived, what rates the streams
achieve, which buffer capacities were computed and whether the latency
constraints hold.  The benchmark harness prints these reports so the
reproduced "figures" of the paper can be inspected as text.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional

from repro.cta.consistency import ConsistencyResult
from repro.util.rational import rational_str
from repro.util.units import Frequency, TimeValue


def _format_rate(value: Optional[Fraction]) -> str:
    if value is None:
        return "unbounded"
    return str(Frequency(value))


def compilation_report(result) -> str:
    """Render a full report for a :class:`repro.core.compiler.CompilationResult`."""
    lines: List[str] = []
    lines.append(f"OIL program: {len(result.program.modules)} modules "
                 f"({len(result.program.sequential_modules())} sequential, "
                 f"{len(result.program.parallel_modules())} parallel)")
    for name, graph in sorted(result.task_graphs.items()):
        lines.append(
            f"  module {name}: {len(graph.tasks)} tasks, {len(graph.buffers)} buffers, "
            f"{len(graph.loops)} loops"
        )
    lines.append(f"CTA model: {len(result.model.all_ports())} ports, "
                 f"{len(result.model.all_connections())} connections, "
                 f"{len(result.buffers)} sized buffers")
    for warning in result.warnings:
        lines.append(f"  warning: {warning}")

    consistency = result.check_consistency(assume_infinite_unsized=True)
    lines.append(consistency_report(consistency, result))
    return "\n".join(lines)


def consistency_report(consistency: ConsistencyResult, result=None) -> str:
    """Render the consistency analysis, highlighting source/sink rates."""
    lines = [f"consistency (unbounded buffers): {consistency.consistent}"]
    if result is not None:
        for name, port in sorted(result.source_ports.items()):
            rate = consistency.port_rates.get(port)
            lines.append(f"  source {name}: {_format_rate(rate)}")
        for name, port in sorted(result.sink_ports.items()):
            rate = consistency.port_rates.get(port)
            lines.append(f"  sink {name}: {_format_rate(rate)}")
    for violation in consistency.violations:
        lines.append(f"  {violation}")
    return "\n".join(lines)


def buffer_report(capacities: Dict[str, Optional[int]]) -> str:
    """Render buffer capacities as an aligned table."""
    if not capacities:
        return "no buffers"
    width = max(len(name) for name in capacities)
    lines = ["buffer capacities (tokens):"]
    for name, value in sorted(capacities.items()):
        rendered = "unsized" if value is None else str(value)
        lines.append(f"  {name.ljust(width)}  {rendered}")
    lines.append(f"  total: {sum(v for v in capacities.values() if v is not None)}")
    return "\n".join(lines)


def latency_report(checks) -> str:
    """Render latency verification results."""
    if not checks:
        return "no latency constraints"
    lines = ["latency constraints:"]
    for check in checks:
        status = "OK " if check.satisfied else "FAIL"
        lines.append(f"  [{status}] {check.message}")
    return "\n".join(lines)
