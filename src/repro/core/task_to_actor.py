"""Task -> dataflow actor abstraction (Sec. V-B.1, first step).

Before a task is modelled as a CTA component, an intermediate abstraction is
made in the form of an SDF actor (Fig. 7a/7b): the actor's firing duration is
the response time of the task, and for every buffer the task accesses two
oppositely directed edges connect the actor to the buffer (one transferring
data, one returning space).

This module performs that step explicitly.  It is small, but keeping it
separate mirrors the paper's construction pipeline and gives the tests a
place to check the intermediate artefact; the CTA component construction in
:mod:`repro.core.actor_to_cta` consumes its output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.dataflow.sdf import Actor
from repro.graph.taskgraph import Task


@dataclass(frozen=True)
class ActorEdge:
    """One dataflow edge incident to the actor of a task.

    ``direction`` is ``"in"`` for edges the actor consumes from (data of read
    buffers, space of written buffers) and ``"out"`` for edges it produces to
    (space released for read buffers, data of written buffers).  ``tokens`` is
    the number of tokens transferred per firing and ``role`` distinguishes the
    data from the space side of the buffer.
    """

    buffer: str
    direction: str  # "in" | "out"
    role: str  # "data" | "space"
    tokens: int


@dataclass(frozen=True)
class TaskActor:
    """The dataflow-actor abstraction of a task."""

    actor: Actor
    edges: Tuple[ActorEdge, ...]

    @property
    def input_edges(self) -> Tuple[ActorEdge, ...]:
        return tuple(e for e in self.edges if e.direction == "in")

    @property
    def output_edges(self) -> Tuple[ActorEdge, ...]:
        return tuple(e for e in self.edges if e.direction == "out")


def task_to_actor(task: Task) -> TaskActor:
    """Build the dataflow-actor abstraction of *task* (Fig. 7b / 8a).

    Every read access contributes an incoming *data* edge and an outgoing
    *space* edge; every write access contributes an incoming *space* edge and
    an outgoing *data* edge.  Token counts equal the access counts of the
    task (the colon notation of the OIL source).
    """
    edges: List[ActorEdge] = []
    for access in task.reads:
        edges.append(ActorEdge(access.buffer, "in", "data", access.count))
        edges.append(ActorEdge(access.buffer, "out", "space", access.count))
    for access in task.writes:
        edges.append(ActorEdge(access.buffer, "in", "space", access.count))
        edges.append(ActorEdge(access.buffer, "out", "data", access.count))
    actor = Actor(task.name, task.firing_duration, {"kind": task.kind, "function": task.function})
    return TaskActor(actor=actor, edges=tuple(edges))
