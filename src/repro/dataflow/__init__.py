"""Synchronous Dataflow (SDF) substrate.

Provides the dataflow abstraction the OIL compiler passes through on the way
from tasks to CTA components, plus the exact (exponential) SDF analyses used
as baselines:

* :mod:`repro.dataflow.sdf` -- graphs, actors, edges, buffers,
* :mod:`repro.dataflow.analysis` -- repetition vectors, consistency,
  deadlock-freedom and static-order schedules,
* :mod:`repro.dataflow.hsdf` -- homogeneous expansion,
* :mod:`repro.dataflow.mcr` -- throughput via maximum cycle ratio,
* :mod:`repro.dataflow.statespace` -- exact self-timed state-space analysis,
* :mod:`repro.dataflow.buffer_sizing` -- baseline buffer sizing.
"""

from repro.dataflow.sdf import Actor, SDFEdge, SDFGraph
from repro.dataflow.analysis import (
    DeadlockResult,
    RepetitionVector,
    SDFConsistencyError,
    check_deadlock,
    is_consistent,
    iteration_token_balance,
    repetition_vector,
)
from repro.dataflow.hsdf import HSDFStatistics, expansion_statistics, firing_name, to_hsdf
from repro.dataflow.mcr import ThroughputResult, hsdf_maximum_cycle_ratio, sdf_throughput
from repro.dataflow.statespace import (
    StateSpaceResult,
    canonical_state_key,
    self_timed_statespace,
)
from repro.dataflow.buffer_sizing import (
    SDFBufferSizingResult,
    minimal_buffer_capacities,
    size_sdf_buffers,
)

__all__ = [
    "Actor",
    "SDFEdge",
    "SDFGraph",
    "DeadlockResult",
    "RepetitionVector",
    "SDFConsistencyError",
    "check_deadlock",
    "is_consistent",
    "iteration_token_balance",
    "repetition_vector",
    "HSDFStatistics",
    "expansion_statistics",
    "firing_name",
    "to_hsdf",
    "ThroughputResult",
    "hsdf_maximum_cycle_ratio",
    "sdf_throughput",
    "StateSpaceResult",
    "canonical_state_key",
    "self_timed_statespace",
    "SDFBufferSizingResult",
    "minimal_buffer_capacities",
    "size_sdf_buffers",
]
