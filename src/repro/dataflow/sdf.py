"""Synchronous Dataflow (SDF) graphs.

The OIL compiler uses a dataflow abstraction as the intermediate step between
tasks and CTA components (Sec. V-B.1, following Lee & Parks and Hausmans et
al.): every task becomes an actor with a firing duration; every buffer becomes
a pair of oppositely directed edges (a data edge and a space edge) carrying
initial tokens equal to, respectively, the initially available values and the
free capacity.

This module defines the SDF data structures.  Analyses (repetition vector,
consistency, deadlock-freedom, throughput) live in
:mod:`repro.dataflow.analysis`, :mod:`repro.dataflow.mcr` and
:mod:`repro.dataflow.statespace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.util.rational import Rat, RationalLike, as_rational
from repro.util.validation import check_identifier, check_non_negative, check_positive, require


@dataclass
class Actor:
    """An SDF actor.

    ``firing_duration`` (the response time of the corresponding task, in
    seconds) bounds the time between consumption of input tokens and
    production of output tokens, and thereby the actor's maximum firing rate.
    """

    name: str
    firing_duration: Rat = Fraction(0)
    #: arbitrary metadata (guard condition, originating statement, ...)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_identifier(self.name, "actor name")
        self.firing_duration = as_rational(self.firing_duration)
        check_non_negative(self.firing_duration, "firing_duration")

    def __hash__(self) -> int:
        return hash(("actor", self.name))


@dataclass
class SDFEdge:
    """A directed SDF edge (channel) from ``producer`` to ``consumer``.

    ``production`` tokens are produced per firing of the producer,
    ``consumption`` tokens consumed per firing of the consumer and
    ``initial_tokens`` tokens are present initially.
    """

    name: str
    producer: str
    consumer: str
    production: int = 1
    consumption: int = 1
    initial_tokens: int = 0
    #: when this edge is one direction of a finite buffer, the buffer's name
    buffer_name: Optional[str] = None

    def __post_init__(self) -> None:
        check_identifier(self.name, "edge name")
        check_positive(self.production, "production rate")
        check_positive(self.consumption, "consumption rate")
        check_non_negative(self.initial_tokens, "initial tokens")

    def __hash__(self) -> int:
        return hash(("edge", self.name))


class SDFGraph:
    """A Synchronous Dataflow graph."""

    def __init__(self, name: str = "sdf") -> None:
        check_identifier(name, "graph name")
        self.name = name
        self._actors: Dict[str, Actor] = {}
        self._edges: Dict[str, SDFEdge] = {}

    # ------------------------------------------------------------------ build
    def add_actor(
        self,
        name: str,
        *,
        firing_duration: RationalLike = 0,
        **metadata: object,
    ) -> Actor:
        """Add an actor and return it."""
        require(name not in self._actors, f"duplicate actor {name!r}")
        actor = Actor(name, as_rational(firing_duration), dict(metadata))
        self._actors[name] = actor
        return actor

    def add_edge(
        self,
        name: str,
        producer: str,
        consumer: str,
        *,
        production: int = 1,
        consumption: int = 1,
        initial_tokens: int = 0,
        buffer_name: Optional[str] = None,
    ) -> SDFEdge:
        """Add an edge and return it."""
        require(name not in self._edges, f"duplicate edge {name!r}")
        require(producer in self._actors, f"unknown producer actor {producer!r}")
        require(consumer in self._actors, f"unknown consumer actor {consumer!r}")
        edge = SDFEdge(
            name,
            producer,
            consumer,
            production=production,
            consumption=consumption,
            initial_tokens=initial_tokens,
            buffer_name=buffer_name,
        )
        self._edges[name] = edge
        return edge

    def add_buffer(
        self,
        name: str,
        producer: str,
        consumer: str,
        *,
        production: int = 1,
        consumption: int = 1,
        initial_tokens: int = 0,
        capacity: Optional[int] = None,
    ) -> Tuple[SDFEdge, Optional[SDFEdge]]:
        """Model a finite-capacity buffer as a data edge plus a reverse space edge.

        The data edge carries ``initial_tokens``; the space edge (present only
        when *capacity* is given) carries ``capacity - initial_tokens`` tokens,
        modelling the free locations the producer may still claim.
        """
        data = self.add_edge(
            f"{name}.data",
            producer,
            consumer,
            production=production,
            consumption=consumption,
            initial_tokens=initial_tokens,
            buffer_name=name,
        )
        space: Optional[SDFEdge] = None
        if capacity is not None:
            require(
                capacity >= initial_tokens,
                f"buffer {name!r}: capacity {capacity} below initial token count {initial_tokens}",
            )
            space = self.add_edge(
                f"{name}.space",
                consumer,
                producer,
                production=consumption,
                consumption=production,
                initial_tokens=capacity - initial_tokens,
                buffer_name=name,
            )
        return data, space

    # -------------------------------------------------------------- accessors
    @property
    def actors(self) -> Mapping[str, Actor]:
        return dict(self._actors)

    @property
    def edges(self) -> Mapping[str, SDFEdge]:
        return dict(self._edges)

    def actor(self, name: str) -> Actor:
        require(name in self._actors, f"unknown actor {name!r}")
        return self._actors[name]

    def edge(self, name: str) -> SDFEdge:
        require(name in self._edges, f"unknown edge {name!r}")
        return self._edges[name]

    def in_edges(self, actor: str) -> List[SDFEdge]:
        return [e for e in self._edges.values() if e.consumer == actor]

    def out_edges(self, actor: str) -> List[SDFEdge]:
        return [e for e in self._edges.values() if e.producer == actor]

    def __contains__(self, actor: str) -> bool:
        return actor in self._actors

    def __len__(self) -> int:
        return len(self._actors)

    # ------------------------------------------------------------- utilities
    def copy(self, name: Optional[str] = None) -> "SDFGraph":
        """A deep-enough copy (actors and edges are re-created)."""
        clone = SDFGraph(name or self.name)
        for actor in self._actors.values():
            clone.add_actor(actor.name, firing_duration=actor.firing_duration, **actor.metadata)
        for edge in self._edges.values():
            clone.add_edge(
                edge.name,
                edge.producer,
                edge.consumer,
                production=edge.production,
                consumption=edge.consumption,
                initial_tokens=edge.initial_tokens,
                buffer_name=edge.buffer_name,
            )
        return clone

    def summary(self) -> str:
        lines = [f"SDF graph {self.name!r}: {len(self._actors)} actors, {len(self._edges)} edges"]
        for actor in self._actors.values():
            lines.append(f"  actor {actor.name} (rho={actor.firing_duration})")
        for edge in self._edges.values():
            lines.append(
                f"  edge {edge.name}: {edge.producer} -[{edge.production}]-> "
                f"[{edge.consumption}]- {edge.consumer}, d={edge.initial_tokens}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SDFGraph {self.name!r} actors={len(self._actors)} edges={len(self._edges)}>"
