"""Conversion of SDF graphs to Homogeneous SDF (HSDF).

The classical exact throughput analysis of an SDF graph expands the graph into
its homogeneous equivalent: every actor ``a`` is replaced by ``q[a]`` copies
(one per firing in an iteration, where ``q`` is the repetition vector) and
every edge is replaced by single-token-rate edges connecting the producing
firing to the consuming firing of each token.  The expansion can blow up the
graph by a factor equal to the sum of the repetition vector -- which is one of
the reasons the paper argues exact SDF analysis has exponential complexity for
multi-rate graphs, while the CTA abstraction stays polynomial in the size of
the *program*.

The expansion implemented here uses the standard token-index construction:
token ``k`` (0-based, counting from the start of the iteration and including
initial tokens) produced on edge ``e`` is consumed by firing
``floor(k / consumption)`` of the consumer; tokens carried over to the next
iteration become edges with one initial token between the corresponding
firings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dataflow.analysis import repetition_vector
from repro.dataflow.sdf import SDFGraph


def firing_name(actor: str, index: int) -> str:
    """Name of the *index*-th firing of *actor* in the HSDF expansion."""
    return f"{actor}#{index}"


def to_hsdf(graph: SDFGraph) -> SDFGraph:
    """Expand *graph* into its homogeneous (single-rate) equivalent.

    Every actor ``a`` becomes ``q[a]`` firing actors with the same firing
    duration.  Every token flowing over an edge within one iteration becomes a
    precedence edge between the producing and consuming firing; tokens that
    wrap around to the next iteration carry one initial token.  Additionally,
    consecutive firings of the same actor are serialised with a cycle of
    edges carrying a single initial token on the wrap-around edge, modelling
    that a task does not fire auto-concurrently (the paper's tasks are
    sequential code fragments on a processor).
    """
    q = repetition_vector(graph)
    hsdf = SDFGraph(f"{graph.name}_hsdf")

    for actor in graph.actors.values():
        for i in range(q[actor.name]):
            hsdf.add_actor(firing_name(actor.name, i), firing_duration=actor.firing_duration)

    # Serialise firings of the same actor (no auto-concurrency).
    for actor in graph.actors.values():
        copies = q[actor.name]
        if copies == 1:
            hsdf.add_edge(
                f"{actor.name}.self",
                firing_name(actor.name, 0),
                firing_name(actor.name, 0),
                initial_tokens=1,
            )
            continue
        for i in range(copies):
            nxt = (i + 1) % copies
            hsdf.add_edge(
                f"{actor.name}.seq{i}",
                firing_name(actor.name, i),
                firing_name(actor.name, nxt),
                initial_tokens=1 if nxt == 0 else 0,
            )

    # Expand every SDF edge token-wise.
    edge_counter = 0
    for edge in graph.edges.values():
        produced_per_iteration = q[edge.producer] * edge.production
        # Token k (0-based, global numbering including initial tokens) is
        # consumed by firing floor(k / consumption) of the consumer (within
        # some iteration).  Token k produced in this iteration has index
        # edge.initial_tokens + k'.
        for k_prod in range(produced_per_iteration):
            producer_firing = k_prod // edge.production
            token_index = edge.initial_tokens + k_prod
            consumer_firing_global = token_index // edge.consumption
            iteration_offset, consumer_firing = divmod(consumer_firing_global, q[edge.consumer])
            edge_counter += 1
            hsdf.add_edge(
                f"{edge.name}.t{edge_counter}",
                firing_name(edge.producer, producer_firing),
                firing_name(edge.consumer, consumer_firing),
                initial_tokens=iteration_offset,
                buffer_name=edge.buffer_name,
            )

    return hsdf


@dataclass
class HSDFStatistics:
    """Size statistics of an HSDF expansion, used by the scaling benchmark."""

    sdf_actors: int
    sdf_edges: int
    hsdf_actors: int
    hsdf_edges: int

    @property
    def actor_blowup(self) -> float:
        return self.hsdf_actors / max(self.sdf_actors, 1)


def expansion_statistics(graph: SDFGraph) -> HSDFStatistics:
    """Return the size blow-up caused by the HSDF expansion of *graph*."""
    hsdf = to_hsdf(graph)
    return HSDFStatistics(
        sdf_actors=len(graph.actors),
        sdf_edges=len(graph.edges),
        hsdf_actors=len(hsdf.actors),
        hsdf_edges=len(hsdf.edges),
    )
