"""Throughput analysis of (H)SDF graphs via maximum cycle ratio.

For a homogeneous SDF graph executing self-timed, every actor fires in steady
state with an average period equal to the *maximum cycle ratio* (MCR, also
called maximum cycle mean): the maximum over all cycles of the summed firing
durations divided by the summed initial tokens on the cycle.  A cycle without
initial tokens and with positive execution time deadlocks the graph.

For a general (multi-rate) SDF graph the exact value requires the HSDF
expansion (:mod:`repro.dataflow.hsdf`), whose size grows with the repetition
vector -- the exponential cost in the problem size that the paper contrasts
with the polynomial CTA analysis.  The cycle-ratio computation itself is
polynomial in the size of the *expanded* graph and reuses the Newton-iteration
implementation of :mod:`repro.util.graphs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.dataflow.analysis import repetition_vector
from repro.dataflow.hsdf import to_hsdf
from repro.dataflow.sdf import SDFGraph
from repro.util.graphs import ConstraintGraph
from repro.util.rational import Rat


@dataclass
class ThroughputResult:
    """Throughput of an (H)SDF graph under self-timed execution.

    ``cycle_ratio``
        The maximum cycle ratio (seconds per firing around the critical
        cycle); ``None`` when no cycle constrains the rate.
    ``iteration_period``
        Average time between starts of complete graph iterations in steady
        state (equals the cycle ratio for strongly connected expansions).
    ``actor_throughput``
        Firings per second each *original* SDF actor sustains in steady state
        (``q[a] / iteration_period``).
    ``deadlocked``
        True when a token-free cycle with positive execution time exists.
    """

    cycle_ratio: Optional[Rat]
    iteration_period: Optional[Rat]
    actor_throughput: Dict[str, Rat]
    deadlocked: bool = False

    def throughput_of(self, actor: str) -> Optional[Rat]:
        return self.actor_throughput.get(actor)


def hsdf_maximum_cycle_ratio(hsdf: SDFGraph) -> Optional[Rat]:
    """Maximum cycle ratio of a homogeneous graph (``None`` when acyclic).

    Raises
    ------
    ValueError
        If the graph deadlocks (a cycle without initial tokens has positive
        execution time).
    """
    graph = ConstraintGraph()
    for edge in hsdf.edges.values():
        producer = hsdf.actor(edge.producer)
        # Weight: execution time "paid" when traversing this edge (the firing
        # duration of the producing actor); parametric: initial tokens.
        graph.add_edge(
            edge.producer,
            edge.consumer,
            producer.firing_duration,
            parametric=edge.initial_tokens,
            label=edge.name,
        )
    result = graph.maximum_cycle_ratio()
    if result.unbounded:
        raise ValueError(
            "graph deadlocks: a cycle without initial tokens has positive execution time "
            f"(witness: {[e.label for e in result.cycle]})"
        )
    return result.ratio


def sdf_throughput(graph: SDFGraph) -> ThroughputResult:
    """Exact self-timed throughput of an SDF graph via its HSDF expansion.

    Every actor ``a`` fires ``q[a]`` times per iteration; in steady state the
    iteration period equals the maximum cycle ratio of the expansion, so the
    sustained rate of ``a`` is ``q[a] / MCR`` firings per second.  For graphs
    whose expansion is not strongly connected this is a conservative (lower)
    bound on the achievable rate of actors outside the critical cycle.
    """
    if not graph.actors:
        return ThroughputResult(None, None, {})
    q = repetition_vector(graph)
    hsdf = to_hsdf(graph)
    try:
        mcr = hsdf_maximum_cycle_ratio(hsdf)
    except ValueError:
        return ThroughputResult(None, None, {}, deadlocked=True)

    if mcr is None or mcr <= 0:
        # No cycle with execution time limits the rate (all firing durations
        # on cycles are zero): the throughput is unbounded in the timed
        # abstraction.
        return ThroughputResult(mcr, None, {a: Fraction(0) for a in graph.actors})

    iteration_period = mcr
    actor_throughput = {a: Fraction(q[a]) / iteration_period for a in graph.actors}
    return ThroughputResult(
        cycle_ratio=mcr,
        iteration_period=iteration_period,
        actor_throughput=actor_throughput,
        deadlocked=False,
    )
