"""Buffer sizing on SDF graphs (baseline).

Determines, per named buffer of an SDF graph, a capacity that is sufficient
for the graph to sustain a required throughput under self-timed execution.
The exact problem is NP-hard in general; this baseline implements the common
incremental scheme built on the *exact* state-space / MCR analysis: start at
the structural minimum, analyse, and enlarge the buffer that limits the
critical cycle until the requirement is met.  Because every analysis step may
require the HSDF expansion, the cost grows quickly with the rates involved --
exactly the behaviour the scaling benchmark contrasts with the polynomial CTA
buffer sizing.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.dataflow.mcr import sdf_throughput
from repro.dataflow.sdf import SDFGraph
from repro.util.rational import Rat


@dataclass
class SDFBufferSizingResult:
    """Capacities found by the baseline SDF buffer-sizing loop."""

    capacities: Dict[str, int]
    achieved_iteration_period: Optional[Rat]
    iterations: int

    @property
    def total_capacity(self) -> int:
        return sum(self.capacities.values())


def minimal_buffer_capacities(graph: SDFGraph) -> Dict[str, int]:
    """Structural minimum capacity per buffer: a single firing of the producer
    and of the consumer must fit, i.e. ``max(production, consumption)`` plus
    any initial tokens already stored in the buffer."""
    minima: Dict[str, int] = {}
    for edge in graph.edges.values():
        if edge.buffer_name is None or edge.name.endswith(".space"):
            continue
        minima[edge.buffer_name] = max(edge.production, edge.consumption) + edge.initial_tokens
    return minima


def _with_capacities(graph: SDFGraph, capacities: Dict[str, int]) -> SDFGraph:
    """Clone *graph*, adding/updating the reverse space edge of each buffer so
    that the buffer has the given capacity."""
    clone = SDFGraph(f"{graph.name}_sized")
    for actor in graph.actors.values():
        clone.add_actor(actor.name, firing_duration=actor.firing_duration, **actor.metadata)
    for edge in graph.edges.values():
        if edge.name.endswith(".space"):
            continue  # regenerated below
        clone.add_edge(
            edge.name,
            edge.producer,
            edge.consumer,
            production=edge.production,
            consumption=edge.consumption,
            initial_tokens=edge.initial_tokens,
            buffer_name=edge.buffer_name,
        )
    for edge in graph.edges.values():
        if edge.name.endswith(".space") or edge.buffer_name is None:
            continue
        capacity = capacities[edge.buffer_name]
        clone.add_edge(
            f"{edge.buffer_name}.space",
            edge.consumer,
            edge.producer,
            production=edge.consumption,
            consumption=edge.production,
            initial_tokens=capacity - edge.initial_tokens,
            buffer_name=edge.buffer_name,
        )
    return clone


def size_sdf_buffers(
    graph: SDFGraph,
    required_iteration_period: Rat,
    *,
    max_rounds: int = 200,
) -> SDFBufferSizingResult:
    """Find buffer capacities such that the self-timed iteration period of
    *graph* is at most *required_iteration_period*.

    *graph* must contain only the forward (data) edges of its buffers (no
    ``.space`` edges); the reverse edges are generated from the candidate
    capacities.  Buffers are identified by ``buffer_name`` on the data edges.
    """
    required_iteration_period = Fraction(required_iteration_period)
    capacities = minimal_buffer_capacities(graph)
    if not capacities:
        throughput = sdf_throughput(graph)
        return SDFBufferSizingResult(capacities={}, achieved_iteration_period=throughput.iteration_period, iterations=0)

    iterations = 0
    for _ in range(max_rounds):
        iterations += 1
        sized = _with_capacities(graph, capacities)
        throughput = sdf_throughput(sized)
        if (
            not throughput.deadlocked
            and (throughput.iteration_period is None or throughput.iteration_period <= required_iteration_period)
        ):
            return SDFBufferSizingResult(
                capacities=dict(capacities),
                achieved_iteration_period=throughput.iteration_period,
                iterations=iterations,
            )
        # Enlarge the smallest buffer (ties broken by name) -- a simple and
        # deterministic policy; adequate as a baseline.
        name = min(capacities, key=lambda n: (capacities[n], n))
        capacities[name] += 1
    sized = _with_capacities(graph, capacities)
    throughput = sdf_throughput(sized)
    return SDFBufferSizingResult(
        capacities=dict(capacities),
        achieved_iteration_period=throughput.iteration_period,
        iterations=iterations,
    )
