"""Structural analyses of SDF graphs: repetition vector, sample-rate
consistency and deadlock-freedom.

* The *repetition vector* assigns every actor the smallest positive number of
  firings such that one complete iteration returns every edge to its initial
  token count (the balance equations ``q[producer] * production ==
  q[consumer] * consumption``).  A graph for which no such vector exists is
  *sample-rate inconsistent* and cannot execute in bounded memory.
  In the Fig. 2 example the repetition vector is ``(2, 3)``: task ``tg`` must
  execute 3/2 times as often as ``tf``.
* *Deadlock-freedom* is decided by abstractly executing one complete iteration
  with unbounded self-concurrency disabled: if the iteration cannot complete,
  the initial token placement deadlocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.dataflow.sdf import SDFGraph
from repro.util.rational import Rat, scale_to_integers


class SDFConsistencyError(ValueError):
    """Raised for sample-rate inconsistent SDF graphs."""


@dataclass
class RepetitionVector:
    """The repetition vector of a consistent SDF graph."""

    entries: Dict[str, int]

    def __getitem__(self, actor: str) -> int:
        return self.entries[actor]

    def total_firings(self) -> int:
        return sum(self.entries.values())

    def as_dict(self) -> Dict[str, int]:
        return dict(self.entries)


def repetition_vector(graph: SDFGraph) -> RepetitionVector:
    """Compute the repetition vector of *graph*.

    Raises
    ------
    SDFConsistencyError
        If the balance equations have no positive solution (rate mismatch
        around an undirected cycle).
    """
    actors = list(graph.actors)
    if not actors:
        return RepetitionVector({})

    # Propagate rational firing ratios over the undirected edge structure.
    ratio: Dict[str, Optional[Rat]] = {a: None for a in actors}
    adjacency: Dict[str, List[Tuple[str, Rat]]] = {a: [] for a in actors}
    for edge in graph.edges.values():
        # q[consumer] = q[producer] * production / consumption
        factor = Fraction(edge.production, edge.consumption)
        adjacency[edge.producer].append((edge.consumer, factor))
        adjacency[edge.consumer].append((edge.producer, Fraction(1) / factor))

    for start in actors:
        if ratio[start] is not None:
            continue
        ratio[start] = Fraction(1)
        stack = [start]
        while stack:
            current = stack.pop()
            current_ratio = ratio[current]
            assert current_ratio is not None
            for neighbour, factor in adjacency[current]:
                expected = current_ratio * factor
                if ratio[neighbour] is None:
                    ratio[neighbour] = expected
                    stack.append(neighbour)
                elif ratio[neighbour] != expected:
                    raise SDFConsistencyError(
                        f"sample-rate inconsistency at actor {neighbour!r}: "
                        f"ratio {ratio[neighbour]} vs {expected}"
                    )

    # Normalise each connected component jointly (a single scaling suffices
    # because components are independent; using a global scaling keeps the
    # vector integral in all of them).
    values = [ratio[a] for a in actors]
    ints = scale_to_integers(values)  # smallest integral vector, global
    entries = {a: v for a, v in zip(actors, ints)}
    # scale_to_integers may return a vector that is minimal globally but the
    # conventional repetition vector is minimal per connected component; the
    # global normalisation is what the multi-rate scheduling needs, so keep it.
    if any(v <= 0 for v in entries.values()):
        raise SDFConsistencyError("repetition vector has a non-positive entry")
    return RepetitionVector(entries)


def is_consistent(graph: SDFGraph) -> bool:
    """True when *graph* is sample-rate consistent."""
    try:
        repetition_vector(graph)
        return True
    except SDFConsistencyError:
        return False


@dataclass
class DeadlockResult:
    """Result of the deadlock-freedom check."""

    deadlock_free: bool
    #: a valid static-order schedule for one iteration (actor names, with
    #: repetitions), empty when deadlocked
    schedule: List[str]
    #: remaining firings per actor at the point of deadlock (empty if free)
    remaining: Dict[str, int]


def check_deadlock(graph: SDFGraph) -> DeadlockResult:
    """Decide deadlock-freedom by abstract execution of one iteration.

    Greedily fires any enabled actor that still has firings left in the
    current iteration.  For consistent SDF graphs this either completes one
    full iteration (then the graph can run forever: deadlock-free) or gets
    stuck (deadlock caused by insufficient initial tokens).
    The produced firing sequence is a valid single-processor static-order
    schedule -- exactly the kind of schedule a programmer would have to write
    by hand in a purely sequential specification (Fig. 2b).
    """
    vector = repetition_vector(graph)
    remaining = dict(vector.entries)
    tokens = {name: edge.initial_tokens for name, edge in graph.edges.items()}
    schedule: List[str] = []

    total = vector.total_firings()
    for _ in range(total):
        fired = None
        for actor in graph.actors:
            if remaining[actor] <= 0:
                continue
            if all(tokens[e.name] >= e.consumption for e in graph.in_edges(actor)):
                fired = actor
                break
        if fired is None:
            return DeadlockResult(False, schedule, {a: r for a, r in remaining.items() if r > 0})
        for e in graph.in_edges(fired):
            tokens[e.name] -= e.consumption
        for e in graph.out_edges(fired):
            tokens[e.name] += e.production
        remaining[fired] -= 1
        schedule.append(fired)

    return DeadlockResult(True, schedule, {})


def iteration_token_balance(graph: SDFGraph) -> Dict[str, int]:
    """Net token change per edge over one complete iteration (all zeros for a
    consistent graph) -- used by property-based tests."""
    vector = repetition_vector(graph)
    balance: Dict[str, int] = {}
    for name, edge in graph.edges.items():
        balance[name] = (
            vector[edge.producer] * edge.production - vector[edge.consumer] * edge.consumption
        )
    return balance
