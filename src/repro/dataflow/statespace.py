"""Exact self-timed state-space analysis of SDF graphs.

This is the *exponential* baseline the paper argues against for modal
multi-rate systems (Sec. II: "exact analysis algorithms to verify the
satisfaction of temporal constraints have an exponential time complexity").
The analysis executes the graph self-timed (every actor fires as soon as all
its input tokens are available), records the token/timestamp state after every
completed iteration and detects the periodic phase when a state repeats.  The
exact throughput is then read off the cycle of the state space.

The state space can grow with the product of buffer capacities and repetition
vector entries, which is exponential in the size of the description -- the
scaling benchmark (`benchmarks/bench_scaling_analysis.py`) measures this
against the polynomial CTA analysis.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dataflow.analysis import repetition_vector
from repro.dataflow.sdf import SDFGraph
from repro.util.rational import Rat


def canonical_state_key(
    tokens: Iterable[Tuple],
    pendings: Iterable[Tuple],
    counters: Iterable[Tuple],
) -> Tuple[Tuple, Tuple, Tuple]:
    """Canonicalise a self-timed execution state into a hashable key.

    The three components are the paper's periodicity witnesses: the token
    (buffer-fill) distribution, the *relative* completion offsets of in-flight
    work, and the progress counters that distinguish phases of an iteration.
    Each component is sorted so the key is independent of dict/iteration
    order.  Both the offline state-space exploration below and the engine's
    online steady-state detector (:mod:`repro.engine.steady_state`) build
    their keys through this helper, which keeps the two periodicity notions
    aligned -- the cross-check tests rely on that.
    """
    return (tuple(sorted(tokens)), tuple(sorted(pendings)), tuple(sorted(counters)))


@dataclass
class StateSpaceResult:
    """Result of the exact state-space throughput analysis."""

    #: average time per graph iteration in the periodic phase (seconds)
    iteration_period: Optional[Rat]
    #: firings per second per actor in the periodic phase
    actor_throughput: Dict[str, Rat] = field(default_factory=dict)
    #: number of iterations simulated before the state repeated
    transient_iterations: int = 0
    #: length (in iterations) of the periodic phase
    period_iterations: int = 0
    #: number of discrete-event steps executed
    events_processed: int = 0
    deadlocked: bool = False


def self_timed_statespace(
    graph: SDFGraph,
    *,
    max_iterations: int = 10_000,
) -> StateSpaceResult:
    """Execute *graph* self-timed until the iteration state repeats.

    Each actor fires as soon as every input edge holds enough tokens (tokens
    are consumed atomically at the start of the firing and produced
    ``firing_duration`` later).  Auto-concurrency is excluded: an actor has at
    most one firing in flight, matching the task semantics of the OIL runtime.

    The state recorded after every complete iteration is the vector of token
    counts plus the relative completion times of in-flight firings; a repeat
    of this state means the execution has entered its periodic phase and the
    exact iteration period is the time between the two occurrences divided by
    the number of iterations in between.
    """
    q = repetition_vector(graph)
    if not graph.actors:
        return StateSpaceResult(None)

    tokens: Dict[str, int] = {name: e.initial_tokens for name, e in graph.edges.items()}
    busy_until: Dict[str, Optional[Rat]] = {a: None for a in graph.actors}
    fired_in_iteration: Dict[str, int] = {a: 0 for a in graph.actors}

    #: (completion_time, sequence, actor) min-heap of in-flight firings
    in_flight: List[Tuple[Rat, int, str]] = []
    sequence = 0
    now: Rat = Fraction(0)
    events = 0
    completed_iterations = 0

    #: state -> (iteration index, time)
    seen: Dict[Tuple, Tuple[int, Rat]] = {}
    iteration_times: List[Rat] = [Fraction(0)]

    def try_start_firings() -> bool:
        nonlocal sequence
        started = False
        progress = True
        while progress:
            progress = False
            for actor_name, actor in graph.actors.items():
                if busy_until[actor_name] is not None:
                    continue
                if all(tokens[e.name] >= e.consumption for e in graph.in_edges(actor_name)):
                    for e in graph.in_edges(actor_name):
                        tokens[e.name] -= e.consumption
                    completion = now + actor.firing_duration
                    busy_until[actor_name] = completion
                    sequence += 1
                    heapq.heappush(in_flight, (completion, sequence, actor_name))
                    progress = True
                    started = True
        return started

    def state_key() -> Tuple:
        pending = ((a, (t - now)) for a, t in busy_until.items() if t is not None)
        return canonical_state_key(tokens.items(), pending, fired_in_iteration.items())

    try_start_firings()
    if not in_flight:
        return StateSpaceResult(None, deadlocked=True)

    while completed_iterations < max_iterations:
        if not in_flight:
            return StateSpaceResult(None, deadlocked=True, events_processed=events)
        completion, _, actor_name = heapq.heappop(in_flight)
        now = completion
        events += 1
        for e in graph.out_edges(actor_name):
            tokens[e.name] += e.production
        busy_until[actor_name] = None
        fired_in_iteration[actor_name] += 1

        # A complete iteration has finished when every actor reached its
        # repetition count; reset the per-iteration counters.
        if all(fired_in_iteration[a] >= q[a] for a in graph.actors):
            for a in graph.actors:
                fired_in_iteration[a] -= q[a]
            completed_iterations += 1
            iteration_times.append(now)
            key = state_key()
            if key in seen:
                first_iteration, first_time = seen[key]
                period_iterations = completed_iterations - first_iteration
                period_time = now - first_time
                iteration_period = period_time / period_iterations
                throughput = {
                    a: Fraction(q[a]) / iteration_period if iteration_period > 0 else Fraction(0)
                    for a in graph.actors
                }
                return StateSpaceResult(
                    iteration_period=iteration_period,
                    actor_throughput=throughput,
                    transient_iterations=first_iteration,
                    period_iterations=period_iterations,
                    events_processed=events,
                )
            seen[key] = (completed_iterations, now)

        try_start_firings()

    # Did not converge within the iteration budget; report the average period
    # over the simulated horizon as an approximation.
    if completed_iterations >= 1:
        iteration_period = (iteration_times[-1] - iteration_times[0]) / completed_iterations
        throughput = {
            a: Fraction(q[a]) / iteration_period if iteration_period > 0 else Fraction(0)
            for a in graph.actors
        }
        return StateSpaceResult(
            iteration_period=iteration_period,
            actor_throughput=throughput,
            transient_iterations=completed_iterations,
            period_iterations=0,
            events_processed=events,
        )
    return StateSpaceResult(None, deadlocked=True, events_processed=events)
