"""Exact rational arithmetic helpers.

The CTA model and the SDF substrate reason about *rates* and *transfer rate
ratios*.  Multi-rate consistency (products of transfer rate ratios around a
cycle must be one, repetition vectors must be integral) is only robust when
computed exactly, therefore all rate book-keeping in this reproduction uses
:class:`fractions.Fraction`.  Floats appear only at the reporting boundary.

``Rat`` is simply an alias of :class:`fractions.Fraction`; the helpers in this
module normalise user input (ints, floats, strings, fractions) into exact
rationals and provide gcd / lcm on rationals which the repetition-vector and
hyper-period computations need.

:class:`TimeBase` is the runtime's integer-tick clock: it fixes a rational
*resolution* (seconds per tick, the gcd of every duration a program can
schedule) so that all timestamps become exact integer tick counts.  Integer
comparisons are what the event queue's heap spends its time on, and they are
several times cheaper than :class:`~fractions.Fraction` comparisons while
remaining exact -- tick counts round-trip to the very same rationals the
legacy fraction-based queue computes.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Optional, Sequence, Union

#: Exact rational number type used across the analysis layers.
Rat = Fraction

#: Anything the public API accepts where a rational rate/ratio is expected.
RationalLike = Union[int, float, str, Fraction]

# Floats are converted through ``Fraction(str(x))`` by default (decimal
# semantics) unless they are exactly representable; ``limit`` bounds the
# denominator for safety when converting floats that originate from
# measurements rather than specifications.
_DEFAULT_MAX_DENOMINATOR = 10**12


def as_rational(value: RationalLike, *, max_denominator: int = _DEFAULT_MAX_DENOMINATOR) -> Rat:
    """Convert *value* to an exact :class:`~fractions.Fraction`.

    Integers, strings (``"3/4"``, ``"0.25"``), and fractions convert exactly.
    Floats are converted via their shortest decimal representation and then
    limited to *max_denominator*, which gives the intuitive result for
    human-entered values such as ``0.1`` while still accepting measured
    floating point data.

    Raises
    ------
    TypeError
        If *value* is not a supported numeric type.
    ValueError
        If *value* is NaN or infinite.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("booleans are not valid rational values")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise ValueError(f"cannot convert non-finite float {value!r} to a rational")
        return Fraction(str(value)).limit_denominator(max_denominator)
    raise TypeError(f"cannot interpret {type(value).__name__!r} as a rational number")


def rational_gcd(values: Iterable[RationalLike]) -> Rat:
    """Greatest common divisor of a collection of rationals.

    The gcd of ``p1/q1, p2/q2, ...`` is ``gcd(p1, p2, ...) / lcm(q1, q2, ...)``.
    Useful for computing base periods of multi-rate schedules.
    """
    fracs = [as_rational(v) for v in values]
    if not fracs:
        raise ValueError("rational_gcd() requires at least one value")
    num = 0
    den = 1
    for f in fracs:
        num = math.gcd(num, abs(f.numerator))
        den = den * f.denominator // math.gcd(den, f.denominator)
    return Fraction(num, den)


def rational_lcm(values: Iterable[RationalLike]) -> Rat:
    """Least common multiple of a collection of rationals.

    The lcm of ``p1/q1, p2/q2, ...`` is ``lcm(p1, p2, ...) / gcd(q1, q2, ...)``.
    Used to compute hyper-periods and integral repetition vectors.
    """
    fracs = [as_rational(v) for v in values]
    if not fracs:
        raise ValueError("rational_lcm() requires at least one value")
    num = 1
    den = 0
    for f in fracs:
        a = abs(f.numerator)
        if a == 0:
            raise ValueError("rational_lcm() of zero is undefined")
        num = num * a // math.gcd(num, a)
        den = math.gcd(den, f.denominator)
    return Fraction(num, den)


def scale_to_integers(values: Sequence[RationalLike]) -> list[int]:
    """Scale a vector of rationals by the smallest positive factor that makes
    every entry an integer, and return the resulting integer vector.

    This is exactly the normalisation used to turn the rational solution of
    the SDF balance equations into the (smallest, positive, integral)
    repetition vector.
    """
    fracs = [as_rational(v) for v in values]
    if not fracs:
        return []
    denominators = [f.denominator for f in fracs]
    lcm_den = 1
    for d in denominators:
        lcm_den = lcm_den * d // math.gcd(lcm_den, d)
    ints = [int(f * lcm_den) for f in fracs]
    g = 0
    for i in ints:
        g = math.gcd(g, abs(i))
    if g > 1:
        ints = [i // g for i in ints]
    return ints


def is_integral(value: RationalLike) -> bool:
    """Return ``True`` if *value* is an integer-valued rational."""
    return as_rational(value).denominator == 1


def rational_str(value: RationalLike) -> str:
    """Human readable rendering: integers without denominator, otherwise p/q."""
    f = as_rational(value)
    if f.denominator == 1:
        return str(f.numerator)
    return f"{f.numerator}/{f.denominator}"


# --------------------------------------------------------------------------
# Integer-tick time base
# --------------------------------------------------------------------------

#: A resolution whose denominator exceeds this bound would turn every
#: timestamp into a multi-limb big integer; such programs keep the exact
#: fraction representation instead.
DEFAULT_MAX_TICK_DENOMINATOR = 10**18


class TimeBaseError(ValueError):
    """A timestamp does not lie on the tick grid of a :class:`TimeBase`."""


class TimeBase:
    """An exact integer-tick clock of a fixed rational resolution.

    One tick lasts ``resolution`` seconds.  A rational time is representable
    exactly iff it is an integer multiple of the resolution; construction via
    :meth:`for_durations` (the gcd of every duration the program schedules:
    periods, execution times, offsets) guarantees this for all timestamps a
    simulation can produce, because event times are sums of those durations.

    Conversions are exact in both directions -- :meth:`to_time` of
    :meth:`to_ticks` is the identity -- so a tick-based run is observationally
    identical to a fraction-based run; only the event queue's comparison cost
    changes.
    """

    __slots__ = ("resolution", "_num", "_den")

    def __init__(self, resolution: RationalLike) -> None:
        res = as_rational(resolution)
        if res <= 0:
            raise ValueError(f"tick resolution must be positive, got {res}")
        self.resolution: Rat = res
        self._num = res.numerator
        self._den = res.denominator

    @classmethod
    def for_durations(
        cls,
        durations: Iterable[RationalLike],
        *,
        max_denominator: Optional[int] = DEFAULT_MAX_TICK_DENOMINATOR,
    ) -> Optional["TimeBase"]:
        """The coarsest time base on whose grid all *durations* lie.

        The resolution is the rational gcd of the positive durations (zeros
        are grid points of every base and are skipped).  Returns ``None`` --
        the caller falls back to exact fractions -- when there is no positive
        duration to derive a resolution from, or when the resolution's
        denominator exceeds *max_denominator* (tick counts would become
        arbitrarily large big integers, defeating the point).
        """
        positive = [f for f in (as_rational(d) for d in durations) if f > 0]
        if not positive:
            return None
        resolution = rational_gcd(positive)
        if max_denominator is not None and resolution.denominator > max_denominator:
            return None
        return cls(resolution)

    def to_ticks(self, time: RationalLike) -> int:
        """Exact tick count of *time*; raises :class:`TimeBaseError` when
        *time* is not on the tick grid."""
        f = as_rational(time)
        ticks, remainder = divmod(f.numerator * self._den, f.denominator * self._num)
        if remainder:
            raise TimeBaseError(
                f"{rational_str(f)} s is not a multiple of the tick resolution "
                f"{rational_str(self.resolution)} s"
            )
        return ticks

    def try_ticks(self, time: RationalLike) -> Optional[int]:
        """Exact tick count of *time*, or ``None`` when off the grid."""
        f = as_rational(time)
        ticks, remainder = divmod(f.numerator * self._den, f.denominator * self._num)
        return None if remainder else ticks

    def ticks_floor(self, time: RationalLike) -> int:
        """The last tick at or before *time* (for run horizons, which bound
        event processing but need not be grid points themselves)."""
        f = as_rational(time)
        return (f.numerator * self._den) // (f.denominator * self._num)

    def to_time(self, ticks: int) -> Rat:
        """The exact rational time of tick *ticks* (inverse of
        :meth:`to_ticks`)."""
        return Fraction(ticks * self._num, self._den)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimeBase(resolution={rational_str(self.resolution)} s)"
