"""Value digests for the incremental steady-state key.

The value-exact fast-forward detector (:mod:`repro.engine.steady_state`)
folds every mutable data value in the system into its periodicity key.
Rebuilding that fold from scratch at every anchor completion is what made
the sampling phase ~7x slower than naive simulation; instead, mutation
sites (buffer writes, function state changes) maintain small integer
digests incrementally, and the detector only combines them.

:func:`value_digest` is the one digest function both sides use -- the
write-time maintenance in :class:`~repro.graph.circular_buffer.CircularBuffer`
and the from-scratch oracle ``state_key_slow()`` -- so the incremental key
can be cross-checked for *equality* against the oracle, not merely for
collision-freedom.
"""

from __future__ import annotations

from typing import Any


def value_digest(value: Any) -> int:
    """A cheap integer digest of one data value.

    Hashable values (floats, ints, tuples of floats -- everything the
    packaged apps stream) digest through the C-level ``hash`` directly;
    unhashable ones (lists, dicts, arrays) fall back to hashing their
    ``repr``.  The digest is a pure function of the value, which is what
    makes write-time maintenance equal to from-scratch recomputation.

    Digests are compared only within one process (the detector's state
    table is in-memory), so ``PYTHONHASHSEED`` sensitivity of string
    hashes is irrelevant here.
    """
    try:
        return hash(value)
    except TypeError:
        return hash(repr(value))
