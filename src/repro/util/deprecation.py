"""Deprecation warnings for the pre-facade helper functions.

The per-app ``compile_*`` / ``simulate_*`` helpers predate :mod:`repro.api`
and are kept as thin aliases so existing code keeps working; new code should
go through the facade.  :func:`warn_deprecated` emits the standard
``DeprecationWarning`` pointing at the replacement (visible under ``python
-W default`` and in pytest runs, silent by default in applications -- the
usual Python deprecation contract).
"""

from __future__ import annotations

import warnings


def warn_deprecated(old: str, replacement: str, *, stacklevel: int = 3) -> None:
    """Warn that *old* is deprecated in favour of *replacement*."""
    warnings.warn(
        f"{old} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
