"""Shared utilities for the OIL/CTA reproduction.

This package contains the numerically exact building blocks the analysis
layers rely on:

* :mod:`repro.util.rational` -- exact rational rate arithmetic,
* :mod:`repro.util.units` -- frequency / time unit handling (Hz, kHz, MHz,
  seconds, milliseconds, microseconds),
* :mod:`repro.util.graphs` -- constraint-graph algorithms (Bellman-Ford
  longest/shortest path with cycle detection, Howard / Lawler style cycle
  ratio computations, cycle enumeration helpers),
* :mod:`repro.util.validation` -- small argument-validation helpers used
  across the public API.
"""

from repro.util.rational import (
    Rat,
    TimeBase,
    TimeBaseError,
    as_rational,
    rational_gcd,
    rational_lcm,
)
from repro.util.units import Frequency, TimeValue, hz, khz, mhz, ms, us, seconds
from repro.util.graphs import (
    ConstraintGraph,
    BellmanFordResult,
    CycleRatioResult,
    detect_positive_cycle,
    longest_path_offsets,
    minimum_cycle_ratio,
    maximum_cycle_ratio,
    simple_cycles,
)
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_type,
    check_in,
    require,
)

__all__ = [
    "Rat",
    "TimeBase",
    "TimeBaseError",
    "as_rational",
    "rational_gcd",
    "rational_lcm",
    "Frequency",
    "TimeValue",
    "hz",
    "khz",
    "mhz",
    "ms",
    "us",
    "seconds",
    "ConstraintGraph",
    "BellmanFordResult",
    "CycleRatioResult",
    "detect_positive_cycle",
    "longest_path_offsets",
    "minimum_cycle_ratio",
    "maximum_cycle_ratio",
    "simple_cycles",
    "check_positive",
    "check_non_negative",
    "check_type",
    "check_in",
    "require",
]
