"""Frequency and time unit handling.

OIL programs declare sources and sinks with frequencies (``@ 6.4 MHz``,
``@ 32 kHz``) and latency constraints in milliseconds (``start x 5 ms before
y``).  The analysis internally works in a single canonical unit system:

* time:      **seconds**, stored as exact rationals,
* frequency: **Hertz**,   stored as exact rationals.

:class:`Frequency` and :class:`TimeValue` are thin, immutable wrappers that
carry the canonical rational value, support arithmetic, comparison and
conversion and render themselves with an appropriate SI prefix.  The free
functions :func:`hz`, :func:`khz`, :func:`mhz`, :func:`seconds`, :func:`ms`
and :func:`us` are convenience constructors used heavily in tests and
examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

from repro.util.rational import Rat, RationalLike, as_rational


@dataclass(frozen=True, order=True)
class Frequency:
    """A frequency in Hertz, stored exactly.

    Supports scaling by rationals, ratio of two frequencies (a rational) and
    conversion to a :class:`TimeValue` period.
    """

    hertz: Rat

    def __post_init__(self) -> None:
        object.__setattr__(self, "hertz", as_rational(self.hertz))
        if self.hertz <= 0:
            raise ValueError(f"frequency must be positive, got {self.hertz}")

    @property
    def period(self) -> "TimeValue":
        """The period 1/f as a :class:`TimeValue` in seconds."""
        return TimeValue(Fraction(1, 1) / self.hertz)

    def __mul__(self, factor: RationalLike) -> "Frequency":
        return Frequency(self.hertz * as_rational(factor))

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Frequency", RationalLike]) -> Union[Rat, "Frequency"]:
        if isinstance(other, Frequency):
            return self.hertz / other.hertz
        return Frequency(self.hertz / as_rational(other))

    def to_float(self) -> float:
        return float(self.hertz)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        value = self.hertz
        for factor, suffix in ((10**9, "GHz"), (10**6, "MHz"), (10**3, "kHz")):
            if value >= factor:
                scaled = value / factor
                return f"{float(scaled):g} {suffix}"
        return f"{float(value):g} Hz"


@dataclass(frozen=True, order=True)
class TimeValue:
    """A time duration (or delay) in seconds, stored exactly.

    Negative values are allowed because the CTA model uses negative delays to
    express buffer capacities and periodicity back-edges.
    """

    seconds: Rat

    def __post_init__(self) -> None:
        object.__setattr__(self, "seconds", as_rational(self.seconds))

    def __add__(self, other: "TimeValue") -> "TimeValue":
        return TimeValue(self.seconds + other.seconds)

    def __sub__(self, other: "TimeValue") -> "TimeValue":
        return TimeValue(self.seconds - other.seconds)

    def __neg__(self) -> "TimeValue":
        return TimeValue(-self.seconds)

    def __mul__(self, factor: RationalLike) -> "TimeValue":
        return TimeValue(self.seconds * as_rational(factor))

    __rmul__ = __mul__

    def __truediv__(self, other: Union["TimeValue", RationalLike]) -> Union[Rat, "TimeValue"]:
        if isinstance(other, TimeValue):
            return self.seconds / other.seconds
        return TimeValue(self.seconds / as_rational(other))

    def to_float(self) -> float:
        return float(self.seconds)

    def to_ms(self) -> float:
        return float(self.seconds * 1000)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        value = self.seconds
        magnitude = abs(value)
        if magnitude == 0:
            return "0 s"
        for factor, suffix in ((Fraction(1), "s"), (Fraction(1, 10**3), "ms"), (Fraction(1, 10**6), "us"), (Fraction(1, 10**9), "ns")):
            if magnitude >= factor:
                return f"{float(value / factor):g} {suffix}"
        return f"{float(value):g} s"


def hz(value: RationalLike) -> Frequency:
    """Construct a frequency given in Hertz."""
    return Frequency(as_rational(value))


def khz(value: RationalLike) -> Frequency:
    """Construct a frequency given in kilohertz."""
    return Frequency(as_rational(value) * 1000)


def mhz(value: RationalLike) -> Frequency:
    """Construct a frequency given in megahertz."""
    return Frequency(as_rational(value) * 10**6)


def seconds(value: RationalLike) -> TimeValue:
    """Construct a duration given in seconds."""
    return TimeValue(as_rational(value))


def ms(value: RationalLike) -> TimeValue:
    """Construct a duration given in milliseconds."""
    return TimeValue(as_rational(value) / 1000)


def us(value: RationalLike) -> TimeValue:
    """Construct a duration given in microseconds."""
    return TimeValue(as_rational(value) / 10**6)


_FREQ_SUFFIXES = {
    "hz": 1,
    "khz": 10**3,
    "mhz": 10**6,
    "ghz": 10**9,
}

_TIME_SUFFIXES = {
    "s": Fraction(1),
    "sec": Fraction(1),
    "ms": Fraction(1, 10**3),
    "us": Fraction(1, 10**6),
    "ns": Fraction(1, 10**9),
}


def parse_frequency(text: str) -> Frequency:
    """Parse a frequency literal such as ``"6.4 MHz"`` or ``"32kHz"``."""
    stripped = text.strip().replace(" ", "")
    lowered = stripped.lower()
    for suffix in sorted(_FREQ_SUFFIXES, key=len, reverse=True):
        if lowered.endswith(suffix):
            number = stripped[: len(stripped) - len(suffix)]
            return Frequency(as_rational(float(number)) * _FREQ_SUFFIXES[suffix])
    raise ValueError(f"cannot parse frequency literal {text!r}")


def parse_time(text: str) -> TimeValue:
    """Parse a time literal such as ``"5 ms"`` or ``"0.5s"``."""
    stripped = text.strip().replace(" ", "")
    lowered = stripped.lower()
    for suffix in sorted(_TIME_SUFFIXES, key=len, reverse=True):
        if lowered.endswith(suffix):
            number = stripped[: len(stripped) - len(suffix)]
            return TimeValue(as_rational(float(number)) * _TIME_SUFFIXES[suffix])
    raise ValueError(f"cannot parse time literal {text!r}")
