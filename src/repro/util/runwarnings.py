"""Structured run warnings with stable machine-readable codes.

Fast-forward refusals and give-ups have always been plain strings on
``RunResult.warnings`` / ``SweepReport.warnings``.  :class:`RunWarning`
keeps that contract -- it *is* a ``str``, so substring assertions, report
rendering and JSON serialisation are unchanged -- while carrying a stable
``warning_code`` that callers can branch on without parsing free text.

The codes currently emitted are registered in :data:`WARNING_CODES` (the
canonical in-source registry) and documented, cross-linked with the
pre-flight rule ids that surface them before a run, in ``docs/registry.md``
-- a test keeps code, registry and table in sync.
"""

from __future__ import annotations

from typing import Dict

#: Every stable warning code, with a one-line meaning.  This dict is the
#: single in-source registry: a code emitted anywhere in the package must
#: have an entry here and a row in ``docs/registry.md`` (test-enforced).
WARNING_CODES: Dict[str, str] = {
    "undeclared-source": (
        "a source wraps a bare iterator that cannot be advanced through a "
        "steady-state jump; auto mode fell back to naive execution"
    ),
    "undeclared-function": (
        "a coordinated function declares no jump behaviour (stateless, "
        "jump_invariant or get_state); auto mode fell back to naive"
    ),
    "speed-migrating-policy": (
        "the policy can resume a preempted firing at a different speed; "
        "engine-level fast-forward refusal"
    ),
    "fraction-time-base": (
        "the run executes on the fraction time base, which the steady-state "
        "detector does not support; engine-level fast-forward refusal"
    ),
    "no-steady-state-key": (
        "the configuration exposes no periodicity key (e.g. no anchor task); "
        "engine-level fast-forward refusal"
    ),
    "state-table-overflow": (
        "the detector sampled max_states anchor states without finding a "
        "repeat and gave up"
    ),
    "generator-advance": (
        "a steady-state jump replayed a large number of draws through a "
        "generator-backed stimulus whose advance() is O(k); the jump "
        "happened but cost time linear in the skipped horizon"
    ),
}


class RunWarning(str):
    """A warning message with a stable machine-readable ``warning_code``.

    Subclasses ``str`` so every existing consumer keeps working; the code
    travels alongside, including through pickling (the process sweep
    backend ships metric rows by pickle).
    """

    warning_code: str

    def __new__(cls, message: str, code: str = "") -> "RunWarning":
        self = super().__new__(cls, message)
        self.warning_code = code
        return self

    def __reduce__(self):
        return (self.__class__, (str(self), self.warning_code))

    def derive(self, message: str) -> "RunWarning":
        """The same code on a different message (sweep hoisting prefixes
        entries with their point index)."""
        return self.__class__(message, self.warning_code)


def warning_code(entry) -> str:
    """The stable code of a warnings entry (``""`` for legacy strings)."""
    return getattr(entry, "warning_code", "")
