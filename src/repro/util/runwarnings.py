"""Structured run warnings with stable machine-readable codes.

Fast-forward refusals and give-ups have always been plain strings on
``RunResult.warnings`` / ``SweepReport.warnings``.  :class:`RunWarning`
keeps that contract -- it *is* a ``str``, so substring assertions, report
rendering and JSON serialisation are unchanged -- while carrying a stable
``warning_code`` that callers can branch on without parsing free text.

Codes currently emitted:

``undeclared-source``
    A source wraps a bare iterator that cannot be advanced through a
    steady-state jump (auto mode fell back to naive execution).
``undeclared-function``
    A coordinated function declares no jump behaviour (``stateless``,
    ``jump_invariant`` or ``get_state``); auto mode fell back to naive.
``speed-migrating-policy`` / ``fraction-time-base`` / ``no-steady-state-key``
    The engine-level refusals of :func:`repro.engine.steady_state.fast_forward_refusal`.
``state-table-overflow``
    The detector sampled ``max_states`` anchor states without a repeat.
"""

from __future__ import annotations


class RunWarning(str):
    """A warning message with a stable machine-readable ``warning_code``.

    Subclasses ``str`` so every existing consumer keeps working; the code
    travels alongside, including through pickling (the process sweep
    backend ships metric rows by pickle).
    """

    warning_code: str

    def __new__(cls, message: str, code: str = "") -> "RunWarning":
        self = super().__new__(cls, message)
        self.warning_code = code
        return self

    def __reduce__(self):
        return (self.__class__, (str(self), self.warning_code))

    def derive(self, message: str) -> "RunWarning":
        """The same code on a different message (sweep hoisting prefixes
        entries with their point index)."""
        return self.__class__(message, self.warning_code)


def warning_code(entry) -> str:
    """The stable code of a warnings entry (``""`` for legacy strings)."""
    return getattr(entry, "warning_code", "")
