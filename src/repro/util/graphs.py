"""Constraint-graph algorithms used by the temporal analysis layers.

The CTA consistency and buffer-sizing algorithms, as well as the SDF
throughput baseline, reduce to questions about weighted directed graphs:

* *Is there a positive-weight cycle?*  If data can be delayed by a positive
  amount of time around a cycle it arrives too late -- the composition is
  inconsistent (Sec. V-A of the paper).  This is a Bellman-Ford computation
  on the *longest-path* (difference-constraint) formulation.
* *What are feasible start offsets for every port?*  The longest path from a
  virtual super-source gives the earliest feasible offsets when no positive
  cycle exists.
* *What is the extreme ratio of two additive edge weights over all cycles?*
  (maximum / minimum cycle ratio).  Used for SDF throughput (maximum cycle
  mean of the HSDF graph) and for the maximal-achievable-rate computation of
  the CTA consistency algorithm.  Implemented with the standard Newton /
  Howard-style iteration over Bellman-Ford feasibility checks, with a
  bisection fallback; every check is a single Bellman-Ford run, so the whole
  computation is polynomial.

All algorithms use exact :class:`fractions.Fraction` weights so that the rate
computations of the analysis are bit-exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.util.rational import Rat, as_rational

Node = Hashable

#: Callable mapping an edge to its effective rational weight.
EdgeEvaluator = Callable[["Edge"], Rat]


@dataclass(frozen=True)
class Edge:
    """A weighted directed edge of a :class:`ConstraintGraph`.

    ``weight`` is the primary (constant) weight; ``parametric`` is an optional
    secondary weight used by the cycle-ratio computations (token counts for
    SDF throughput, rate-dependent delay coefficients for CTA rates).
    """

    source: Node
    target: Node
    weight: Rat
    parametric: Rat = Fraction(0)
    label: Optional[str] = None


@dataclass
class BellmanFordResult:
    """Result of a longest-path / positive-cycle computation."""

    has_positive_cycle: bool
    #: Longest-path distance (earliest feasible start offset) per node; only
    #: meaningful when ``has_positive_cycle`` is False.
    offsets: Dict[Node, Rat] = field(default_factory=dict)
    #: One witness cycle (list of edges) when a positive cycle exists.
    cycle: List[Edge] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return not self.has_positive_cycle


@dataclass
class CycleRatioResult:
    """Result of a cycle-ratio computation.

    ``ratio`` is the extreme value of ``sum(weight) / sum(parametric)`` over
    all cycles with a strictly positive parametric sum.  ``ratio`` is ``None``
    either when no cycle has a positive parametric sum (``unbounded`` False,
    no constraint) or when a cycle with non-positive parametric sum and
    positive weight makes the ratio unbounded (``unbounded`` True); in the
    latter case ``cycle`` carries a witness.
    """

    ratio: Optional[Rat]
    cycle: List[Edge] = field(default_factory=list)
    unbounded: bool = False


class ConstraintGraph:
    """A directed multigraph with exact rational edge weights.

    Nodes may be any hashable objects.  The graph supports the longest-path /
    positive-cycle queries and cycle-ratio computations that the temporal
    analysis layers are built on.
    """

    def __init__(self) -> None:
        self._nodes: Dict[Node, None] = {}
        self._edges: List[Edge] = []
        self._out: Dict[Node, List[Edge]] = {}

    # ------------------------------------------------------------------ build
    def add_node(self, node: Node) -> None:
        """Add *node* (idempotent)."""
        if node not in self._nodes:
            self._nodes[node] = None
            self._out.setdefault(node, [])

    def add_edge(
        self,
        source: Node,
        target: Node,
        weight: Rat | int | float | str,
        *,
        parametric: Rat | int | float | str = 0,
        label: Optional[str] = None,
    ) -> Edge:
        """Add a directed edge and return it."""
        self.add_node(source)
        self.add_node(target)
        edge = Edge(source, target, as_rational(weight), as_rational(parametric), label)
        self._edges.append(edge)
        self._out[source].append(edge)
        return edge

    # --------------------------------------------------------------- accessors
    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes)

    @property
    def edges(self) -> List[Edge]:
        return list(self._edges)

    def out_edges(self, node: Node) -> List[Edge]:
        return list(self._out.get(node, []))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------- algorithms
    def longest_paths(self, *, evaluate: Optional[EdgeEvaluator] = None) -> BellmanFordResult:
        """Longest-path distances from a virtual super-source to every node.

        The difference-constraint system ``offset[target] >= offset[source] +
        weight(edge)`` for all edges is feasible iff the graph has no
        positive-weight cycle.  When feasible, the returned offsets are the
        componentwise-smallest non-negative solution.

        Parameters
        ----------
        evaluate:
            Optional callable mapping an :class:`Edge` to its effective
            rational weight.  Defaults to ``edge.weight``; the CTA consistency
            algorithm passes a closure that folds the rate-dependent part in.
        """
        if evaluate is None:
            evaluate = lambda e: e.weight  # noqa: E731 - tiny adapter

        nodes = list(self._nodes)
        dist: Dict[Node, Rat] = {n: Fraction(0) for n in nodes}
        pred: Dict[Node, Optional[Edge]] = {n: None for n in nodes}

        weights = [(edge, evaluate(edge)) for edge in self._edges]

        updated_node: Optional[Node] = None
        for _ in range(len(nodes)):
            updated_node = None
            for edge, w in weights:
                cand = dist[edge.source] + w
                if cand > dist[edge.target]:
                    dist[edge.target] = cand
                    pred[edge.target] = edge
                    updated_node = edge.target
            if updated_node is None:
                break

        if updated_node is not None:
            # A node was still relaxed in the n-th round: positive cycle.
            cycle = self._extract_cycle(pred, updated_node)
            return BellmanFordResult(True, {}, cycle)
        return BellmanFordResult(False, dist, [])

    def _extract_cycle(self, pred: Dict[Node, Optional[Edge]], start: Node) -> List[Edge]:
        """Walk predecessor edges from *start* to recover a cycle."""
        node = start
        for _ in range(len(self._nodes)):
            edge = pred[node]
            if edge is None:
                return []
            node = edge.source
        # ``node`` is now guaranteed to lie on a cycle of predecessor edges.
        cycle_edges: List[Edge] = []
        cursor = node
        while True:
            edge = pred[cursor]
            assert edge is not None
            cycle_edges.append(edge)
            cursor = edge.source
            if cursor == node:
                break
        cycle_edges.reverse()
        return cycle_edges

    def has_positive_cycle(self, *, evaluate: Optional[EdgeEvaluator] = None) -> bool:
        """Return True if the graph contains a cycle with positive total weight."""
        return self.longest_paths(evaluate=evaluate).has_positive_cycle

    # ------------------------------------------------------- cycle enumeration
    def iter_simple_cycles(self) -> Iterator[List[Edge]]:
        """Enumerate simple cycles (DFS based, exponential).

        Only used by tests and by the exact exponential baselines; the
        polynomial-time algorithms never enumerate cycles.
        """
        index = {n: i for i, n in enumerate(self._nodes)}
        nodes = list(self._nodes)

        for start_idx, start in enumerate(nodes):
            stack: List[Tuple[Node, Iterator[Edge]]] = [(start, iter(self._out.get(start, [])))]
            path_edges: List[Edge] = []
            on_path = {start}
            while stack:
                node, it = stack[-1]
                advanced = False
                for edge in it:
                    if index[edge.target] < start_idx:
                        continue
                    if edge.target == start:
                        yield path_edges + [edge]
                        continue
                    if edge.target in on_path:
                        continue
                    stack.append((edge.target, iter(self._out.get(edge.target, []))))
                    path_edges.append(edge)
                    on_path.add(edge.target)
                    advanced = True
                    break
                if not advanced:
                    stack.pop()
                    if path_edges and stack:
                        removed = path_edges.pop()
                        on_path.discard(removed.target)
                    elif not stack:
                        on_path = {start}
                        path_edges = []

    # ---------------------------------------------------------- cycle ratios
    def maximum_cycle_ratio(self) -> CycleRatioResult:
        """Maximum of ``sum(weight)/sum(parametric)`` over all cycles.

        Precondition: every parametric edge weight is non-negative (as is the
        case for SDF token counts and execution times).  Cycles whose
        parametric sum is zero but whose weight sum is positive make the
        ratio unbounded (``unbounded=True``).

        The computation is the standard Newton iteration: for a candidate
        ratio ``lam`` a cycle with ratio greater than ``lam`` exists iff the
        graph with edge weights ``weight - lam * parametric`` has a positive
        cycle (one Bellman-Ford run).  The candidate is then raised to the
        exact ratio of the witness cycle; iteration stops when no cycle beats
        the candidate.  Each step is one Bellman-Ford run.
        """
        for edge in self._edges:
            if edge.parametric < 0:
                raise ValueError(
                    "maximum_cycle_ratio requires non-negative parametric weights; "
                    f"edge {edge.label or (edge.source, edge.target)} has {edge.parametric}"
                )

        # Cycles consisting solely of parametric == 0 edges with positive total
        # weight make the ratio unbounded.
        zero_graph = ConstraintGraph()
        for edge in self._edges:
            if edge.parametric == 0:
                zero_graph.add_edge(edge.source, edge.target, edge.weight, label=edge.label)
        zero_result = zero_graph.longest_paths()
        if zero_result.has_positive_cycle:
            return CycleRatioResult(None, zero_result.cycle, unbounded=True)

        if all(edge.parametric == 0 for edge in self._edges):
            return CycleRatioResult(None, [], unbounded=False)

        def shifted(lam: Rat) -> EdgeEvaluator:
            return lambda e: e.weight - lam * e.parametric

        # Start below any possible cycle ratio.
        total_weight = sum((abs(e.weight) for e in self._edges), Fraction(0))
        min_param = min(e.parametric for e in self._edges if e.parametric > 0)
        lam = -(total_weight / min_param) - 1

        best_cycle: List[Edge] = []
        best_ratio: Optional[Rat] = None
        max_iterations = 4 * len(self._edges) * max(len(self._nodes), 1) + 64
        for _ in range(max_iterations):
            result = self.longest_paths(evaluate=shifted(lam))
            if not result.has_positive_cycle:
                return CycleRatioResult(best_ratio, best_cycle, unbounded=False)
            cycle = result.cycle
            weight_sum = sum((e.weight for e in cycle), Fraction(0))
            param_sum = sum((e.parametric for e in cycle), Fraction(0))
            if param_sum == 0:
                # Should have been caught by the zero-parametric pre-check,
                # but a mixed cycle may still contain only zero-parametric
                # edges after relaxation quirks; report as unbounded.
                return CycleRatioResult(None, cycle, unbounded=True)
            ratio = weight_sum / param_sum
            if best_ratio is not None and ratio <= best_ratio:
                # No strict progress: the witness is optimal.
                return CycleRatioResult(best_ratio, best_cycle, unbounded=False)
            best_ratio = ratio
            best_cycle = cycle
            lam = ratio
        # Fallback (should not happen): return the best witness found.
        return CycleRatioResult(best_ratio, best_cycle, unbounded=False)

    def minimum_cycle_ratio(self) -> CycleRatioResult:
        """Minimum of ``sum(weight)/sum(parametric)`` over all cycles.

        Computed as the negated maximum cycle ratio of the graph with negated
        weights.  Same precondition as :meth:`maximum_cycle_ratio`.
        """
        negated = ConstraintGraph()
        for edge in self._edges:
            negated.add_edge(
                edge.source,
                edge.target,
                -edge.weight,
                parametric=edge.parametric,
                label=edge.label,
            )
        result = negated.maximum_cycle_ratio()
        if result.ratio is None:
            # Map the witness edges back to the original graph's edges.
            return CycleRatioResult(None, _map_back(self, result.cycle), result.unbounded)
        return CycleRatioResult(-result.ratio, _map_back(self, result.cycle), result.unbounded)


def _map_back(graph: ConstraintGraph, cycle: Sequence[Edge]) -> List[Edge]:
    """Map witness edges from a derived graph back onto *graph* by endpoints/label."""
    mapped: List[Edge] = []
    for witness in cycle:
        for edge in graph.edges:
            if (
                edge.source == witness.source
                and edge.target == witness.target
                and edge.label == witness.label
            ):
                mapped.append(edge)
                break
    return mapped


# --------------------------------------------------------------------------
# Free-function wrappers (convenience API used by the analysis layers)
# --------------------------------------------------------------------------

def detect_positive_cycle(
    graph: ConstraintGraph, *, evaluate: Optional[EdgeEvaluator] = None
) -> BellmanFordResult:
    """Run the positive-cycle detection on *graph* and return the full result."""
    return graph.longest_paths(evaluate=evaluate)


def longest_path_offsets(
    graph: ConstraintGraph, *, evaluate: Optional[EdgeEvaluator] = None
) -> Dict[Node, Rat]:
    """Feasible start offsets (longest path distances); raises if infeasible."""
    result = graph.longest_paths(evaluate=evaluate)
    if result.has_positive_cycle:
        labels = [e.label or f"{e.source}->{e.target}" for e in result.cycle]
        raise ValueError(
            "constraint graph has a positive-delay cycle (infeasible): "
            + " -> ".join(map(str, labels))
        )
    return result.offsets


def maximum_cycle_ratio(graph: ConstraintGraph) -> CycleRatioResult:
    """Maximum cycle ratio of *graph* (see :meth:`ConstraintGraph.maximum_cycle_ratio`)."""
    return graph.maximum_cycle_ratio()


def minimum_cycle_ratio(graph: ConstraintGraph) -> CycleRatioResult:
    """Minimum cycle ratio of *graph* (see :meth:`ConstraintGraph.minimum_cycle_ratio`)."""
    return graph.minimum_cycle_ratio()


def simple_cycles(graph: ConstraintGraph) -> List[List[Edge]]:
    """All simple cycles of *graph* as edge lists (exponential; test helper)."""
    return list(graph.iter_simple_cycles())
