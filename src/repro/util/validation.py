"""Small argument-validation helpers shared across the public API.

These helpers raise uniform, descriptive exceptions so API misuse surfaces
immediately at the boundary instead of deep inside an analysis algorithm.
"""

from __future__ import annotations

from typing import Any, Collection, Type, TypeVar

T = TypeVar("T")


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* if *condition* is false."""
    if not condition:
        raise ValueError(message)


def check_type(value: Any, expected: Type[T] | tuple[type, ...], name: str) -> T:
    """Check that *value* is an instance of *expected* and return it."""
    if not isinstance(value, expected):
        expected_name = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {expected_name}, got {type(value).__name__}")
    return value


def check_positive(value: Any, name: str) -> Any:
    """Check that a numeric *value* is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(value: Any, name: str) -> Any:
    """Check that a numeric *value* is non-negative."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_in(value: T, allowed: Collection[T], name: str) -> T:
    """Check that *value* is a member of *allowed*."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}")
    return value


def check_identifier(value: str, name: str) -> str:
    """Check that *value* is a valid OIL/CTA identifier (letters, digits, '_',
    '.', ':' and '[]' for generated hierarchical names), non-empty."""
    if not isinstance(value, str) or not value:
        raise ValueError(f"{name} must be a non-empty string, got {value!r}")
    allowed = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.:[]/#<>-")
    bad = set(value) - allowed
    if bad:
        raise ValueError(f"{name} {value!r} contains invalid characters: {sorted(bad)}")
    return value
