"""Task graphs extracted from sequential OIL modules.

Parallelism is extracted from a sequential OIL module in the form of a task
graph (Sec. IV, following ref. [5]):

* a *task* is created for every function call and assignment statement; a
  task whose statement is guarded by an ``if``/``switch`` executes
  unconditionally but the function/assignment inside remains guarded,
* for every variable a *circular buffer* is created; every statement writing
  the variable becomes a producer, every statement reading it a consumer
  (ref. [26] allows multiple producers and consumers on one buffer),
* stream parameters of the module become buffers of kind "stream" whose other
  end is outside the module,
* values written to output streams before the first loop (e.g. the ``init``
  call of Fig. 2c) become *initial tokens* of the corresponding buffer.

The structures in this module are purely structural; the functional circular
buffer used by the runtime lives in :mod:`repro.graph.circular_buffer` and the
extraction itself in :mod:`repro.graph.extraction`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lang import ast
from repro.util.rational import Rat, as_rational
from repro.util.validation import require


@dataclass(frozen=True)
class Access:
    """One access of a task to a buffer: *count* values per execution."""

    buffer: str
    count: int

    def __post_init__(self) -> None:
        require(self.count >= 1, "access count must be at least 1")


@dataclass
class Task:
    """A node of the task graph.

    ``guard`` is the condition under which the task's body actually executes
    (``None`` for unguarded statements); the task itself fires every
    iteration of its innermost enclosing loop regardless of the guard.
    ``loop`` is the identifier of that innermost loop (``None`` for statements
    outside all loops, which execute exactly once at start-up).
    """

    name: str
    kind: str  # "call" | "assignment" | "init"
    statement: Optional[ast.Statement] = None
    function: Optional[str] = None
    guard: Optional[ast.Expression] = None
    loop: Optional[str] = None
    reads: List[Access] = field(default_factory=list)
    writes: List[Access] = field(default_factory=list)
    #: worst-case response time in seconds (assigned from the function registry)
    firing_duration: Rat = Fraction(0)
    #: position of the originating statement in the module's sequential order
    order: int = 0

    def reads_from(self, buffer: str) -> int:
        return sum(a.count for a in self.reads if a.buffer == buffer)

    def writes_to(self, buffer: str) -> int:
        return sum(a.count for a in self.writes if a.buffer == buffer)


@dataclass
class BufferSpec:
    """A circular buffer of the task graph.

    ``kind`` is ``"variable"`` for module-local variables, ``"stream-in"`` /
    ``"stream-out"`` for the module's stream parameters.  ``initial_tokens``
    are values available before the steady-state loops start (produced by
    statements outside any loop).
    """

    name: str
    kind: str
    producers: List[Tuple[str, int]] = field(default_factory=list)  # (task, count)
    consumers: List[Tuple[str, int]] = field(default_factory=list)
    initial_tokens: int = 0

    @property
    def production_per_iteration(self) -> int:
        return sum(count for _, count in self.producers)

    @property
    def consumption_per_iteration(self) -> int:
        return sum(count for _, count in self.consumers)


@dataclass
class LoopInfo:
    """A while-loop of the module body.

    ``identifier`` is a stable name ("loop0", "loop0.loop1", ...); ``parent``
    the identifier of the enclosing loop (``None`` for top-level loops);
    ``condition`` the loop condition (``while(1)`` marks infinite streaming
    loops); ``order`` the loop's position in the sequential execution order.
    """

    identifier: str
    parent: Optional[str]
    condition: ast.Expression
    order: int

    @property
    def is_infinite(self) -> bool:
        return isinstance(self.condition, ast.NumberLiteral) and self.condition.value == 1


@dataclass
class StreamEndpoint:
    """How the module as a whole uses one of its stream parameters."""

    name: str
    is_output: bool
    #: per loop identifier: total values transferred per loop iteration
    per_loop_counts: Dict[str, int] = field(default_factory=dict)
    #: task names accessing the stream, in sequential program order
    accessing_tasks: List[str] = field(default_factory=list)
    #: values transferred before the first loop (initial writes)
    initial_values: int = 0


class TaskGraph:
    """The complete task graph of one sequential OIL module."""

    def __init__(self, module_name: str) -> None:
        self.module_name = module_name
        self.tasks: Dict[str, Task] = {}
        self.buffers: Dict[str, BufferSpec] = {}
        self.loops: Dict[str, LoopInfo] = {}
        self.streams: Dict[str, StreamEndpoint] = {}

    # ------------------------------------------------------------------ build
    def add_task(self, task: Task) -> Task:
        require(task.name not in self.tasks, f"duplicate task {task.name!r}")
        self.tasks[task.name] = task
        return task

    def add_buffer(self, buffer: BufferSpec) -> BufferSpec:
        require(buffer.name not in self.buffers, f"duplicate buffer {buffer.name!r}")
        self.buffers[buffer.name] = buffer
        return buffer

    def add_loop(self, loop: LoopInfo) -> LoopInfo:
        require(loop.identifier not in self.loops, f"duplicate loop {loop.identifier!r}")
        self.loops[loop.identifier] = loop
        return loop

    # -------------------------------------------------------------- accessors
    def tasks_in_loop(self, loop: Optional[str]) -> List[Task]:
        return [t for t in self.tasks.values() if t.loop == loop]

    def producers_of(self, buffer: str) -> List[Task]:
        return [self.tasks[name] for name, _ in self.buffers[buffer].producers]

    def consumers_of(self, buffer: str) -> List[Task]:
        return [self.tasks[name] for name, _ in self.buffers[buffer].consumers]

    def top_level_loops(self) -> List[LoopInfo]:
        return sorted(
            (l for l in self.loops.values() if l.parent is None), key=lambda l: l.order
        )

    def initialization_tasks(self) -> List[Task]:
        """Tasks outside any loop (execute exactly once before steady state)."""
        return sorted((t for t in self.tasks.values() if t.loop is None), key=lambda t: t.order)

    def set_firing_durations(self, durations: Dict[str, Rat], default: Rat = Fraction(0)) -> None:
        """Assign worst-case response times per coordinated function name."""
        for task in self.tasks.values():
            if task.function is not None and task.function in durations:
                task.firing_duration = as_rational(durations[task.function])
            elif task.kind == "assignment":
                task.firing_duration = as_rational(durations.get("__assignment__", default))
            else:
                task.firing_duration = as_rational(durations.get(task.function or "", default))

    # ------------------------------------------------------------- reporting
    def summary(self) -> str:
        lines = [
            f"task graph of module {self.module_name!r}: "
            f"{len(self.tasks)} tasks, {len(self.buffers)} buffers, {len(self.loops)} loops"
        ]
        for task in sorted(self.tasks.values(), key=lambda t: t.order):
            guard = " [guarded]" if task.guard is not None else ""
            loop = f" in {task.loop}" if task.loop else " (init)"
            reads = ", ".join(f"{a.buffer}:{a.count}" for a in task.reads)
            writes = ", ".join(f"{a.buffer}:{a.count}" for a in task.writes)
            lines.append(f"  {task.name}{guard}{loop}: reads[{reads}] writes[{writes}]")
        for buffer in self.buffers.values():
            lines.append(
                f"  buffer {buffer.name} ({buffer.kind}): producers={buffer.producers} "
                f"consumers={buffer.consumers} initial={buffer.initial_tokens}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TaskGraph {self.module_name!r} tasks={len(self.tasks)} "
            f"buffers={len(self.buffers)} loops={len(self.loops)}>"
        )
