"""Dataflow views and static-order schedules of task graphs.

Bridges the task graph extracted from a sequential OIL module to the SDF
substrate:

* :func:`task_graph_to_sdf` builds the SDF view of the tasks of one loop (or
  of the whole single-loop module), with one actor per task and one channel
  per buffer producer/consumer pair,
* :func:`static_order_schedule` produces a single-processor static-order
  schedule of one graph iteration -- the schedule a programmer of a purely
  sequential language would have to find and encode by hand (Sec. III-A /
  Fig. 2b); its length is what the Fig. 2 benchmark compares against the size
  of the OIL specification.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dataflow.analysis import check_deadlock, repetition_vector
from repro.dataflow.sdf import SDFGraph
from repro.graph.taskgraph import TaskGraph


def task_graph_to_sdf(
    graph: TaskGraph,
    *,
    loop: Optional[str] = None,
    include_streams: bool = True,
    stream_capacity: Optional[int] = None,
) -> SDFGraph:
    """Build the SDF view of the tasks of *loop* (default: the unique top-level
    loop when the module has exactly one, otherwise all tasks).

    Buffers written and read by the selected tasks become SDF channels; buffers
    connecting to the outside (stream parameters) become channels to/from
    synthetic ``<stream>.env`` actors when ``include_streams`` is True, so the
    resulting graph is closed and can be analysed for deadlock and throughput.
    ``stream_capacity`` optionally bounds those environment channels.
    """
    if loop is None:
        top = graph.top_level_loops()
        loop = top[0].identifier if len(top) == 1 else None

    if loop is not None:
        tasks = [t for t in graph.tasks.values() if t.loop == loop]
    else:
        tasks = list(graph.tasks.values())
    selected = {t.name for t in tasks}

    sdf = SDFGraph(f"{graph.module_name}.{loop or 'all'}")
    for task in sorted(tasks, key=lambda t: t.order):
        sdf.add_actor(task.name, firing_duration=task.firing_duration)

    env_actors: Dict[str, str] = {}

    def env_actor(stream: str) -> str:
        if stream not in env_actors:
            name = f"{stream}.env"
            sdf.add_actor(name, firing_duration=0)
            env_actors[stream] = name
        return env_actors[stream]

    for buffer in graph.buffers.values():
        producers = [(t, c) for t, c in buffer.producers if t in selected]
        consumers = [(t, c) for t, c in buffer.consumers if t in selected]
        external_producer = buffer.kind == "stream-in"
        external_consumer = buffer.kind == "stream-out"

        if external_producer and include_streams and consumers:
            endpoint = graph.streams[buffer.name]
            count = endpoint.per_loop_counts.get(loop, 0) if loop else max(
                endpoint.per_loop_counts.values(), default=1
            )
            if count:
                producers = [(env_actor(buffer.name), count)]
        if external_consumer and include_streams and producers:
            endpoint = graph.streams[buffer.name]
            count = endpoint.per_loop_counts.get(loop, 0) if loop else max(
                endpoint.per_loop_counts.values(), default=1
            )
            if count:
                consumers = [(env_actor(buffer.name), count)]

        if not producers or not consumers:
            continue

        # A channel per producer/consumer pair.  Multiple producers of a
        # variable (mutually exclusive guarded writers) all feed every
        # consumer; the initial tokens are attached to the first pair only.
        initial_remaining = buffer.initial_tokens
        for producer_name, production in producers:
            for consumer_name, consumption in consumers:
                edge_name = f"{buffer.name}.{producer_name}->{consumer_name}"
                sdf.add_edge(
                    edge_name,
                    producer_name,
                    consumer_name,
                    production=production,
                    consumption=consumption,
                    initial_tokens=initial_remaining,
                    buffer_name=buffer.name,
                )
                if stream_capacity is not None and (external_producer or external_consumer):
                    sdf.add_edge(
                        f"{edge_name}.space",
                        consumer_name,
                        producer_name,
                        production=consumption,
                        consumption=production,
                        initial_tokens=max(stream_capacity - initial_remaining, 0),
                        buffer_name=buffer.name,
                    )
                initial_remaining = 0

    return sdf


def static_order_schedule(sdf: SDFGraph) -> List[str]:
    """A valid single-processor static-order schedule for one iteration.

    This is the schedule that has to be spelled out explicitly when the same
    application is written in a sequential language (Fig. 2b); the list
    contains one entry per firing, so its length equals the sum of the
    repetition vector.  Raises ``ValueError`` when the graph deadlocks.
    """
    result = check_deadlock(sdf)
    if not result.deadlock_free:
        raise ValueError(
            f"graph {sdf.name!r} deadlocks; no static-order schedule exists "
            f"(remaining firings: {result.remaining})"
        )
    return result.schedule


def schedule_length(sdf: SDFGraph) -> int:
    """The length of the static-order schedule (sum of the repetition vector)."""
    return repetition_vector(sdf).total_firings()
