"""Extraction of task graphs from sequential OIL modules.

Implements the parallelisation front of ref. [5] as summarised in Sec. IV of
the paper:

* every function call and assignment statement becomes a task,
* tasks created from statements guarded by ``if``/``switch`` are executed
  unconditionally; the guard is kept on the task and applied to the function
  or assignment *inside* the task, and the variables the guard reads become
  additional inputs of the task,
* every local variable becomes a circular buffer with one producer per
  writing statement and one consumer per reading statement,
* every stream parameter becomes a buffer whose opposite side lives outside
  the module; values written to output streams before the first loop become
  the buffer's initial tokens (this is how the four initial values of the
  Fig. 2 example enter the model),
* while-loops are recorded with their nesting structure so the CTA derivation
  can create one component per loop (Sec. V-B.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graph.taskgraph import Access, BufferSpec, LoopInfo, StreamEndpoint, Task, TaskGraph
from repro.lang import ast
from repro.lang.errors import OilSemanticError


class _ExtractionState:
    """Mutable traversal state."""

    def __init__(self, module: ast.SequentialModule) -> None:
        self.module = module
        self.graph = TaskGraph(module.name)
        self.order = 0
        self.task_counter: Dict[str, int] = {}

    def next_order(self) -> int:
        self.order += 1
        return self.order

    def task_name(self, base: str) -> str:
        index = self.task_counter.get(base, 0)
        self.task_counter[base] = index + 1
        if index == 0:
            return f"t_{base}"
        return f"t_{base}_{index + 1}"


def extract_task_graph(module: ast.SequentialModule) -> TaskGraph:
    """Extract the task graph of a sequential OIL module."""
    state = _ExtractionState(module)
    graph = state.graph

    params = {p.name: p for p in module.params}
    for param in module.params:
        graph.streams[param.name] = StreamEndpoint(name=param.name, is_output=param.is_output)
        graph.add_buffer(
            BufferSpec(name=param.name, kind="stream-out" if param.is_output else "stream-in")
        )
    for variable in module.variables:
        graph.add_buffer(BufferSpec(name=variable.name, kind="variable"))

    _walk_statements(state, module.body, loop=None, guard=None, guard_reads=[])

    _finalise_streams(graph, params)
    return graph


# --------------------------------------------------------------------------
# traversal
# --------------------------------------------------------------------------

def _conjoin(left: Optional[ast.Expression], right: ast.Expression) -> ast.Expression:
    if left is None:
        return right
    return ast.BinaryOp("and", left, right)


def _negate(expression: ast.Expression) -> ast.Expression:
    return ast.UnaryOp("!", expression)


def _walk_statements(
    state: _ExtractionState,
    statements,
    *,
    loop: Optional[str],
    guard: Optional[ast.Expression],
    guard_reads: List[Tuple[str, int]],
) -> None:
    loop_counter = 0
    for statement in statements:
        if isinstance(statement, (ast.Assignment, ast.FunctionCall)):
            _make_task(state, statement, loop=loop, guard=guard, guard_reads=guard_reads)
        elif isinstance(statement, ast.IfStatement):
            condition_reads = list(ast.expression_stream_reads(statement.condition))
            _walk_statements(
                state,
                statement.then_body,
                loop=loop,
                guard=_conjoin(guard, statement.condition),
                guard_reads=guard_reads + condition_reads,
            )
            if statement.else_body:
                _walk_statements(
                    state,
                    statement.else_body,
                    loop=loop,
                    guard=_conjoin(guard, _negate(statement.condition)),
                    guard_reads=guard_reads + condition_reads,
                )
        elif isinstance(statement, ast.SwitchStatement):
            selector_reads = list(ast.expression_stream_reads(statement.selector))
            matched: Optional[ast.Expression] = None
            for case in statement.cases:
                case_condition = ast.BinaryOp(
                    "==", statement.selector, ast.NumberLiteral(case.value)
                )
                matched = case_condition if matched is None else ast.BinaryOp("or", matched, case_condition)
                _walk_statements(
                    state,
                    case.body,
                    loop=loop,
                    guard=_conjoin(guard, case_condition),
                    guard_reads=guard_reads + selector_reads,
                )
            default_guard = _negate(matched) if matched is not None else None
            if statement.default:
                _walk_statements(
                    state,
                    statement.default,
                    loop=loop,
                    guard=_conjoin(guard, default_guard) if default_guard is not None else guard,
                    guard_reads=guard_reads + selector_reads,
                )
        elif isinstance(statement, ast.LoopStatement):
            if guard is not None:
                raise OilSemanticError(
                    f"module {state.module.name!r}: while-loops nested inside if/switch "
                    "statements are not supported by the task extraction"
                )
            if loop is None:
                identifier = f"loop{loop_counter}"
            else:
                identifier = f"{loop}.loop{loop_counter}"
            loop_counter += 1
            state.graph.add_loop(
                LoopInfo(
                    identifier=identifier,
                    parent=loop,
                    condition=statement.condition,
                    order=state.next_order(),
                )
            )
            _walk_statements(
                state,
                statement.body,
                loop=identifier,
                guard=None,
                guard_reads=[],
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported statement {type(statement).__name__}")


def _make_task(
    state: _ExtractionState,
    statement,
    *,
    loop: Optional[str],
    guard: Optional[ast.Expression],
    guard_reads: List[Tuple[str, int]],
) -> Task:
    graph = state.graph

    if isinstance(statement, ast.Assignment):
        base = statement.target
        kind = "assignment"
        function = _single_function_name(statement.expression)
        writes = [(statement.target, 1)]
        reads = list(ast.expression_stream_reads(statement.expression))
    else:
        base = statement.name
        kind = "call"
        function = statement.name
        writes = [
            (argument.name, argument.count)
            for argument in statement.arguments
            if isinstance(argument, ast.OutArgument)
        ]
        reads = []
        for argument in statement.arguments:
            if isinstance(argument, ast.InArgument):
                reads.extend(ast.expression_stream_reads(argument.expression))

    if loop is None:
        kind = "init" if kind == "call" else kind

    # Guard variables are additional inputs of the task (the task must know
    # the guard's value to decide whether to execute its body).
    reads = reads + [r for r in guard_reads if r not in reads]

    task = Task(
        name=state.task_name(base),
        kind=kind,
        statement=statement,
        function=function,
        guard=guard,
        loop=loop,
        reads=[Access(name, count) for name, count in _merge_accesses(reads, mode="max")],
        writes=[Access(name, count) for name, count in _merge_accesses(writes, mode="sum")],
        order=state.next_order(),
    )
    graph.add_task(task)

    for access in task.reads:
        buffer = _buffer_for(graph, access.buffer)
        buffer.consumers.append((task.name, access.count))
    for access in task.writes:
        buffer = _buffer_for(graph, access.buffer)
        buffer.producers.append((task.name, access.count))

    return task


def _merge_accesses(accesses: List[Tuple[str, int]], *, mode: str = "sum") -> List[Tuple[str, int]]:
    """Merge repeated accesses to the same buffer within one statement.

    Reads are merged with ``max``: reading the same variable or stream several
    times inside one statement (e.g. in the guard and as an argument) observes
    the *same* values, so the statement only needs the largest access count
    (Sec. IV-A: "the same value is read repeatedly").  Writes are merged with
    ``sum``: every written value occupies its own location.
    """
    merged: Dict[str, int] = {}
    order: List[str] = []
    for name, count in accesses:
        if name not in merged:
            merged[name] = count
            order.append(name)
        elif mode == "max":
            merged[name] = max(merged[name], count)
        else:
            merged[name] += count
    return [(name, merged[name]) for name in order]


def _single_function_name(expression: ast.Expression) -> Optional[str]:
    """The function name when the expression is a single function call."""
    if isinstance(expression, ast.FunctionExpr):
        return expression.name
    return None


def _buffer_for(graph: TaskGraph, name: str) -> BufferSpec:
    if name not in graph.buffers:
        # Names not declared as variables or parameters should have been
        # rejected by the semantic analysis; create a variable buffer so that
        # extraction of not-yet-validated programs still works.
        graph.add_buffer(BufferSpec(name=name, kind="variable"))
    return graph.buffers[name]


def _finalise_streams(graph: TaskGraph, params) -> None:
    """Fill in the per-loop access counts and initial values of stream endpoints."""
    for name, endpoint in graph.streams.items():
        buffer = graph.buffers[name]
        accesses = buffer.producers if endpoint.is_output else buffer.consumers
        ordered_tasks = sorted(
            (graph.tasks[task_name] for task_name, _ in accesses),
            key=lambda t: t.order,
        )
        endpoint.accessing_tasks = [t.name for t in ordered_tasks]

        # Values transferred per loop iteration: several statements accessing
        # the same stream in one iteration still transfer only one access
        # worth of values -- only the last written value becomes visible and
        # repeated reads observe the same values (Sec. IV-A).
        per_loop: Dict[str, int] = {}
        last_order: Dict[str, int] = {}
        initial = 0
        for task_name, count in accesses:
            task = graph.tasks[task_name]
            if task.loop is None:
                initial += count
            elif endpoint.is_output:
                if task.order >= last_order.get(task.loop, -1):
                    last_order[task.loop] = task.order
                    per_loop[task.loop] = count
            else:
                per_loop[task.loop] = max(per_loop.get(task.loop, 0), count)
        endpoint.per_loop_counts = per_loop
        endpoint.initial_values = initial
        if endpoint.is_output:
            buffer.initial_tokens = initial
