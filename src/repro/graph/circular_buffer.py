"""Circular buffers with multiple overlapping windows.

The OIL compiler communicates all data through circular buffers (CBs), a
generalisation of FIFO buffers in which *multiple* producers and consumers are
allowed (Bijlsma et al., ref. [26] of the paper).  The key ideas reproduced
here:

* the buffer is a fixed-capacity circular array of locations,
* every producer and every consumer owns a *window* that slides over the
  buffer; windows of different producers (or different consumers) may overlap
  the same locations -- this is how two mutually exclusively guarded
  assignments to the same variable (Fig. 4) can both be producers of one
  buffer: they write the *same* location in a given iteration and exactly one
  of them actually stores a value,
* a producer *acquires* space (blocking while the buffer is full), optionally
  writes values, and *releases* the locations to the consumers; a consumer
  acquires full locations (blocking while empty), reads them, and releases the
  space back to the producers,
* releasing without writing is allowed (a guarded producer whose guard is
  false); the location then retains its previous value, matching the
  "functions remain guarded but tasks execute unconditionally" semantics.

The implementation below is sequential (it is driven by the discrete-event
simulator in :mod:`repro.runtime`, not by threads): ``can_acquire`` /
``acquire`` / ``release`` never block, they simply report whether the
operation is possible so the scheduler can decide whether a task may fire.

Eligibility checks (``can_produce`` / ``can_consume``) greatly outnumber
buffer mutations during a simulation, so the three window aggregates they
depend on -- the released floor of the active producers, the released floor
of the active consumers and the acquired ceiling of all producers -- are
cached and only invalidated when a window actually moves or changes
activation.  The buffer also keeps a reverse index of dependents: the
execution engine subscribes per-buffer callbacks via :meth:`watch_tokens` /
:meth:`watch_space` and is notified exactly when one of the two
dispatch-relevant floors changed, which is what makes event-driven ready-set
dispatch possible without re-polling every task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.util.digests import value_digest
from repro.util.validation import check_positive, require


@dataclass
class WindowState:
    """Book-keeping for one producer or consumer window."""

    name: str
    #: index (in tokens since start) up to which the window has been released
    released: int = 0
    #: index up to which the window has been acquired
    acquired: int = 0
    #: inactive windows (tasks of a currently inactive mode/loop) are ignored
    #: by the availability computations; see :meth:`CircularBuffer.set_producer_active`
    active: bool = True

    @property
    def held(self) -> int:
        return self.acquired - self.released


class CircularBuffer:
    """A bounded circular buffer with multiple producer and consumer windows.

    Token indices are global (monotonically increasing); location ``i`` of the
    underlying array stores token ``i mod capacity``.  A token is *available*
    to consumers once **every** producer has released past it (for overlapped
    producers exactly one of them has actually written the value, the others
    released without writing).  Space for token ``i`` is available to
    producers once every consumer has released past ``i - capacity``.
    """

    def __init__(self, name: str, capacity: int, *, initial_values: Sequence[Any] = ()) -> None:
        check_positive(capacity, "capacity")
        require(
            len(initial_values) <= capacity,
            f"buffer {name!r}: {len(initial_values)} initial values exceed capacity {capacity}",
        )
        self.name = name
        self.capacity = capacity
        self._storage: List[Any] = [None] * capacity
        self._producers: Dict[str, WindowState] = {}
        self._consumers: Dict[str, WindowState] = {}
        self._initial = len(initial_values)
        for index, value in enumerate(initial_values):
            self._storage[index % capacity] = value
        # Cached window aggregates (None = dirty, recomputed lazily).
        self._producer_floor_cache: Optional[int] = None
        self._consumer_floor_cache: Optional[int] = None
        self._producer_ceiling_cache: Optional[int] = None
        #: monotone counter bumped whenever a window moves, changes
        #: activation or the storage is written; the steady-state detector
        #: keys its per-buffer layout/value caches on it, so an unchanged
        #: buffer costs O(1) per periodicity sample
        self.mutation_version = 0
        #: per-slot value digests, maintained on write once
        #: :meth:`enable_value_digests` armed them (None = disabled, the
        #: naive hot path pays only the None check)
        self._slot_digests: Optional[List[int]] = None
        # Reverse index of dependents: callbacks fired when the produced floor
        # (token availability) or the consumed floor (space availability)
        # actually moved.
        self._token_watchers: List[Callable[[], None]] = []
        self._space_watchers: List[Callable[[], None]] = []

    # ------------------------------------------------------------------ setup
    def register_producer(self, name: str) -> None:
        require(name not in self._producers, f"duplicate producer window {name!r}")
        old_floor = self._producer_floor()
        self._producers[name] = WindowState(name, released=self._initial, acquired=self._initial)
        self._producers_moved(old_floor)

    def register_consumer(self, name: str) -> None:
        require(name not in self._consumers, f"duplicate consumer window {name!r}")
        old_floor = self._consumer_floor()
        self._consumers[name] = WindowState(name)
        self._consumers_moved(old_floor)

    # -------------------------------------------------------------- watchers
    def watch_tokens(self, callback: Callable[[], None]) -> None:
        """Subscribe to changes of the produced floor: *callback* runs
        whenever the number of tokens visible to consumers may have changed
        (a producer released, was (de)activated or repositioned)."""
        self._token_watchers.append(callback)

    def watch_space(self, callback: Callable[[], None]) -> None:
        """Subscribe to changes of the consumed floor: *callback* runs
        whenever the space visible to producers may have changed (a consumer
        released, was (de)activated or repositioned)."""
        self._space_watchers.append(callback)

    # ------------------------------------------------------ window aggregates
    def _active_producers(self) -> List[WindowState]:
        active = [w for w in self._producers.values() if w.active]
        return active if active else list(self._producers.values())

    def _active_consumers(self) -> List[WindowState]:
        active = [w for w in self._consumers.values() if w.active]
        return active if active else list(self._consumers.values())

    def _producer_floor(self) -> int:
        """Released position every (active) producer has passed; tokens up to
        this index are available to consumers."""
        if self._producer_floor_cache is None:
            if not self._producers:
                self._producer_floor_cache = self._initial
            else:
                self._producer_floor_cache = min(w.released for w in self._active_producers())
        return self._producer_floor_cache

    def _consumer_floor(self) -> Optional[int]:
        """Released position every (active) consumer has passed (``None`` when
        no consumer is registered); locations below it are free space."""
        if not self._consumers:
            return None
        if self._consumer_floor_cache is None:
            self._consumer_floor_cache = min(w.released for w in self._active_consumers())
        return self._consumer_floor_cache

    def _producer_ceiling(self) -> int:
        """Highest acquired position of any producer (active or not)."""
        if self._producer_ceiling_cache is None:
            self._producer_ceiling_cache = max(
                (w.acquired for w in self._producers.values()), default=self._initial
            )
        return self._producer_ceiling_cache

    def _producers_moved(self, old_floor: int) -> None:
        """Invalidate the producer-side caches after a producer window moved
        or changed activation; *old_floor* is the pre-mutation floor, so token
        watchers fire exactly when the floor actually changed."""
        self.mutation_version += 1
        self._producer_floor_cache = None
        self._producer_ceiling_cache = None
        if self._token_watchers and self._producer_floor() != old_floor:
            for callback in self._token_watchers:
                callback()

    def _consumers_moved(self, old_floor: Optional[int]) -> None:
        """Invalidate the consumer-side cache after a consumer window moved or
        changed activation; notify space watchers when the floor changed."""
        self.mutation_version += 1
        self._consumer_floor_cache = None
        if self._space_watchers and self._consumer_floor() != old_floor:
            for callback in self._space_watchers:
                callback()

    def set_producer_active(self, name: str, active: bool) -> None:
        """(De)activate a producer window.

        Inactive windows belong to tasks of a currently inactive mode (a
        while-loop that is not executing); they are excluded from the
        availability computations so an idle mode never blocks the active one.
        """
        window = self._producers[name]
        if window.active != active:
            old_floor = self._producer_floor()
            window.active = active
            self._producers_moved(old_floor)

    def set_consumer_active(self, name: str, active: bool) -> None:
        """(De)activate a consumer window (see :meth:`set_producer_active`)."""
        window = self._consumers[name]
        if window.active != active:
            old_floor = self._consumer_floor()
            window.active = active
            self._consumers_moved(old_floor)

    def retire_producer(self, name: str, *, scope: Optional[str] = None) -> None:
        """Retire the window of a completed one-shot (initialisation) producer.

        An ``init`` statement writes a finite prefix of a stream that a loop
        task continues (Fig. 2: ``init(out c:4)`` before ``g(out c:2, ...)``).
        Two things must happen when the one-shot producer completes, neither
        of which the plain window rules provide:

        * its window must stop participating in the produced-floor
          computation -- a window that never moves again would pin the floor
          at the end of the prefix forever, and
        * every idle co-producer window still positioned *before* the end of
          the prefix is released-without-writing up to it: the loop task's
          first production continues after the initial values instead of
          overwriting them, and -- crucially for cyclic programs -- the
          prefix becomes visible to consumers *before* the loop task produces
          anything (the loop task may well need those very values to fire).

        The init-before-loop hand-over is a *sequential-module* semantics, so
        *scope* (a window-name prefix, e.g. ``"C/B:"``) restricts which
        co-windows are advanced: only tasks of the same module instance
        continue the retired window's stream.  Windows outside the scope --
        unrelated producers of a shared buffer -- keep their own positions.
        """
        window = self._producers[name]
        old_floor = self._producer_floor()
        window.active = False
        target = window.released
        for other in self._producers.values():
            if other is window or other.held or other.released >= target:
                continue
            if scope is not None and not other.name.startswith(scope):
                continue
            other.released = target
            other.acquired = target
        self._producers_moved(old_floor)

    def retire_consumer(self, name: str, *, scope: Optional[str] = None) -> None:
        """Retire the window of a completed one-shot consumer: the window is
        excluded from the consumed-floor (space) computation and idle
        co-consumer windows *within the scope* skip the prefix it read (the
        loop continues the stream where the initialisation left off).
        Out-of-scope consumers -- sink drivers, other module instances --
        observe every token and are never advanced; see
        :meth:`retire_producer`."""
        window = self._consumers[name]
        old_floor = self._consumer_floor()
        window.active = False
        target = window.released
        for other in self._consumers.values():
            if other is window or other.held or other.released >= target:
                continue
            if scope is not None and not other.name.startswith(scope):
                continue
            other.released = target
            other.acquired = target
        self._consumers_moved(old_floor)

    def producer_position(self, name: str) -> int:
        return self._producers[name].released

    def consumer_position(self, name: str) -> int:
        return self._consumers[name].released

    def advance_producer_to(self, name: str, position: int) -> None:
        """Move an idle producer window forward to *position* (mode switch:
        the newly activated mode continues from the frontier the previous mode
        left behind, mirroring the combination task of Sec. V-B.3)."""
        window = self._producers[name]
        require(window.held == 0, f"cannot reposition producer {name!r} mid-firing")
        if position > window.released:
            old_floor = self._producer_floor()
            window.released = position
            window.acquired = position
            self._producers_moved(old_floor)

    def advance_consumer_to(self, name: str, position: int) -> None:
        """Move an idle consumer window forward to *position* (see
        :meth:`advance_producer_to`)."""
        window = self._consumers[name]
        require(window.held == 0, f"cannot reposition consumer {name!r} mid-firing")
        if position > window.released:
            old_floor = self._consumer_floor()
            window.released = position
            window.acquired = position
            self._consumers_moved(old_floor)

    # ------------------------------------------------------------- occupancy
    @property
    def tokens_available(self) -> int:
        """Number of tokens every (active) producer has released and no
        (active) consumer has consumed yet."""
        consumer_floor = self._consumer_floor()
        return self._producer_floor() - (consumer_floor if consumer_floor is not None else 0)

    @property
    def space_available(self) -> int:
        """Free locations from the point of view of the slowest producer."""
        consumer_floor = self._consumer_floor()
        occupied = self._producer_ceiling() - (consumer_floor if consumer_floor is not None else 0)
        return self.capacity - occupied

    def occupancy(self) -> int:
        """Tokens currently stored (acquired-but-unconsumed locations included)."""
        consumer_floor = self._consumer_floor()
        return self._producer_ceiling() - (consumer_floor if consumer_floor is not None else 0)

    # ------------------------------------------------------------- producers
    def can_produce(self, producer: str, count: int) -> bool:
        """True when *producer* can acquire *count* locations."""
        window = self._producers[producer]
        consumer_floor = self._consumer_floor()
        freed = consumer_floor if consumer_floor is not None else 0
        return window.acquired + count - freed <= self.capacity

    def produce(self, producer: str, values: Optional[Sequence[Any]], count: int) -> None:
        """Acquire *count* locations, write *values* (or keep the previous
        contents when ``values`` is ``None``) and release them.

        ``values`` must have exactly *count* elements when given.
        """
        require(self.can_produce(producer, count), f"buffer {self.name!r}: produce would overflow")
        window = self._producers[producer]
        if values is not None:
            require(
                len(values) == count,
                f"buffer {self.name!r}: produced {len(values)} values, expected {count}",
            )
            digests = self._slot_digests
            for offset in range(count):
                slot = (window.acquired + offset) % self.capacity
                self._storage[slot] = values[offset]
                if digests is not None:
                    digests[slot] = value_digest(values[offset])
        old_floor = self._producer_floor()
        window.acquired += count
        window.released += count
        self._producers_moved(old_floor)

    def produce_window(self, window: WindowState, values: Optional[Sequence[Any]], count: int) -> None:
        """Unchecked :meth:`produce` on a pre-resolved window.

        The compiled dispatch kernel resolves windows once at wire time and
        checks eligibility itself, so the per-firing dict lookup and the
        redundant ``can_produce`` re-check are dropped here.  Skipping the
        check is safe for task windows: ``can_produce`` depends only on this
        window's ``acquired`` (unchanged between the eligibility check at
        firing start and the produce at completion -- producing acquires and
        releases atomically) and on the consumer floor, which only grows.
        """
        if values is not None:
            storage, capacity, base = self._storage, self.capacity, window.acquired
            digests = self._slot_digests
            if digests is None:
                for offset in range(count):
                    storage[(base + offset) % capacity] = values[offset]
            else:
                for offset in range(count):
                    slot = (base + offset) % capacity
                    storage[slot] = values[offset]
                    digests[slot] = value_digest(values[offset])
        old_floor = self._producer_floor()
        window.acquired += count
        window.released += count
        self._producers_moved(old_floor)

    # ------------------------------------------------------------- consumers
    def can_consume(self, consumer: str, count: int) -> bool:
        """True when *consumer* can acquire *count* full locations."""
        window = self._consumers[consumer]
        return window.acquired + count <= self._producer_floor()

    def consume(self, consumer: str, count: int) -> List[Any]:
        """Acquire, read and release *count* tokens; returns the values."""
        require(self.can_consume(consumer, count), f"buffer {self.name!r}: consume would underflow")
        window = self._consumers[consumer]
        values = [
            self._storage[(window.acquired + offset) % self.capacity] for offset in range(count)
        ]
        old_floor = self._consumer_floor()
        window.acquired += count
        window.released += count
        self._consumers_moved(old_floor)
        return values

    def consume_window(self, window: WindowState, count: int) -> List[Any]:
        """Unchecked :meth:`consume` on a pre-resolved window (compiled
        kernel fast path; the kernel verified ``can_consume`` as part of the
        eligibility check immediately before, with no events in between)."""
        storage, capacity, base = self._storage, self.capacity, window.acquired
        values = [storage[(base + offset) % capacity] for offset in range(count)]
        old_floor = self._consumer_floor()
        window.acquired += count
        window.released += count
        self._consumers_moved(old_floor)
        return values

    # ------------------------------------------------------- value digests
    def enable_value_digests(self) -> None:
        """Arm incremental per-slot value digests.

        Every subsequent write keeps ``_slot_digests[i] ==
        value_digest(_storage[i])``, so the value-exact steady-state
        detector reads pre-computed integers instead of re-digesting every
        stored value per anchor sample.  The digests are (re)initialised
        from the current storage, which also covers the initial values
        written before the detector existed.  Idempotent.

        The maintained invariant assumes stored values are not mutated in
        place after the write -- the same immutability the side-effect-free
        function contract already demands.
        """
        self._slot_digests = [value_digest(value) for value in self._storage]

    def rotate_storage(self, rotation: int) -> None:
        """Rotate the backing array (and slot digests) forward by *rotation*
        slots.

        This is the steady-state jump's realignment primitive: after a jump
        of ``move`` tokens, token index ``i`` maps to slot ``(i + move) %
        capacity``, so rotating the ring forward by ``move % capacity``
        re-homes every live value.  Window bookkeeping, caches and
        ``mutation_version`` are deliberately untouched -- the caller
        guarantees the rotation-anchored key is invariant under this move.
        """
        rotation %= self.capacity
        if rotation == 0:
            return
        storage = self._storage
        storage[:] = storage[-rotation:] + storage[:-rotation]
        digests = self._slot_digests
        if digests is not None:
            digests[:] = digests[-rotation:] + digests[:-rotation]

    def window_of_producer(self, name: str) -> WindowState:
        """The producer window object itself (bound once by the kernel)."""
        return self._producers[name]

    def window_of_consumer(self, name: str) -> WindowState:
        """The consumer window object itself (bound once by the kernel)."""
        return self._consumers[name]

    def peek(self, consumer: str, count: int) -> List[Any]:
        """Read *count* tokens without releasing them (used by sinks that
        re-read the last value, e.g. an audio mute repeating a sample)."""
        require(self.can_consume(consumer, count), f"buffer {self.name!r}: peek would underflow")
        window = self._consumers[consumer]
        return [
            self._storage[(window.acquired + offset) % self.capacity] for offset in range(count)
        ]

    # ------------------------------------------------------------- reporting
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CircularBuffer {self.name!r} capacity={self.capacity} "
            f"occupancy={self.occupancy()}>"
        )
