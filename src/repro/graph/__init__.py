"""Task-graph extraction from sequential OIL modules.

* :mod:`repro.graph.taskgraph` -- tasks, buffers, loops, stream endpoints,
* :mod:`repro.graph.extraction` -- the parallelisation front of ref. [5]
  (one task per statement, guarded tasks, circular buffers per variable),
* :mod:`repro.graph.circular_buffer` -- circular buffers with multiple
  overlapping windows (ref. [26]) used by the runtime,
* :mod:`repro.graph.schedule` -- SDF views and static-order schedules.
"""

from repro.graph.taskgraph import Access, BufferSpec, LoopInfo, StreamEndpoint, Task, TaskGraph
from repro.graph.extraction import extract_task_graph
from repro.graph.circular_buffer import CircularBuffer
from repro.graph.schedule import (
    schedule_length,
    static_order_schedule,
    task_graph_to_sdf,
)

__all__ = [
    "Access",
    "BufferSpec",
    "LoopInfo",
    "StreamEndpoint",
    "Task",
    "TaskGraph",
    "extract_task_graph",
    "CircularBuffer",
    "schedule_length",
    "static_order_schedule",
    "task_graph_to_sdf",
]
