"""The rule runner and its report: fault-isolated, structured, sortable.

The never-crash invariant: one rule raising must not kill the pass.  The
runner wraps every ``rule.check`` in a handler that converts the exception
into a warning-severity violation under the reserved ``internal-error`` rule
id (carrying the failing rule's id and the exception in ``extra``) and
continues with the remaining rules.  A pre-flight gate that dies on its own
bug is worse than no gate; a pass that silently swallows a rule crash is
worse still -- hence recorded, visible, non-fatal (``--strict`` promotes it
to a failure like any other warning).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.rules.base import (
    INTERNAL_ERROR_RULE_ID,
    Rule,
    Violation,
    severity_rank,
)
from repro.rules.model import CheckModel
from repro.rules.registry import rules_for


@dataclass
class CheckReport:
    """Outcome of one pre-flight pass over one program."""

    target: str
    violations: List[Violation] = field(default_factory=list)
    rules_checked: int = 0

    # -------------------------------------------------------------- queries
    def by_severity(self, severity: str) -> List[Violation]:
        return [v for v in self.violations if v.severity == severity]

    @property
    def errors(self) -> List[Violation]:
        return self.by_severity("error")

    @property
    def warnings(self) -> List[Violation]:
        return self.by_severity("warning")

    @property
    def ok(self) -> bool:
        """True when no error-severity violation was reported."""
        return not self.errors

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for violation in self.violations:
            out[violation.severity] = out.get(violation.severity, 0) + 1
        return out

    # ------------------------------------------------------------ rendering
    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "ok": self.ok,
            "rules_checked": self.rules_checked,
            "counts": self.counts(),
            "violations": [v.to_dict() for v in self.violations],
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-readable multi-line report."""
        if not self.violations:
            return f"{self.target}: ok ({self.rules_checked} rules, no violations)"
        lines = [f"{self.target}:"]
        lines += [f"  {violation.render()}" for violation in self.violations]
        summary = ", ".join(f"{n} {sev}(s)" for sev, n in sorted(self.counts().items()))
        lines.append(f"  -> {summary} ({self.rules_checked} rules checked)")
        return "\n".join(lines)


def _sort_key(violation: Violation):
    line = violation.span.line if violation.span is not None else 1 << 30
    return (severity_rank(violation.severity), violation.rule_id, line, violation.message)


def check_model(
    model: CheckModel,
    *,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> CheckReport:
    """Run the enabled rules over *model* and return the sorted report.

    ``rules`` bypasses the registry entirely (tests, embedding); otherwise
    the rule set is ``rules_for(select, ignore)``.  A rule that raises is
    recorded as an ``internal-error`` violation and the pass continues.
    """
    enabled = list(rules) if rules is not None else rules_for(select, ignore)
    violations: List[Violation] = []
    for rule in enabled:
        try:
            violations.extend(rule.check(model) or [])
        except Exception as exc:
            violations.append(
                Violation(
                    rule_id=INTERNAL_ERROR_RULE_ID,
                    category=rule.category or "internal",
                    severity="warning",
                    message=f"rule {rule.rule_id!r} crashed: {exc!r} (remaining rules ran)",
                    extra={"failed_rule": rule.rule_id, "exception": repr(exc)},
                )
            )
    violations.sort(key=_sort_key)
    return CheckReport(
        target=model.program.name,
        violations=violations,
        rules_checked=len(enabled),
    )
