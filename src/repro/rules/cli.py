"""``python -m repro check`` -- the pre-flight gate's command-line surface.

Usage::

    python -m repro check TARGET [TARGET ...] [options]
    python -m repro check --list-rules

A ``TARGET`` is either the name of a packaged application (``quickstart``,
``pal_decoder``, ``rate_converter``, ``modal_mute``, ``modal_two_mode`` or
an alias) or a path to an ``.oil`` source file.  Options:

``--json``            machine output: one JSON object with per-target reports
``--select TOKEN``    only run rules matching TOKEN (category, rule id, or
                      dotted prefix); repeatable
``--ignore TOKEN``    skip rules matching TOKEN; repeatable
``--strict``          warnings also fail the check (exit 1)
``--processors N``    check against a homogeneous N-processor platform
``--top NAME``        top-level module for ``.oil`` file targets
``--list-rules``      print the registered rules and exit

Exit codes: 0 -- no failing violations on any target; 1 -- at least one
error (or warning under ``--strict``); 2 -- usage problems (unknown target,
unreadable file, bad filter token).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.platform.model import Platform
from repro.rules.model import CheckModel
from repro.rules.registry import all_rules, rules_for
from repro.rules.runner import CheckReport, check_model


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="pre-flight rule checks over OIL programs (apps or .oil files)",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        metavar="TARGET",
        help="packaged app name or path to an .oil source file",
    )
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="TOKEN",
        help="only run rules matching TOKEN (category, id, or dotted prefix); repeatable",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="TOKEN",
        help="skip rules matching TOKEN; repeatable",
    )
    parser.add_argument(
        "--strict", action="store_true", help="warnings also fail the check"
    )
    parser.add_argument(
        "--processors",
        type=int,
        metavar="N",
        help="check against a homogeneous N-processor platform",
    )
    parser.add_argument(
        "--top", metavar="NAME", help="top-level module for .oil file targets"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the registered rules and exit"
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id:32s} {rule.severity:8s} {rule.description}")
    return "\n".join(lines)


def load_target(
    target: str, *, platform: Optional[Platform], top: Optional[str]
) -> CheckModel:
    """A :class:`CheckModel` for one CLI target (app name or ``.oil`` path)."""
    from repro.api.program import Program

    if target.endswith(".oil") or Path(target).exists():
        path = Path(target)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise SystemExit(f"cannot read {target}: {exc}")
        program = Program.from_source(source, name=path.stem, top=top)
    else:
        from repro.api.apps import app_spec

        try:
            spec = app_spec(target)
        except KeyError as exc:
            raise SystemExit(f"unknown target {target!r}: {exc}")
        program = spec.build()
    return CheckModel(program, platform=platform)


def _failing(report: CheckReport, strict: bool) -> bool:
    return bool(report.errors) or (strict and bool(report.warnings))


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.targets:
        parser.print_usage(sys.stderr)
        print("error: no targets (pass an app name or an .oil file)", file=sys.stderr)
        return 2

    # Validate filters once, up front -- a typo should be a usage error for
    # every target, not a per-target crash.
    try:
        rules = rules_for(args.select or None, args.ignore or None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    platform = None
    if args.processors is not None:
        if args.processors <= 0:
            print("error: --processors must be positive", file=sys.stderr)
            return 2
        platform = Platform.homogeneous(args.processors)

    reports: List[CheckReport] = []
    try:
        for target in args.targets:
            model = load_target(target, platform=platform, top=args.top)
            reports.append(check_model(model, rules=rules))
    except SystemExit as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    failed = any(_failing(report, args.strict) for report in reports)
    if args.json:
        payload = {
            "ok": not failed,
            "strict": args.strict,
            "reports": [report.to_dict() for report in reports],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.render())
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
