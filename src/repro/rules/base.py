"""Core vocabulary of the pre-flight rule framework.

A *rule* is a small class that inspects one :class:`~repro.rules.model.CheckModel`
(the parsed OIL program, its CTA analysis and -- optionally -- a target
platform) and returns a list of :class:`Violation` objects.  Rules never
execute a simulation: production traffic needs cheap structured rejection
*before* the expensive run, so every fact a rule reads is one the
:class:`~repro.api.program.Analysis` layer already computes (or a pure
function of the AST / platform data).

Severity semantics
------------------
``error``
    The program cannot run correctly as configured, or the analysis the
    paper's guarantees rest on failed (inconsistent rates, unbounded
    buffers, an over-utilised platform).  ``python -m repro check`` exits
    nonzero when any error-severity violation is reported.
``warning``
    The program runs, but degraded or at risk: a fast-forward fallback
    will trigger, a function will raise when first fired, a platform is
    close to capacity.  Warnings do not affect the exit code unless
    ``--strict`` is given.
``info``
    Advisory observations (default stimuli, zero response times).  Never
    affects the exit code.

Every violation carries the ``rule_id`` that produced it and, when the
underlying fact can be tied to a point in the OIL text, a source span
(:class:`~repro.lang.errors.SourceLocation`).  Violations serialize to
JSON-friendly dicts (:meth:`Violation.to_dict`) and render as one-line
human diagnostics (:meth:`Violation.render`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, TYPE_CHECKING

from repro.lang.errors import SourceLocation

if TYPE_CHECKING:  # annotation only; the model imports the api facade
    from repro.rules.model import CheckModel

#: Valid severities, most severe first.
SEVERITIES = ("error", "warning", "info")

#: Reserved rule id under which the runner records a rule that raised
#: (see :mod:`repro.rules.runner`); never register a rule with this id.
INTERNAL_ERROR_RULE_ID = "internal-error"


def severity_rank(severity: str) -> int:
    """Sort key: most severe first (unknown severities sort last)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        return len(SEVERITIES)


@dataclass(frozen=True)
class Violation:
    """One structured finding of a pre-flight rule.

    ``extra`` holds rule-specific, JSON-safe context (buffer names,
    utilisation figures, offending mapping keys, ...) so machine consumers
    can branch without parsing ``message``.
    """

    rule_id: str
    category: str
    severity: str
    message: str
    span: Optional[SourceLocation] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"violation severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """The JSON shape of the violation (stable keys, plain values)."""
        return {
            "rule_id": self.rule_id,
            "category": self.category,
            "severity": self.severity,
            "message": self.message,
            "span": None if self.span is None else self.span.to_dict(),
            "extra": dict(self.extra),
        }

    def render(self) -> str:
        """One human-readable diagnostic line with the source span."""
        where = f" at {self.span}" if self.span is not None else ""
        return f"{self.severity}[{self.rule_id}]{where}: {self.message}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


class Rule:
    """Base class of all pre-flight rules.

    Subclasses declare the class attributes and implement :meth:`check`::

        @register_rule
        class NoUnboundedBuffers(Rule):
            rule_id = "buffers.unbounded"
            category = "buffers"
            severity = "error"
            description = "buffer sizing must converge to finite capacities"

            def check(self, model):
                ...
                return [self.violation("buffer b grows without bound")]

    ``severity`` is the *default* severity of the rule's violations;
    individual violations may override it (pass ``severity=`` to
    :meth:`violation`), e.g. a capacity rule that errors above 100%% load
    but only warns above 90%%.
    """

    rule_id: ClassVar[str] = ""
    category: ClassVar[str] = ""
    severity: ClassVar[str] = "error"
    description: ClassVar[str] = ""

    def check(self, model: "CheckModel") -> List[Violation]:
        raise NotImplementedError

    def violation(
        self,
        message: str,
        *,
        span: Optional[SourceLocation] = None,
        severity: Optional[str] = None,
        **extra: Any,
    ) -> Violation:
        """A :class:`Violation` pre-filled with this rule's identity."""
        return Violation(
            rule_id=self.rule_id,
            category=self.category,
            severity=severity if severity is not None else self.severity,
            message=message,
            span=span,
            extra=extra,
        )
