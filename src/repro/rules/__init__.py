"""Pre-flight rule framework: structured checks before expensive simulation.

The analyze-then-simulate workflow of the paper meets production traffic
here: ``repro.rules`` is a plugin registry of cheap structured checks over
the parsed OIL program, its CTA analysis and (optionally) a target
platform, so broken or risky programs are rejected with machine-readable
violations *before* a simulation is paid for.

The three-line usage, mirroring the api facade::

    from repro.api import Program
    report = Program.from_app("quickstart").check()
    assert report.ok

or, from the command line, ``python -m repro check quickstart --json``.

Surface:

* :class:`Rule` / :class:`Violation` / :func:`register_rule` -- write and
  register new rules (see ``docs/rules.md``),
* :class:`CheckModel` -- the lazy fact surface rules read (reuses the cached
  :class:`~repro.api.program.Analysis`; never re-parses),
* :func:`check_model` / :class:`CheckReport` -- the fault-isolated runner,
* :func:`all_rules` / :func:`rules_for` -- registry access with
  include/exclude filtering by category or rule id.

The built-in rule set lives in :mod:`repro.rules.builtin`; every rule id is
tabulated in ``docs/registry.md``.
"""

from repro.rules.base import INTERNAL_ERROR_RULE_ID, Rule, SEVERITIES, Violation
from repro.rules.model import CheckModel, TaskLoad
from repro.rules.registry import (
    all_rule_classes,
    all_rules,
    categories,
    load_builtin_rules,
    register_rule,
    rules_for,
    unregister_rule,
)
from repro.rules.runner import CheckReport, check_model

__all__ = [
    "INTERNAL_ERROR_RULE_ID",
    "SEVERITIES",
    "CheckModel",
    "CheckReport",
    "Rule",
    "TaskLoad",
    "Violation",
    "all_rule_classes",
    "all_rules",
    "categories",
    "check_model",
    "load_builtin_rules",
    "register_rule",
    "rules_for",
    "unregister_rule",
]
