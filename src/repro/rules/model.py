"""The fact surface pre-flight rules check against.

A :class:`CheckModel` wraps one :class:`~repro.api.program.Program` (plus an
optional target :class:`~repro.platform.model.Platform`) and exposes every
fact the built-in rules need, computed lazily and exactly once:

* the cached :class:`~repro.api.program.Analysis` (consistency, buffer
  sizing, latency checks) -- rules **reuse** these results, they never
  re-parse or re-analyse,
* compile failures captured as data (``compile_error``) instead of
  exceptions, so one broken program yields one structured violation rather
  than a crashed pass,
* the buffer-sizing failure, if any, captured the same way
  (:class:`~repro.cta.buffer_sizing.BufferSizingError` -> ``sizing_error``),
* the program's configured signals and function registry (built once from
  the program's factories, *without* consuming any user iterator),
* derived task facts: per-task utilisation (``load = actual rate / maximal
  rate`` straight from the consistency result), bare task names for affinity
  validation,
* a span index mapping analysis-level objects (port references, latency
  constraints, functions, source/sink names) back to source locations of the
  OIL text.

Everything here is read-only with respect to the wrapped program; building a
:class:`CheckModel` for an already-analysed program costs nothing beyond the
facts a rule actually asks for.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.cta.buffer_sizing import BufferSizingError, BufferSizingResult
from repro.cta.consistency import ConsistencyResult
from repro.cta.latency import LatencyCheck, LatencyConstraint
from repro.cta.model import PortRef
from repro.lang import ast
from repro.lang.errors import OilError, SourceLocation
from repro.platform.model import Platform
from repro.util.rational import Rat

_UNSET = object()


@dataclass(frozen=True)
class TaskLoad:
    """Utilisation of one task at the analysed rates.

    ``load`` is the fraction of a reference-speed processor the task keeps
    busy: ``actual port rate / maximal port rate``, maximised over the
    task's rate-capped ports.  ``guarded`` marks tasks whose body executes
    conditionally (if/switch guards) -- their load is an upper bound.
    """

    name: str
    path: str
    load: Rat
    guarded: bool


class CheckModel:
    """Lazy fact surface over one program (see module docstring)."""

    def __init__(
        self,
        program,
        *,
        platform: Optional[Platform] = None,
        analysis=None,
    ) -> None:
        self.program = program
        #: the platform rules check capacity/affinity against (explicit
        #: argument, falling back to the program's configured platform)
        self.platform: Optional[Platform] = (
            platform if platform is not None else program.platform
        )
        self._analysis = analysis
        self._compile_error: Any = _UNSET
        self._sizing: Any = _UNSET
        self._sizing_error: Optional[BufferSizingError] = None
        self._signals: Any = _UNSET
        self._registry: Any = _UNSET
        self._port_spans: Optional[Dict[Tuple[str, ...], SourceLocation]] = None
        self._task_loads: Optional[List[TaskLoad]] = None

    # ----------------------------------------------------------- compilation
    @property
    def compile_error(self) -> Optional[Exception]:
        """The frontend/compiler failure, or None when the program compiles.

        Accessing any analysis fact first resolves compilation; rules can
        therefore simply return ``[]`` when ``analysis`` is None and leave
        reporting the failure to the ``lang.compile-error`` rule.
        """
        self.analysis  # resolve
        return None if self._compile_error is _UNSET else self._compile_error

    @property
    def analysis(self):
        """The program's cached :class:`~repro.api.program.Analysis`, or
        None when compilation fails (see :attr:`compile_error`)."""
        if self._analysis is None and self._compile_error is _UNSET:
            try:
                self._analysis = self.program.analyze()
            except (OilError, ValueError) as exc:
                self._compile_error = exc
        return self._analysis

    @property
    def compilation(self):
        analysis = self.analysis
        return None if analysis is None else analysis.compilation

    # -------------------------------------------------------------- analyses
    @property
    def consistency(self) -> Optional[ConsistencyResult]:
        analysis = self.analysis
        return None if analysis is None else analysis.consistency

    @property
    def sizing(self) -> Optional[BufferSizingResult]:
        """The buffer-sizing result, or None when sizing fails (the failure
        is captured in :attr:`sizing_error`) or the program does not compile."""
        if self._sizing is _UNSET:
            analysis = self.analysis
            if analysis is None:
                self._sizing = None
            else:
                try:
                    self._sizing = analysis.sizing
                except BufferSizingError as exc:
                    self._sizing = None
                    self._sizing_error = exc
        return self._sizing

    @property
    def sizing_error(self) -> Optional[BufferSizingError]:
        self.sizing  # resolve
        return self._sizing_error

    @property
    def latency_checks(self) -> Optional[List[LatencyCheck]]:
        """The verified latency constraints, or None when sizing failed (the
        offsets the checks need do not exist then)."""
        if self.sizing is None:
            return None
        return self.analysis.latency

    # --------------------------------------------------- execution environment
    @property
    def signals(self) -> Dict[str, Any]:
        """One instance of the program's configured source signals.

        Built from the program's stimulus factory exactly once and only
        inspected structurally -- rules must never draw from these (a bare
        iterator would lose values the real run needs).
        """
        if self._signals is _UNSET:
            self._signals = dict(self.program.make_signals())
        return self._signals

    @property
    def registry(self):
        """One instance of the program's function registry."""
        if self._registry is _UNSET:
            self._registry = self.program.make_registry()
        return self._registry

    # ------------------------------------------------------------- AST facts
    def _ast_modules(self) -> List[ast.Module]:
        compilation = self.compilation
        if compilation is None:
            return []
        program = compilation.program
        modules = list(program.modules)
        if program.main is not None and all(program.main is not m for m in modules):
            modules.append(program.main)
        return modules

    def parallel_modules(self) -> List[ast.ParallelModule]:
        return [m for m in self._ast_modules() if isinstance(m, ast.ParallelModule)]

    def sequential_modules(self) -> List[ast.SequentialModule]:
        return [m for m in self._ast_modules() if isinstance(m, ast.SequentialModule)]

    def source_decls(self) -> List[ast.SourceDecl]:
        return [decl for module in self.parallel_modules() for decl in module.sources]

    def sink_decls(self) -> List[ast.SinkDecl]:
        return [decl for module in self.parallel_modules() for decl in module.sinks]

    def decl_location(self, name: str) -> Optional[SourceLocation]:
        """Source location of the source/sink declaration called *name*."""
        for decl in self.source_decls() + self.sink_decls():
            if decl.name == name:
                return decl.location
        return None

    @property
    def used_functions(self) -> Dict[str, Optional[SourceLocation]]:
        """Coordinated function names referenced by the sequential modules,
        each with the location of its first reference."""
        uses: Dict[str, Optional[SourceLocation]] = {}
        for module in self.sequential_modules():
            for name, location in _function_uses(module):
                uses.setdefault(name, location)
        return uses

    def task_names(self) -> Set[str]:
        """Bare task names across all extracted task graphs -- the key
        universe of partitioned affinity mappings."""
        compilation = self.compilation
        if compilation is None:
            return set()
        names: Set[str] = set()
        for graph in compilation.task_graphs.values():
            names.update(graph.tasks)
        for box in self.program.black_boxes:
            names.add(box.name)
        return names

    def task_span(self, task_name: str) -> Optional[SourceLocation]:
        """Location of the statement a task was extracted from."""
        compilation = self.compilation
        if compilation is None:
            return None
        for graph in compilation.task_graphs.values():
            task = graph.tasks.get(task_name)
            if task is not None and task.statement is not None:
                return task.statement.location
        return None

    # ------------------------------------------------------------ span index
    def _port_span_index(self) -> Dict[Tuple[str, ...], SourceLocation]:
        """Component-path -> declaration location for source/sink components
        (the ports that pin rates, hence the ports rate conflicts name)."""
        if self._port_spans is None:
            spans: Dict[Tuple[str, ...], SourceLocation] = {}
            compilation = self.compilation
            if compilation is not None:
                for name, ref in list(compilation.source_ports.items()) + list(
                    compilation.sink_ports.items()
                ):
                    location = self.decl_location(name)
                    if location is not None:
                        spans[ref.component] = location
            self._port_spans = spans
        return self._port_spans

    def port_span(self, ref: PortRef) -> Optional[SourceLocation]:
        """Best-effort source span for an analysis-level port reference."""
        return self._port_span_index().get(ref.component)

    def endpoint_name(self, ref: PortRef) -> Optional[str]:
        """The declared source/sink name a port reference belongs to."""
        compilation = self.compilation
        if compilation is None:
            return None
        for name, port in compilation.source_ports.items():
            if port.component == ref.component:
                return name
        for name, port in compilation.sink_ports.items():
            if port.component == ref.component:
                return name
        return None

    def latency_span(self, constraint: LatencyConstraint) -> Optional[SourceLocation]:
        """Location of the ``start ... after/before ...`` declaration that
        produced *constraint*."""
        subject = self.endpoint_name(constraint.subject)
        reference = self.endpoint_name(constraint.reference)
        if subject is None or reference is None:
            return None
        for module in self.parallel_modules():
            for decl in module.latency_constraints:
                if (
                    decl.subject == subject
                    and decl.reference == reference
                    and decl.relation == constraint.kind
                ):
                    return decl.location
        return None

    # ------------------------------------------------------------ task loads
    @property
    def task_loads(self) -> List[TaskLoad]:
        """Per-task utilisation at the analysed rates (empty when the model
        is inconsistent -- there are no meaningful rates then).

        A task component's rate-capped ports were constructed with
        ``max_rate = tokens / firing_duration``, so the ratio of the actual
        port rate to ``max_rate`` is exactly ``firing_rate *
        firing_duration`` -- the busy fraction of a reference-speed
        processor.  Tasks with zero firing duration carry no load.
        """
        if self._task_loads is None:
            loads: List[TaskLoad] = []
            compilation = self.compilation
            consistency = self.consistency
            if compilation is not None and consistency is not None and consistency.consistent:
                for component in compilation.model.walk():
                    if component.kind != "task":
                        continue
                    load: Optional[Rat] = None
                    for port_name, port in component.ports.items():
                        if port.max_rate is None:
                            continue
                        rate = consistency.port_rates.get(
                            PortRef(component.path(), port_name)
                        )
                        if rate is None:
                            continue
                        utilisation = rate / port.max_rate
                        if load is None or utilisation > load:
                            load = utilisation
                    if load is None:
                        continue
                    loads.append(
                        TaskLoad(
                            name=str(component.metadata.get("task", component.name)),
                            path="/".join(component.path()),
                            load=load,
                            guarded=bool(component.metadata.get("guarded")),
                        )
                    )
            self._task_loads = loads
        return self._task_loads


def _expr_functions(
    expression: ast.Expression,
) -> Iterator[Tuple[str, Optional[SourceLocation]]]:
    if isinstance(expression, ast.FunctionExpr):
        yield expression.name, expression.location
        for argument in expression.arguments:
            if isinstance(argument, ast.InArgument):
                yield from _expr_functions(argument.expression)
    elif isinstance(expression, ast.BinaryOp):
        yield from _expr_functions(expression.left)
        yield from _expr_functions(expression.right)
    elif isinstance(expression, ast.UnaryOp):
        yield from _expr_functions(expression.operand)


def _function_uses(
    module: ast.SequentialModule,
) -> Iterator[Tuple[str, Optional[SourceLocation]]]:
    for statement in ast.walk_statements(module.body):
        if isinstance(statement, ast.FunctionCall):
            yield statement.name, statement.location
            for argument in statement.arguments:
                if isinstance(argument, ast.InArgument):
                    yield from _expr_functions(argument.expression)
        elif isinstance(statement, ast.Assignment):
            yield from _expr_functions(statement.expression)
        elif isinstance(statement, ast.IfStatement):
            yield from _expr_functions(statement.condition)
        elif isinstance(statement, ast.SwitchStatement):
            yield from _expr_functions(statement.selector)
        elif isinstance(statement, ast.LoopStatement):
            yield from _expr_functions(statement.condition)
