"""Latency rules: the declared start-time bounds, verified pre-run.

Both rules read the cached latency checks
(:meth:`repro.api.program.Analysis.latency`, which verifies every
``start x n ms after/before y`` declaration against the consistency
offsets).  ``latency.unsatisfied`` errors on violated bounds.
``latency.zero-slack`` is deliberately *info*: the offsets are longest-path
solutions, so constraints that were encoded into the model are routinely
exactly tight -- zero slack is normal for them, but worth surfacing as the
deadline-risk heuristic: any additional delay (a slower processor, a larger
WCET) lands directly on the bound.
"""

from __future__ import annotations

from typing import List, Optional

from repro.rules.base import Rule, Violation
from repro.rules.model import CheckModel
from repro.rules.registry import register_rule
from repro.util.rational import Rat


def _slack(check) -> Optional[Rat]:
    """Distance to the bound (>= 0 for satisfied checks)."""
    diff = check.actual_difference
    if diff is None:
        return None
    if check.constraint.kind == "after":
        return diff - check.constraint.bound
    return check.constraint.bound + diff


@register_rule
class UnsatisfiedLatency(Rule):
    rule_id = "latency.unsatisfied"
    category = "latency"
    severity = "error"
    description = "every declared start-time bound must hold at the analysed offsets"

    def check(self, model: CheckModel) -> List[Violation]:
        checks = model.latency_checks
        if checks is None:
            return []
        return [
            self.violation(
                check.message,
                span=model.latency_span(check.constraint),
                kind=check.constraint.kind,
                bound_seconds=float(check.constraint.bound),
            )
            for check in checks
            if not check.satisfied
        ]


@register_rule
class ZeroSlack(Rule):
    rule_id = "latency.zero-slack"
    category = "latency"
    severity = "info"
    description = (
        "flag satisfied latency constraints with zero slack (any added "
        "delay lands on the bound)"
    )

    def check(self, model: CheckModel) -> List[Violation]:
        checks = model.latency_checks
        if checks is None:
            return []
        out: List[Violation] = []
        for check in checks:
            if not check.satisfied:
                continue
            slack = _slack(check)
            if slack == 0:
                out.append(
                    self.violation(
                        f"latency constraint is exactly tight: {check.message}",
                        span=model.latency_span(check.constraint),
                        kind=check.constraint.kind,
                    )
                )
        return out
