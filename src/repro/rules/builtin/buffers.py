"""Buffer rules: sizing must converge to finite capacities.

:func:`repro.cta.buffer_sizing.size_buffers` raises
:class:`~repro.cta.buffer_sizing.BufferSizingError` when no finite
capacities satisfy the constraints -- a positive-delay cycle without a
buffer connection, or non-convergence.  The :class:`CheckModel` captures
that exception as ``sizing_error``; this rule turns it into a violation.
When the model is already rate-inconsistent the sizing failure is a
consequence, not news -- the ``rates.*`` rules own it and this rule stays
silent.
"""

from __future__ import annotations

from typing import List

from repro.rules.base import Rule, Violation
from repro.rules.model import CheckModel
from repro.rules.registry import register_rule


@register_rule
class UnboundedBuffers(Rule):
    rule_id = "buffers.unbounded"
    category = "buffers"
    severity = "error"
    description = "buffer sizing must prove finite capacities sufficient"

    def check(self, model: CheckModel) -> List[Violation]:
        consistency = model.consistency
        if consistency is None or not consistency.consistent:
            return []
        error = model.sizing_error
        if error is None:
            return []
        return [self.violation(f"buffer sizing failed: {error}")]
