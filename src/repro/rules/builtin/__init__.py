"""The built-in pre-flight rule set.

Importing this package registers every built-in rule (each module's class
definitions run through :func:`repro.rules.registry.register_rule`).  The
modules group rules by the analysis surface their facts come from:

``lang``      frontend: compile failures, semantic warnings
``rates``     rate structure / consistency: inconsistent, infeasible, capped
``buffers``   buffer sizing: provably unbounded buffers
``latency``   latency constraints: unsatisfied bounds, zero slack
``platform``  target platform: unknown affinities, utilisation vs capacity
``runtime``   execution environment: undeclared stimuli/functions,
              unregistered functions (the pre-run view of the
              ``warning_code`` fallbacks of :mod:`repro.util.runwarnings`)

Every rule id, with severity and meaning, is tabulated in
``docs/registry.md`` (a test keeps that table in sync with this package).
"""

from repro.rules.builtin import (  # noqa: F401  (imports register the rules)
    buffers,
    lang,
    latency,
    platform,
    rates,
    runtime,
)
