"""Frontend rules: the program must compile, and cleanly.

These are the only rules that fire when compilation fails -- every other
built-in rule returns ``[]`` on an uncompilable program and leaves the
reporting to ``lang.compile-error``, so a syntax error yields exactly one
violation instead of a cascade.
"""

from __future__ import annotations

from typing import List

from repro.rules.base import Rule, Violation
from repro.rules.model import CheckModel
from repro.rules.registry import register_rule


@register_rule
class CompileError(Rule):
    rule_id = "lang.compile-error"
    category = "lang"
    severity = "error"
    description = "the OIL program must parse and pass semantic validation"

    def check(self, model: CheckModel) -> List[Violation]:
        error = model.compile_error
        if error is None:
            return []
        span = getattr(error, "location", None)
        # OilError.__str__ prefixes the location; the span already carries it
        message = getattr(error, "message", None) or str(error)
        return [self.violation(message, span=span, exception=type(error).__name__)]


@register_rule
class SemanticWarnings(Rule):
    rule_id = "lang.semantic-warning"
    category = "lang"
    severity = "warning"
    description = "surface the semantic analyser's warnings (suspicious reads, shadowing)"

    def check(self, model: CheckModel) -> List[Violation]:
        compilation = model.compilation
        if compilation is None:
            return []
        return [
            self.violation(diagnostic.message, span=diagnostic.location)
            for diagnostic in compilation.analysis.diagnostics.warnings
        ]
