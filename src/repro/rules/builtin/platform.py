"""Platform rules: does the program fit the hardware it is aimed at?

These rules run only when the check targets a concrete platform (the
program's configured :class:`~repro.platform.model.Platform`, or one passed
via ``check(platform=...)`` / ``python -m repro check --processors N``);
with no platform, or the unbounded virtual one, the questions are moot and
the rules return nothing.

The utilisation facts come straight from the consistency result
(:attr:`CheckModel.task_loads`: actual/maximal port rate per task).  A
guarded task's load is an upper bound -- its body executes conditionally --
so capacity overruns attributable only to guarded load degrade from error
to warning.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional

from repro.platform.model import Platform
from repro.rules.base import Rule, Violation
from repro.rules.model import CheckModel
from repro.rules.registry import register_rule


def _concrete_platform(model: CheckModel) -> Optional[Platform]:
    platform = model.platform
    if platform is None or platform.is_unbounded:
        return None
    return platform


@register_rule
class UnknownAffinity(Rule):
    rule_id = "platform.unknown-affinity"
    category = "platform"
    severity = "error"
    description = "affinity mappings must reference tasks that exist in the program"

    def check(self, model: CheckModel) -> List[Violation]:
        platform = _concrete_platform(model)
        if platform is None or not platform.mapping or model.compilation is None:
            return []
        known = model.task_names()
        out: List[Violation] = []
        for key in sorted(platform.mapping):
            # mapping keys are bare task names or producer keys "instance:task"
            bare = key.rsplit(":", 1)[-1]
            if key in known or bare in known:
                continue
            out.append(
                self.violation(
                    f"platform {platform.name!r} maps unknown task {key!r} to "
                    f"processor {platform.mapping[key]!r}; known tasks: {sorted(known)}",
                    mapping_key=key,
                    processor=platform.mapping[key],
                )
            )
        return out


@register_rule
class OverUtilised(Rule):
    rule_id = "platform.overutilised"
    category = "platform"
    severity = "error"
    description = "total task utilisation must not exceed the platform's aggregate speed"

    def check(self, model: CheckModel) -> List[Violation]:
        platform = _concrete_platform(model)
        loads = model.task_loads
        if platform is None or not loads:
            return []
        capacity = platform.total_speed()
        total = sum((entry.load for entry in loads), Fraction(0))
        if total <= capacity:
            return []
        unguarded = sum(
            (entry.load for entry in loads if not entry.guarded), Fraction(0)
        )
        # guarded tasks execute conditionally; an overrun they alone cause
        # may never materialise at run time
        severity = "error" if unguarded > capacity else "warning"
        message = (
            f"total utilisation {float(total):.3g} exceeds the aggregate capacity "
            f"{float(capacity):.3g} of platform {platform.name!r} "
            f"({len(platform)} processor(s))"
        )
        if severity == "warning":
            message += "; the overrun is attributable to conditionally-executed (guarded) tasks"
        return [
            self.violation(
                message,
                severity=severity,
                total_utilisation=float(total),
                unguarded_utilisation=float(unguarded),
                capacity=float(capacity),
            )
        ]


@register_rule
class NearCapacity(Rule):
    rule_id = "platform.near-capacity"
    category = "platform"
    severity = "warning"
    description = "warn when total utilisation exceeds 90% of the platform's capacity"

    def check(self, model: CheckModel) -> List[Violation]:
        platform = _concrete_platform(model)
        loads = model.task_loads
        if platform is None or not loads:
            return []
        capacity = platform.total_speed()
        total = sum((entry.load for entry in loads), Fraction(0))
        # above 100% platform.overutilised reports; this rule owns (90%, 100%]
        if total <= capacity * Fraction(9, 10) or total > capacity:
            return []
        return [
            self.violation(
                f"total utilisation {float(total):.3g} is within 10% of the "
                f"aggregate capacity {float(capacity):.3g} of platform "
                f"{platform.name!r}; transient overload risk",
                total_utilisation=float(total),
                capacity=float(capacity),
            )
        ]


@register_rule
class TaskOverload(Rule):
    rule_id = "platform.task-overload"
    category = "platform"
    severity = "error"
    description = "no single task may need more than the fastest processor provides"

    def check(self, model: CheckModel) -> List[Violation]:
        platform = _concrete_platform(model)
        loads = model.task_loads
        if platform is None or not loads:
            return []
        fastest = max(platform.speeds)
        out: List[Violation] = []
        for entry in loads:
            if entry.load <= fastest:
                continue
            out.append(
                self.violation(
                    f"task {entry.name!r} needs utilisation {float(entry.load):.3g} "
                    f"but the fastest processor of platform {platform.name!r} has "
                    f"speed {float(fastest):.3g}; it cannot keep up even when "
                    f"scheduled alone",
                    severity="error" if not entry.guarded else "warning",
                    span=model.task_span(entry.name),
                    task=entry.name,
                    utilisation=float(entry.load),
                    fastest_speed=float(fastest),
                )
            )
        return out
