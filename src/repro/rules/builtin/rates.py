"""Rate rules: the paper's consistency analysis, surfaced as a gate.

All three rules read the cached :class:`~repro.cta.consistency.ConsistencyResult`
(Sec. V-A): ``rates.inconsistent`` reports the multiplicative/fixed-rate
conflicts of the rate structure with source spans recovered from the
source/sink declarations the conflicting ports belong to;
``rates.infeasible-cycle`` and ``rates.rate-cap`` report the delay-cycle and
maximum-rate violations of the scale search.
"""

from __future__ import annotations

from typing import List

from repro.rules.base import Rule, Violation
from repro.rules.model import CheckModel
from repro.rules.registry import register_rule


def _conflict_span(model: CheckModel, ports):
    for port in ports:
        span = model.port_span(port)
        if span is not None:
            return span
    return None


@register_rule
class InconsistentRates(Rule):
    rule_id = "rates.inconsistent"
    category = "rates"
    severity = "error"
    description = (
        "transfer-rate ratios must be consistent around cycles and all "
        "fixed source/sink rates must agree"
    )

    def check(self, model: CheckModel) -> List[Violation]:
        consistency = model.consistency
        if consistency is None:
            return []
        return [
            self.violation(
                str(conflict),
                span=_conflict_span(model, conflict.ports),
                conflict_kind=conflict.kind,
                ports=[str(port) for port in conflict.ports],
            )
            for conflict in consistency.rate_structure.conflicts
        ]


@register_rule
class InfeasibleCycle(Rule):
    rule_id = "rates.infeasible-cycle"
    category = "rates"
    severity = "error"
    description = (
        "no connection cycle may delay data by a positive amount at the "
        "required rates (data would arrive too late)"
    )

    def check(self, model: CheckModel) -> List[Violation]:
        consistency = model.consistency
        if consistency is None:
            return []
        return [
            self.violation(violation.message)
            for violation in consistency.violations
            if violation.kind == "cycle"
        ]


@register_rule
class RateCapExceeded(Rule):
    rule_id = "rates.rate-cap"
    category = "rates"
    severity = "error"
    description = (
        "the rate a source/sink pins must not exceed the maximum rate of "
        "any component on its path"
    )

    def check(self, model: CheckModel) -> List[Violation]:
        consistency = model.consistency
        if consistency is None:
            return []
        return [
            self.violation(violation.message)
            for violation in consistency.violations
            if violation.kind == "cap"
        ]
