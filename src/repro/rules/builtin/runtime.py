"""Runtime-environment rules: what will degrade or fail once the run starts.

These rules surface, *before* a simulation executes, the conditions the
runtime only reports mid-flight:

* the structured ``warning_code`` fallbacks of value-exact fast-forward
  (``undeclared-source`` / ``undeclared-function`` -- see
  :mod:`repro.util.runwarnings` and ``docs/fast-forward.md``),
* generator-backed stimuli whose ``advance()`` replays draws one by one
  (the runtime's ``generator-advance`` warning: jumps work but cost O(k)
  in the skipped horizon), and
* functions that will raise ``KeyError`` at their first firing because no
  implementation is registered.

They inspect the program's configured signals and registry structurally --
no iterator is drawn from, no function is called -- so a check pass never
perturbs the run that follows it.  All these degradations are warnings or
notes, not errors: the program still runs correctly (naively stepped, or --
for a bare OIL file checked without a registry -- correctly once one is
supplied).
"""

from __future__ import annotations

from typing import List

from repro.rules.base import Rule, Violation
from repro.rules.model import CheckModel
from repro.rules.registry import register_rule
from repro.runtime.sources import Stimulus


@register_rule
class BareIteratorSignal(Rule):
    rule_id = "runtime.undeclared-source"
    category = "runtime"
    severity = "warning"
    description = (
        "bare-iterator source signals cannot be advanced through a "
        "steady-state jump (runs fall back to naive stepping)"
    )

    def check(self, model: CheckModel) -> List[Violation]:
        out: List[Violation] = []
        for decl in model.source_decls():
            signal = model.signals.get(decl.name)
            if signal is None or isinstance(signal, Stimulus):
                continue
            if callable(signal) and not hasattr(signal, "__next__") and not hasattr(signal, "__iter__"):
                continue  # zero-argument factory: rewindable, fully declared
            if hasattr(signal, "__next__"):
                out.append(
                    self.violation(
                        f"source {decl.name!r} is driven by a bare iterator "
                        f"({type(signal).__name__}); it cannot be rewound or advanced "
                        f"through a fast-forward jump -- wrap it in a Stimulus or pass "
                        f"a zero-argument factory",
                        span=decl.location,
                        source=decl.name,
                        warning_code="undeclared-source",
                    )
                )
        return out


@register_rule
class GeneratorSource(Rule):
    rule_id = "runtime.generator-source"
    category = "runtime"
    severity = "info"
    description = (
        "note generator-backed stimuli whose advance() replays draws one by "
        "one, precluding O(1) steady-state jumps"
    )

    def check(self, model: CheckModel) -> List[Violation]:
        out: List[Violation] = []
        for decl in model.source_decls():
            signal = model.signals.get(decl.name)
            if not isinstance(signal, Stimulus):
                continue  # bare iterators / factories belong to undeclared-source
            if not signal.advance_linear:
                continue  # closed-form advance: O(1) jumps
            out.append(
                self.violation(
                    f"source {decl.name!r} is driven by a generator-backed "
                    f"stimulus ({type(signal).__name__}) whose advance() replays "
                    f"draws one by one; steady-state jumps work but cost time "
                    f"linear in the skipped horizon -- declare a closed-form "
                    f"stimulus (advance_linear = False) for O(1) jumps",
                    span=decl.location,
                    source=decl.name,
                    warning_code="generator-advance",
                )
            )
        return out


@register_rule
class DefaultStimulus(Rule):
    rule_id = "runtime.default-stimulus"
    category = "runtime"
    severity = "info"
    description = "note sources with no configured signal (runs use the counting default)"

    def check(self, model: CheckModel) -> List[Violation]:
        return [
            self.violation(
                f"source {decl.name!r} has no configured signal; runs draw from "
                f"the counting default RampStimulus(0, 1)",
                span=decl.location,
                source=decl.name,
            )
            for decl in model.source_decls()
            if model.signals.get(decl.name) is None
        ]


@register_rule
class UndeclaredFunctions(Rule):
    rule_id = "runtime.undeclared-function"
    category = "runtime"
    severity = "warning"
    description = (
        "functions without a value-exact jump declaration force fast-forward "
        "back to naive stepping"
    )

    def check(self, model: CheckModel) -> List[Violation]:
        if model.compilation is None:
            return []
        registry = model.registry
        out: List[Violation] = []
        for name, span in sorted(model.used_functions.items()):
            if name not in registry:
                continue  # runtime.unregistered-function owns that case
            if registry.get(name).jump_exact:
                continue
            out.append(
                self.violation(
                    f"function {name!r} declares no value-exact jump behaviour "
                    f"(stateless / jump_invariant / get_state); "
                    f'fast_forward="auto" will fall back to naive stepping',
                    span=span,
                    function=name,
                    warning_code="undeclared-function",
                )
            )
        return out


@register_rule
class UnregisteredFunctions(Rule):
    rule_id = "runtime.unregistered-function"
    category = "runtime"
    severity = "warning"
    description = "functions the program coordinates should have a registered implementation"

    def check(self, model: CheckModel) -> List[Violation]:
        if model.compilation is None:
            return []
        registry = model.registry
        return [
            self.violation(
                f"function {name!r} is not registered in the program's function "
                f"registry; the first firing that calls it will raise unless a "
                f"registry providing it is passed at run time",
                span=span,
                function=name,
            )
            for name, span in sorted(model.used_functions.items())
            if name not in registry
        ]
