"""The rule registry: decorator registration and include/exclude filtering.

Rules register themselves by decorating the class::

    from repro.rules import Rule, register_rule

    @register_rule
    class MyRule(Rule):
        rule_id = "category.my-rule"
        category = "category"
        severity = "warning"
        ...

Registration validates the declared identity (non-empty unique ``rule_id``,
non-empty ``category``, a known severity) so a malformed rule fails at import
time, not in the middle of a check pass.  The built-in rule set lives in
:mod:`repro.rules.builtin`; importing that package (done lazily by
:func:`load_builtin_rules`) is what populates the registry, so ``import
repro`` stays cheap.

Filter semantics (``--select`` / ``--ignore`` on the CLI, ``select=`` /
``ignore=`` on the API): a token matches a rule when it equals the rule's
``rule_id``, equals its ``category``, or is a dotted prefix of the rule id
(``"rates"`` matches ``rates.inconsistent``).  Tokens that match nothing
raise -- a typo in a filter silently checking everything (or nothing) is
exactly the failure mode a pre-flight gate must not have.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from repro.rules.base import INTERNAL_ERROR_RULE_ID, Rule, SEVERITIES

#: rule_id -> rule class, in registration order (dicts preserve it)
_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *cls* to the registry (validates its identity)."""
    if not (isinstance(cls, type) and issubclass(cls, Rule)):
        raise TypeError(f"@register_rule expects a Rule subclass, got {cls!r}")
    if not cls.rule_id:
        raise ValueError(f"rule class {cls.__name__} declares no rule_id")
    if not cls.category:
        raise ValueError(f"rule {cls.rule_id!r} declares no category")
    if cls.rule_id == INTERNAL_ERROR_RULE_ID:
        raise ValueError(f"rule id {INTERNAL_ERROR_RULE_ID!r} is reserved for the runner")
    if cls.severity not in SEVERITIES:
        raise ValueError(
            f"rule {cls.rule_id!r}: severity must be one of {SEVERITIES}, "
            f"got {cls.severity!r}"
        )
    existing = _RULES.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"duplicate rule id {cls.rule_id!r} "
            f"({existing.__module__}.{existing.__name__} vs {cls.__module__}.{cls.__name__})"
        )
    _RULES[cls.rule_id] = cls
    return cls


def unregister_rule(rule_id: str) -> None:
    """Remove a rule from the registry (tests registering throwaway rules)."""
    _RULES.pop(rule_id, None)


def load_builtin_rules() -> None:
    """Import the built-in rule set (idempotent; registration is a side
    effect of the module imports)."""
    import repro.rules.builtin  # noqa: F401


def all_rule_classes() -> List[Type[Rule]]:
    """Every registered rule class, sorted by rule id (built-ins loaded)."""
    load_builtin_rules()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def all_rules() -> List[Rule]:
    """One fresh instance of every registered rule, sorted by rule id."""
    return [cls() for cls in all_rule_classes()]


def categories() -> List[str]:
    """The distinct categories of the registered rules, sorted."""
    return sorted({cls.category for cls in all_rule_classes()})


def _matches(rule: Rule, token: str) -> bool:
    return (
        token == rule.rule_id
        or token == rule.category
        or rule.rule_id.startswith(token + ".")
    )


def rules_for(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """The enabled rule instances after include/exclude filtering.

    ``select`` keeps only rules matched by at least one token; ``ignore``
    then removes rules matched by any of its tokens.  Every token must match
    at least one registered rule, otherwise :class:`ValueError` is raised.
    """
    rules = all_rules()
    for token in list(select or []) + list(ignore or []):
        if not any(_matches(rule, token) for rule in rules):
            known = categories() + [rule.rule_id for rule in rules]
            raise ValueError(
                f"filter token {token!r} matches no registered rule; "
                f"known categories and ids: {known}"
            )
    if select:
        rules = [rule for rule in rules if any(_matches(rule, token) for token in select)]
    if ignore:
        rules = [rule for rule in rules if not any(_matches(rule, token) for token in ignore)]
    return rules
