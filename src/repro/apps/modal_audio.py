"""Modal audio applications.

Two small applications exercising the *modal* behaviour the paper motivates
(control statements selecting modes of the application while the temporal
analysis stays valid):

* :data:`MUTE_OIL_SOURCE` -- an audio pipeline whose sequential module decides
  per block whether to emit the processed value or silence (an ``if``/``else``
  mode inside one streaming loop).  This is the Fig. 4 pattern: the guarded
  assignments become unconditionally executing tasks whose bodies stay
  guarded.
* :data:`TWO_MODE_OIL_SOURCE` -- a module with **two while-loops** executed in
  alternation (a calibration mode and a normal mode), the Fig. 3 / Fig. 9
  pattern: each loop becomes its own CTA component and both access the source
  and the sink so the periodic constraints hold regardless of which mode is
  active and of when mode transitions happen.

Both applications come with function registries and helpers so the examples,
tests and the conservativeness benchmark (E10) can compile, analyse and
simulate them under arbitrary mode sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.compiler import CompilationResult, compile_program
from repro.cta.buffer_sizing import BufferSizingResult
from repro.runtime.functions import FunctionRegistry
from repro.runtime.simulator import Simulation
from repro.runtime.sources import PeriodicStimulus, Stimulus
from repro.runtime.trace import TraceRecorder
from repro.util.deprecation import warn_deprecated
from repro.util.rational import Rat

#: Default mode schedule of the two-mode application (calibrate 3, process 5).
DEFAULT_TWO_MODE_SCHEDULE: Tuple[Tuple[str, int], ...] = (("loop0", 3), ("loop1", 5))


def _fixed_signal(signal):
    """Capture a user-supplied signal once (list copy, or the stimulus)."""
    if signal is None:
        return None
    if isinstance(signal, Stimulus):
        return signal
    return list(signal)


def _run_signal(fixed, default):
    """A per-run signal: the default stimulus, a rewound copy of a fixed
    stimulus, or a fresh copy of a fixed list."""
    if fixed is None:
        return default()
    if isinstance(fixed, Stimulus):
        return fixed.fresh()
    return list(fixed)

# --------------------------------------------------------------------------
# Application 1: mute / emit modes inside one loop (Fig. 4 pattern)
# --------------------------------------------------------------------------

MUTE_OIL_SOURCE = """
mod seq Mute(sample sin, out sample sout){
  sample level;
  loop{
    level = block_level(sin:4);
    if (level < 0) { silence(out sout); }
    else { emit(level, out sout); }
  } while(1);
}

mod par {
  source sample mic = capture() @ 8 kHz;
  sink sample speaker = play() @ 2 kHz;
  Mute(mic, out speaker)
}
"""

#: Rates of the mute application.
MIC_RATE_HZ = 8000
SPEAKER_RATE_HZ = 2000


def mute_wcets(utilisation: float = 0.4) -> Dict[str, Fraction]:
    """Response times: the loop fires at 2 kHz (4 mic samples per iteration)."""
    loop_period = Fraction(1, SPEAKER_RATE_HZ)
    budget = loop_period * Fraction(utilisation).limit_denominator(100)
    return {
        "block_level": budget / 3,
        "silence": budget / 3,
        "emit": budget / 3,
    }


def mute_registry() -> FunctionRegistry:
    """Executable functions of the mute pipeline."""
    registry = FunctionRegistry()
    registry.register(
        "block_level",
        lambda samples: sum(samples) / len(samples),
        description="average level of a 4-sample block (negative = bad reception)",
        stateless=True,
    )
    registry.register("silence", lambda: 0.0, description="emit silence", stateless=True)
    registry.register(
        "emit", lambda level: level, description="pass the level through", stateless=True
    )
    return registry


def default_mute_signal() -> Stimulus:
    """Default stimulus: good reception / bad reception alternating per 20 ms,
    declared as an endless :class:`PeriodicStimulus` (the old helper returned
    100 repetitions of the same 320-sample block as a finite list)."""
    return PeriodicStimulus([1.0] * 160 + [-1.0] * 160)


def mute_program(utilisation: float = 0.4, signal: Optional[Sequence[float]] = None):
    """The mute pipeline as a :class:`repro.api.Program`."""
    from repro.api.program import Program

    fixed = _fixed_signal(signal)
    return Program.from_source(
        MUTE_OIL_SOURCE,
        name="modal_mute",
        function_wcets=mute_wcets(utilisation),
        registry=mute_registry,
        signals=lambda: {"mic": _run_signal(fixed, default_mute_signal)},
        params={"utilisation": utilisation},
    )


def compile_mute() -> CompilationResult:
    return compile_program(MUTE_OIL_SOURCE, function_wcets=mute_wcets())


def simulate_mute(
    duration: Rat,
    signal: Sequence[float],
    *,
    result: Optional[CompilationResult] = None,
    sizing: Optional[BufferSizingResult] = None,
) -> Tuple[Simulation, TraceRecorder]:
    """Deprecated: use ``Program.from_app("modal_mute", signal=...)`` (facade)."""
    from repro.api.program import Analysis

    warn_deprecated(
        "simulate_mute()", 'repro.api.Program.from_app("modal_mute").analyze().run(...)'
    )
    program = mute_program(signal=signal)
    if result is not None:
        analysis = Analysis(program, result, sizing=sizing)
    else:
        analysis = program.analyze()
    run = analysis.run(duration)
    return run.simulation, run.trace


# --------------------------------------------------------------------------
# Application 2: two while-loop modes (Fig. 3 / Fig. 9 pattern)
# --------------------------------------------------------------------------

TWO_MODE_OIL_SOURCE = """
mod seq TwoMode(sample sin, out sample sout){
  loop{
    calibrate(sin:2, out sout:1);
  } while(in_calibration());
  loop{
    process(sin:2, out sout:1);
  } while(1);
}

mod par {
  source sample adc = sample_adc() @ 4 kHz;
  sink sample dac = drive_dac() @ 2 kHz;
  TwoMode(adc, out dac)
}
"""

ADC_RATE_HZ = 4000
DAC_RATE_HZ = 2000


def two_mode_wcets(utilisation: float = 0.4) -> Dict[str, Fraction]:
    loop_period = Fraction(1, DAC_RATE_HZ)
    budget = loop_period * Fraction(utilisation).limit_denominator(100)
    return {"calibrate": budget, "process": budget, "in_calibration": Fraction(0)}


def two_mode_registry() -> FunctionRegistry:
    registry = FunctionRegistry()
    registry.register(
        "calibrate",
        lambda samples: sum(samples) / len(samples) + 100.0,
        description="calibration mode: offset output marks the mode",
        stateless=True,
    )
    registry.register(
        "process",
        lambda samples: sum(samples) / len(samples),
        description="normal processing mode",
        stateless=True,
    )
    registry.register(
        "in_calibration", lambda: False, description="mode predicate", stateless=True
    )
    return registry


def default_two_mode_signal() -> Stimulus:
    """Default stimulus: a repeating 16-step ramp, declared as an endless
    :class:`PeriodicStimulus` (the old helper returned the same values as a
    finite 100000-entry list)."""
    return PeriodicStimulus([float(i) for i in range(16)])


def two_mode_program(
    utilisation: float = 0.4,
    signal: Optional[Sequence[float]] = None,
    mode_schedule: Sequence[Tuple[str, int]] = DEFAULT_TWO_MODE_SCHEDULE,
):
    """The two-mode pipeline as a :class:`repro.api.Program`.

    ``mode_schedule`` sets the *default* schedule; a run can override it via
    ``run(..., mode_schedules={"TwoMode": [...]})`` without recompiling.
    """
    from repro.api.program import Program

    fixed = _fixed_signal(signal)
    return Program.from_source(
        TWO_MODE_OIL_SOURCE,
        name="modal_two_mode",
        function_wcets=two_mode_wcets(utilisation),
        registry=two_mode_registry,
        signals=lambda: {"adc": _run_signal(fixed, default_two_mode_signal)},
        mode_schedules={"TwoMode": list(mode_schedule)},
        params={"utilisation": utilisation, "mode_schedule": tuple(mode_schedule)},
    )


def compile_two_mode() -> CompilationResult:
    return compile_program(TWO_MODE_OIL_SOURCE, function_wcets=two_mode_wcets())


def simulate_two_mode(
    duration: Rat,
    *,
    mode_schedule: Sequence[Tuple[str, int]] = DEFAULT_TWO_MODE_SCHEDULE,
    signal: Optional[Sequence[float]] = None,
    result: Optional[CompilationResult] = None,
    sizing: Optional[BufferSizingResult] = None,
    scheduler=None,
    dispatcher: str = "ready-set",
    trace_level: str = "full",
) -> Tuple[Simulation, TraceRecorder]:
    """Deprecated: use ``Program.from_app("modal_two_mode", ...)`` (facade)."""
    from repro.api.program import Analysis

    warn_deprecated(
        "simulate_two_mode()",
        'repro.api.Program.from_app("modal_two_mode").analyze().run(...)',
    )
    program = two_mode_program(signal=signal, mode_schedule=mode_schedule)
    if result is not None:
        analysis = Analysis(program, result, sizing=sizing)
    else:
        analysis = program.analyze()
    run = analysis.run(
        duration, scheduler=scheduler, dispatcher=dispatcher, trace=trace_level
    )
    return run.simulation, run.trace
