"""Modal audio applications.

Two small applications exercising the *modal* behaviour the paper motivates
(control statements selecting modes of the application while the temporal
analysis stays valid):

* :data:`MUTE_OIL_SOURCE` -- an audio pipeline whose sequential module decides
  per block whether to emit the processed value or silence (an ``if``/``else``
  mode inside one streaming loop).  This is the Fig. 4 pattern: the guarded
  assignments become unconditionally executing tasks whose bodies stay
  guarded.
* :data:`TWO_MODE_OIL_SOURCE` -- a module with **two while-loops** executed in
  alternation (a calibration mode and a normal mode), the Fig. 3 / Fig. 9
  pattern: each loop becomes its own CTA component and both access the source
  and the sink so the periodic constraints hold regardless of which mode is
  active and of when mode transitions happen.

Both applications come with function registries and helpers so the examples,
tests and the conservativeness benchmark (E10) can compile, analyse and
simulate them under arbitrary mode sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.compiler import CompilationResult, compile_program
from repro.cta.buffer_sizing import BufferSizingResult
from repro.runtime.functions import FunctionRegistry
from repro.runtime.simulator import Simulation
from repro.runtime.trace import TraceRecorder
from repro.util.rational import Rat

# --------------------------------------------------------------------------
# Application 1: mute / emit modes inside one loop (Fig. 4 pattern)
# --------------------------------------------------------------------------

MUTE_OIL_SOURCE = """
mod seq Mute(sample sin, out sample sout){
  sample level;
  loop{
    level = block_level(sin:4);
    if (level < 0) { silence(out sout); }
    else { emit(level, out sout); }
  } while(1);
}

mod par {
  source sample mic = capture() @ 8 kHz;
  sink sample speaker = play() @ 2 kHz;
  Mute(mic, out speaker)
}
"""

#: Rates of the mute application.
MIC_RATE_HZ = 8000
SPEAKER_RATE_HZ = 2000


def mute_wcets(utilisation: float = 0.4) -> Dict[str, Fraction]:
    """Response times: the loop fires at 2 kHz (4 mic samples per iteration)."""
    loop_period = Fraction(1, SPEAKER_RATE_HZ)
    budget = loop_period * Fraction(utilisation).limit_denominator(100)
    return {
        "block_level": budget / 3,
        "silence": budget / 3,
        "emit": budget / 3,
    }


def mute_registry() -> FunctionRegistry:
    """Executable functions of the mute pipeline."""
    registry = FunctionRegistry()
    registry.register(
        "block_level",
        lambda samples: sum(samples) / len(samples),
        description="average level of a 4-sample block (negative = bad reception)",
    )
    registry.register("silence", lambda: 0.0, description="emit silence")
    registry.register("emit", lambda level: level, description="pass the level through")
    return registry


def compile_mute() -> CompilationResult:
    return compile_program(MUTE_OIL_SOURCE, function_wcets=mute_wcets())


def simulate_mute(
    duration: Rat,
    signal: Sequence[float],
    *,
    result: Optional[CompilationResult] = None,
    sizing: Optional[BufferSizingResult] = None,
) -> Tuple[Simulation, TraceRecorder]:
    """Run the mute pipeline on *signal* for *duration* seconds."""
    if result is None:
        result = compile_mute()
    if sizing is None:
        sizing = result.size_buffers()
    simulation = Simulation(
        result,
        mute_registry(),
        source_signals={"mic": list(signal)},
        capacities=sizing.capacities,
    )
    trace = simulation.run(duration)
    return simulation, trace


# --------------------------------------------------------------------------
# Application 2: two while-loop modes (Fig. 3 / Fig. 9 pattern)
# --------------------------------------------------------------------------

TWO_MODE_OIL_SOURCE = """
mod seq TwoMode(sample sin, out sample sout){
  loop{
    calibrate(sin:2, out sout:1);
  } while(in_calibration());
  loop{
    process(sin:2, out sout:1);
  } while(1);
}

mod par {
  source sample adc = sample_adc() @ 4 kHz;
  sink sample dac = drive_dac() @ 2 kHz;
  TwoMode(adc, out dac)
}
"""

ADC_RATE_HZ = 4000
DAC_RATE_HZ = 2000


def two_mode_wcets(utilisation: float = 0.4) -> Dict[str, Fraction]:
    loop_period = Fraction(1, DAC_RATE_HZ)
    budget = loop_period * Fraction(utilisation).limit_denominator(100)
    return {"calibrate": budget, "process": budget, "in_calibration": Fraction(0)}


def two_mode_registry() -> FunctionRegistry:
    registry = FunctionRegistry()
    registry.register(
        "calibrate",
        lambda samples: sum(samples) / len(samples) + 100.0,
        description="calibration mode: offset output marks the mode",
    )
    registry.register(
        "process",
        lambda samples: sum(samples) / len(samples),
        description="normal processing mode",
    )
    registry.register("in_calibration", lambda: False, description="mode predicate")
    return registry


def compile_two_mode() -> CompilationResult:
    return compile_program(TWO_MODE_OIL_SOURCE, function_wcets=two_mode_wcets())


def simulate_two_mode(
    duration: Rat,
    *,
    mode_schedule: Sequence[Tuple[str, int]] = (("loop0", 3), ("loop1", 5)),
    signal: Optional[Sequence[float]] = None,
    result: Optional[CompilationResult] = None,
    sizing: Optional[BufferSizingResult] = None,
    scheduler=None,
    dispatcher: str = "ready-set",
    trace_level: str = "full",
) -> Tuple[Simulation, TraceRecorder]:
    """Run the two-mode application under an explicit mode schedule
    (alternating iteration quotas for the calibration and processing loops)."""
    if result is None:
        result = compile_two_mode()
    if sizing is None:
        sizing = result.size_buffers()
    if signal is None:
        signal = [float(i % 16) for i in range(100000)]
    simulation = Simulation(
        result,
        two_mode_registry(),
        source_signals={"adc": list(signal)},
        capacities=sizing.capacities,
        mode_schedules={"TwoMode": list(mode_schedule)},
        scheduler=scheduler,
        dispatcher=dispatcher,
        trace_level=trace_level,
    )
    trace = simulation.run(duration)
    return simulation, trace
