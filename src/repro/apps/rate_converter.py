"""The rate-conversion example of Sec. III (Fig. 2).

A cyclic task graph in which task ``tf`` reads three values and writes three
values while task ``tg`` reads two and writes two; four initial values are
available on the buffer feeding ``tf``.  Because the tasks transfer different
numbers of values, ``tg`` must execute 3/2 times as often as ``tf`` -- the
repetition vector is (2, 3).

The module provides:

* the cyclic task graph as an SDF graph (Fig. 2a),
* the *sequential* formulation: the static-order schedule a programmer would
  have to find and spell out by hand (Fig. 2b) and a renderer producing that
  program text,
* the *parallel* OIL formulation (Fig. 2c) plus the function registry needed
  to execute it,
* the facade front: :func:`fig2_program` /
  ``Program.from_app("rate_converter")`` compiles, sizes and *executes* the
  cyclic program end-to-end (self-timed execution requires the runtime's
  one-shot window retirement: the ``init`` prefix must become visible to
  ``tf`` before ``tg`` ever produces),
* comparison helpers used by the Fig. 2 benchmark (schedule length vs. number
  of statements in the OIL specification).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.core.compiler import CompilationResult, compile_program
from repro.dataflow.analysis import check_deadlock, repetition_vector
from repro.dataflow.sdf import SDFGraph
from repro.lang import ast
from repro.runtime.functions import FunctionRegistry
from repro.util.rational import Rat

#: Tokens transferred per firing in the paper's example.
F_TOKENS = 3
G_TOKENS = 2
INITIAL_TOKENS = 4

FIG2_OIL_TEMPLATE = """
mod seq A(out int a, int b){{
  loop{{
    f(out a:3, b:3);
  }} while(1);
}}

mod seq B(out int c, int d){{
  init(out c:{initial});
  loop{{
    g(out c:2, d:2);
  }} while(1);
}}

mod par C(){{
  fifo int x, y;
  A(out x, y) || B(out y, x)
}}
"""


def fig2_oil_source(initial_tokens: int = INITIAL_TOKENS) -> str:
    """The Fig. 2c OIL program with a configurable number of initial values.

    The paper's example uses 4 initial values, which is sufficient for
    self-timed execution (the exact SDF analysis finds a finite iteration
    period).  The strictly periodic abstraction of the CTA model is
    conservative and needs more initial slack; the Fig. 2 benchmark sweeps
    this parameter and reports the smallest value each analysis accepts.
    """
    if initial_tokens < 1:
        raise ValueError("at least one initial value is required")
    return FIG2_OIL_TEMPLATE.format(initial=initial_tokens)


#: The paper's instance (4 initial values).
FIG2_OIL_SOURCE = fig2_oil_source(INITIAL_TOKENS)


def fig2_task_graph(
    *,
    f_duration: Rat = Fraction(1, 1000),
    g_duration: Rat = Fraction(1, 1000),
    f_tokens: int = F_TOKENS,
    g_tokens: int = G_TOKENS,
    initial_tokens: int = INITIAL_TOKENS,
) -> SDFGraph:
    """The cyclic task graph of Fig. 2a as an SDF graph."""
    graph = SDFGraph("fig2")
    graph.add_actor("tf", firing_duration=f_duration)
    graph.add_actor("tg", firing_duration=g_duration)
    graph.add_edge("bx", "tf", "tg", production=f_tokens, consumption=g_tokens)
    graph.add_edge(
        "by", "tg", "tf", production=g_tokens, consumption=f_tokens, initial_tokens=initial_tokens
    )
    return graph


def sequential_schedule(graph: Optional[SDFGraph] = None) -> List[str]:
    """The static-order schedule of one iteration of the Fig. 2a task graph
    (the firing sequence a sequential program must encode explicitly)."""
    graph = graph or fig2_task_graph()
    result = check_deadlock(graph)
    if not result.deadlock_free:
        raise ValueError("the Fig. 2 task graph unexpectedly deadlocks")
    return result.schedule


def sequential_program_text(graph: Optional[SDFGraph] = None) -> str:
    """Render the sequential program of Fig. 2b: an explicit schedule with
    array-slice bookkeeping for every firing."""
    graph = graph or fig2_task_graph()
    schedule = sequential_schedule(graph)
    q = repetition_vector(graph)
    bx_capacity = q["tf"] * F_TOKENS
    by_capacity = max(q["tg"] * G_TOKENS, INITIAL_TOKENS) + G_TOKENS

    lines = [f"int x[{bx_capacity}], y[{by_capacity}];", f"init(out y[0:{INITIAL_TOKENS - 1}]);", "loop{"]
    x_write = x_read = 0
    y_write = INITIAL_TOKENS
    y_read = 0
    for firing in schedule:
        if firing == "tf":
            lines.append(
                f"  f(out x[{x_write % bx_capacity}:{(x_write + F_TOKENS - 1) % bx_capacity}], "
                f"y[{y_read % by_capacity}:{(y_read + F_TOKENS - 1) % by_capacity}]);"
            )
            x_write += F_TOKENS
            y_read += F_TOKENS
        else:
            lines.append(
                f"  g(out y[{y_write % by_capacity}:{(y_write + G_TOKENS - 1) % by_capacity}], "
                f"x[{x_read % bx_capacity}:{(x_read + G_TOKENS - 1) % bx_capacity}]);"
            )
            y_write += G_TOKENS
            x_read += G_TOKENS
    lines.append("} while(1);")
    return "\n".join(lines)


def fig2_registry(initial_tokens: int = INITIAL_TOKENS) -> FunctionRegistry:
    """Executable implementations for the Fig. 2c OIL program: ``f`` copies
    and scales its inputs, ``g`` accumulates pairs, ``init`` seeds the stream."""
    registry = FunctionRegistry()
    registry.register(
        "init",
        lambda: [0.0] * initial_tokens,
        description="seed the initial values",
        stateless=True,
    )
    registry.register(
        "f",
        lambda values: [2.0 * v + 1.0 for v in values],
        description="per-triple transformation",
        stateless=True,
    )
    registry.register(
        "g",
        lambda values: [sum(values) / len(values)] * G_TOKENS,
        description="per-pair smoothing",
        stateless=True,
    )
    return registry


def fig2_program(
    initial_tokens: Optional[int] = None,
    f_wcet: Rat = Fraction(1, 1000),
    g_wcet: Rat = Fraction(1, 1000),
):
    """The Fig. 2c program as a :class:`repro.api.Program`.

    ``initial_tokens`` defaults to the smallest count the strictly periodic
    CTA abstraction accepts (:func:`minimal_initial_tokens_for_cta`), so the
    default program is both analysable *and* executable; pass the paper's 4
    to study the conservativeness gap.
    """
    from repro.api.program import Program

    tokens = minimal_initial_tokens_for_cta() if initial_tokens is None else initial_tokens
    return Program.from_source(
        fig2_oil_source(tokens),
        name="rate_converter",
        function_wcets={"f": f_wcet, "g": g_wcet, "init": 0},
        registry=lambda: fig2_registry(tokens),
        params={"initial_tokens": tokens, "f_wcet": f_wcet, "g_wcet": g_wcet},
    )


def compile_fig2(
    *,
    f_wcet: Rat = Fraction(1, 1000),
    g_wcet: Rat = Fraction(1, 1000),
    initial_tokens: int = INITIAL_TOKENS,
) -> CompilationResult:
    """Compile the Fig. 2c OIL program into its CTA model."""
    return compile_program(
        fig2_oil_source(initial_tokens),
        function_wcets={"f": f_wcet, "g": g_wcet, "init": 0},
    )


def minimal_initial_tokens_for_cta(*, maximum: int = 32) -> int:
    """The smallest number of initial values for which the strictly periodic
    CTA abstraction of the Fig. 2c program is consistent.

    The exact self-timed analysis already succeeds with the paper's 4 initial
    values; the periodic abstraction is conservative and needs a few more.
    The difference is reported by the Fig. 2 benchmark.
    """
    for initial in range(1, maximum + 1):
        result = compile_fig2(initial_tokens=initial)
        if result.check_consistency(assume_infinite_unsized=True).consistent:
            return initial
    raise ValueError(f"no feasible initial token count up to {maximum}")


@dataclass
class Fig2Comparison:
    """Size comparison between the sequential and the OIL specification."""

    schedule_length: int
    sequential_statement_count: int
    oil_function_calls: int
    repetition_vector: Dict[str, int]

    @property
    def reduction_factor(self) -> float:
        return self.sequential_statement_count / max(self.oil_function_calls, 1)


def compare_specifications() -> Fig2Comparison:
    """Quantify the Fig. 2 observation: the sequential program must encode the
    full schedule (one statement per firing), the OIL program needs exactly
    one call to ``f`` and one to ``g``."""
    graph = fig2_task_graph()
    schedule = sequential_schedule(graph)
    q = repetition_vector(graph)
    sequential_statements = len(schedule) + 1  # the init call
    program = compile_fig2().program

    def count_calls(module_name: str) -> int:
        module = program.module(module_name)
        assert isinstance(module, ast.SequentialModule)
        return sum(
            1
            for statement in ast.walk_statements(module.body)
            if isinstance(statement, ast.FunctionCall) and statement.name in ("f", "g")
        )

    oil_calls = count_calls("A") + count_calls("B")
    return Fig2Comparison(
        schedule_length=len(schedule),
        sequential_statement_count=sequential_statements,
        oil_function_calls=oil_calls,
        repetition_vector=q.as_dict(),
    )
