"""A minimal downsampling pipeline used by the quickstart example and tests.

A 2 kHz sensor source feeds a sequential module that averages pairs of
samples and writes the result to a 1 kHz logging sink -- the smallest
meaningful multi-rate OIL program: one module, one loop, a 2:1 rate
conversion, a source, a sink and a latency constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Sequence, Tuple

from repro.core.compiler import CompilationResult, compile_program
from repro.cta.buffer_sizing import BufferSizingResult
from repro.runtime.functions import FunctionRegistry
from repro.runtime.simulator import Simulation
from repro.runtime.trace import TraceRecorder
from repro.util.rational import Rat

QUICKSTART_OIL_SOURCE = """
mod seq Downsample(int x, out int y){
  loop{
    average2(x:2, out y);
  } while(1);
}

mod par {
  source int samples = sensor() @ 2 kHz;
  sink int averages = log_value() @ 1 kHz;
  start averages 4 ms after samples;
  start averages 10 ms before samples;
  Downsample(samples, out averages)
}
"""

SENSOR_RATE_HZ = 2000
LOG_RATE_HZ = 1000


def quickstart_wcets(utilisation: float = 0.3) -> Dict[str, Fraction]:
    period = Fraction(1, LOG_RATE_HZ)
    return {"average2": period * Fraction(utilisation).limit_denominator(100)}


def quickstart_registry() -> FunctionRegistry:
    registry = FunctionRegistry()
    registry.register(
        "average2",
        lambda pair: sum(pair) / len(pair),
        description="average two consecutive sensor samples",
    )
    return registry


def compile_quickstart() -> CompilationResult:
    return compile_program(QUICKSTART_OIL_SOURCE, function_wcets=quickstart_wcets())


def simulate_quickstart(
    duration: Rat,
    *,
    signal: Optional[Sequence[float]] = None,
    result: Optional[CompilationResult] = None,
    sizing: Optional[BufferSizingResult] = None,
    scheduler=None,
    dispatcher: str = "ready-set",
    trace_level: str = "full",
) -> Tuple[Simulation, TraceRecorder]:
    if result is None:
        result = compile_quickstart()
    if sizing is None:
        sizing = result.size_buffers()
    if signal is None:
        signal = [float(i) for i in range(1000000)]
    simulation = Simulation(
        result,
        quickstart_registry(),
        source_signals={"samples": list(signal)},
        capacities=sizing.capacities,
        scheduler=scheduler,
        dispatcher=dispatcher,
        trace_level=trace_level,
    )
    trace = simulation.run(duration)
    return simulation, trace
