"""A minimal downsampling pipeline used by the quickstart example and tests.

A 2 kHz sensor source feeds a sequential module that averages pairs of
samples and writes the result to a 1 kHz logging sink -- the smallest
meaningful multi-rate OIL program: one module, one loop, a 2:1 rate
conversion, a source, a sink and a latency constraint.

:func:`quickstart_program` packages the pipeline for the facade
(``Program.from_app("quickstart")``); the ``compile_quickstart`` /
``simulate_quickstart`` helpers predate :mod:`repro.api` and are kept as
deprecated aliases.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.compiler import CompilationResult
from repro.cta.buffer_sizing import BufferSizingResult
from repro.runtime.functions import FunctionRegistry
from repro.runtime.simulator import Simulation
from repro.runtime.sources import RampStimulus, Stimulus
from repro.runtime.trace import TraceRecorder
from repro.util.deprecation import warn_deprecated
from repro.util.rational import Rat

QUICKSTART_OIL_SOURCE = """
mod seq Downsample(int x, out int y){
  loop{
    average2(x:2, out y);
  } while(1);
}

mod par {
  source int samples = sensor() @ 2 kHz;
  sink int averages = log_value() @ 1 kHz;
  start averages 4 ms after samples;
  start averages 10 ms before samples;
  Downsample(samples, out averages)
}
"""

SENSOR_RATE_HZ = 2000
LOG_RATE_HZ = 1000


def quickstart_wcets(utilisation: float = 0.3) -> Dict[str, Fraction]:
    period = Fraction(1, LOG_RATE_HZ)
    return {"average2": period * Fraction(utilisation).limit_denominator(100)}


def quickstart_registry() -> FunctionRegistry:
    registry = FunctionRegistry()
    registry.register(
        "average2",
        lambda pair: sum(pair) / len(pair),
        description="average two consecutive sensor samples",
        stateless=True,
    )
    return registry


def default_signal() -> Stimulus:
    """The deterministic default stimulus: the integers, as floats.

    Declared as a :class:`RampStimulus` (value ``n`` is ``0.0 + n * 1.0``,
    computed by multiplication) -- an infinite stream replacing the old
    1e6-entry list, identical value for value over that prefix."""
    return RampStimulus(0.0, 1.0)


def quickstart_program(
    utilisation: float = 0.3, signal: Optional[Sequence[float]] = None
):
    """The quickstart pipeline as a :class:`repro.api.Program`."""
    from repro.api.program import Program

    if signal is None:
        fixed = None
    elif isinstance(signal, Stimulus):
        fixed = signal
    else:
        fixed = list(signal)
    return Program.from_source(
        QUICKSTART_OIL_SOURCE,
        name="quickstart",
        function_wcets=quickstart_wcets(utilisation),
        registry=quickstart_registry,
        signals=lambda: {
            "samples": (
                default_signal()
                if fixed is None
                else fixed.fresh() if isinstance(fixed, Stimulus) else list(fixed)
            )
        },
        params={"utilisation": utilisation},
    )


# ---------------------------------------------------------------------------
# Deprecated pre-facade helpers
# ---------------------------------------------------------------------------

def compile_quickstart() -> CompilationResult:
    """Deprecated: use ``Program.from_app("quickstart").compile()``."""
    warn_deprecated("compile_quickstart()", 'repro.api.Program.from_app("quickstart")')
    return quickstart_program().compile()


def simulate_quickstart(
    duration: Rat,
    *,
    signal: Optional[Sequence[float]] = None,
    result: Optional[CompilationResult] = None,
    sizing: Optional[BufferSizingResult] = None,
    scheduler=None,
    dispatcher: str = "ready-set",
    trace_level: str = "full",
) -> Tuple[Simulation, TraceRecorder]:
    """Deprecated: use ``Program.from_app("quickstart").analyze().run(...)``."""
    from repro.api.program import Analysis

    warn_deprecated(
        "simulate_quickstart()", 'repro.api.Program.from_app("quickstart").analyze().run(...)'
    )
    program = quickstart_program(signal=signal)
    if result is not None:
        analysis = Analysis(program, result, sizing=sizing)
    else:
        analysis = program.analyze()
    run = analysis.run(
        duration, scheduler=scheduler, dispatcher=dispatcher, trace=trace_level
    )
    return run.simulation, run.trace
