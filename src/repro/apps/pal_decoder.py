"""The PAL video decoder case study (Sec. VI, Figs. 11 and 12).

A PAL decoder receives an RF signal sampled at 6.4 MS/s, splits it into a
video and an audio band, resamples the video band by 10/16 to the 4 MS/s the
black-box Video module expects and decimates the audio band by 25 and then by
8 down to the 32 kHz speaker rate.  Audio and video sinks must start
simultaneously (0 ms latency difference).

This module packages everything needed to compile, analyse and execute the
decoder with this reproduction:

* the OIL program text of Fig. 11 (parameterised by a frequency scale so that
  the full pipeline can be simulated in reasonable wall-clock time; the rate
  *ratios* -- 25, 10/16, 8 -- never change),
* the black-box module declarations for ``Mix_A``, ``LPF_V``, ``Video`` and
  ``Audio`` with their interface rates and response times,
* worst-case response times for the coordinated DSP functions,
* a function registry with executable DSP implementations
  (:mod:`repro.dsp`), including the modal mute behaviour of the Audio module
  the paper mentions ("the audio module internally has control behaviour, for
  example to mute the audio output in case of a bad reception"),
* the facade front: :meth:`PalDecoderApp.program` /
  ``Program.from_app("pal_decoder", scale=..., utilisation=...)`` run the
  complete pipeline -- compile, size buffers, verify latency, simulate on a
  synthetic RF signal -- through :mod:`repro.api`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.core.compiler import CompilationResult
from repro.cta.buffer_sizing import BufferSizingResult
from repro.dsp.filters import StreamingFIR, design_lowpass
from repro.dsp.mixer import Mixer
from repro.dsp.pal import PALSignalConfig
from repro.dsp.resample import Decimator, RationalResampler
from repro.lang.semantics import BlackBoxModule, BlackBoxPort
from repro.runtime.functions import FunctionRegistry
from repro.runtime.simulator import Simulation
from repro.runtime.trace import TraceRecorder
from repro.util.deprecation import warn_deprecated
from repro.util.rational import Rat

#: Nominal rates of the paper's PAL decoder.
RF_RATE_HZ = 6_400_000
VIDEO_RATE_HZ = 4_000_000
AUDIO_RATE_HZ = 32_000

#: Rate conversion factors (Sec. VI / Fig. 12).
AUDIO_DECIMATION = 25          # SRC_A: gamma = 1/25
VIDEO_UP, VIDEO_DOWN = 10, 16  # SRC_V: gamma = 10/16
AUDIO_FINAL_DECIMATION = 8     # Audio:  gamma = 1/8


PAL_OIL_TEMPLATE = """
mod seq SRC_A(sample si, out sample so){{
  loop{{ LPF(si:{audio_decimation}, out so); }} while(1);
}}

mod seq SRC_V(sample si, out sample so){{
  loop{{ resamp(si:{video_down}, out so:{video_up}); }} while(1);
}}

mod par Splitter(sample rf, out sample v, out sample a){{
  fifo sample mas, mvs;
  Mix_A(rf, out mas) || SRC_A(mas, out a) ||
  LPF_V(rf, out mvs) || SRC_V(mvs, out v)
}}

mod par {{
  fifo sample vid, aud;
  source sample rf = receiveRF() @ {rf_hz} Hz;
  sink sample screen = display() @ {video_hz} Hz;
  sink sample speakers = sound() @ {audio_hz} Hz;
  start screen 0 ms after speakers;
  start screen 0 ms before speakers;
  Splitter(rf, out vid, out aud) ||
  Video(vid, out screen) ||
  Audio(aud, out speakers)
}}
"""


def pal_source_text(scale: int = 1) -> str:
    """The OIL program of Fig. 11 with all frequencies divided by *scale*.

    The rate ratios are unchanged, so the derived CTA model has exactly the
    same structure and transfer-rate ratios as the full-rate decoder.
    """
    if scale < 1 or RF_RATE_HZ % scale or VIDEO_RATE_HZ % scale or AUDIO_RATE_HZ % scale:
        raise ValueError(
            f"scale must divide all three rates ({RF_RATE_HZ}, {VIDEO_RATE_HZ}, {AUDIO_RATE_HZ}); got {scale}"
        )
    return PAL_OIL_TEMPLATE.format(
        audio_decimation=AUDIO_DECIMATION,
        video_down=VIDEO_DOWN,
        video_up=VIDEO_UP,
        rf_hz=RF_RATE_HZ // scale,
        video_hz=VIDEO_RATE_HZ // scale,
        audio_hz=AUDIO_RATE_HZ // scale,
    )


@dataclass
class PalDecoderApp:
    """A ready-to-run PAL decoder configuration.

    Parameters
    ----------
    scale:
        Frequency scale factor: all declared rates are divided by it (1 =
        the paper's 6.4 MS/s; 1000 is convenient for functional simulation).
    utilisation:
        Fraction of its firing period each function's worst-case response
        time occupies (0 < utilisation < 1).
    signal:
        Configuration of the synthetic composite RF signal.
    mute_threshold:
        Audio level below which the modal Audio module mutes its output.
    """

    scale: int = 1000
    utilisation: float = 0.4
    signal: PALSignalConfig = field(default_factory=PALSignalConfig)
    mute_threshold: float = 0.0

    # --------------------------------------------------------------- sources
    @property
    def rf_rate(self) -> Fraction:
        return Fraction(RF_RATE_HZ, self.scale)

    @property
    def video_rate(self) -> Fraction:
        return Fraction(VIDEO_RATE_HZ, self.scale)

    @property
    def audio_rate(self) -> Fraction:
        return Fraction(AUDIO_RATE_HZ, self.scale)

    def source_text(self) -> str:
        return pal_source_text(self.scale)

    # ------------------------------------------------------------ interfaces
    def _wcet_for_rate(self, rate: Fraction) -> Fraction:
        """A response time equal to ``utilisation`` of the firing period."""
        period = Fraction(1) / rate
        return period * Fraction(self.utilisation).limit_denominator(1000)

    def black_boxes(self) -> List[BlackBoxModule]:
        """Interface declarations of the externally implemented modules."""
        return [
            BlackBoxModule(
                "Mix_A",
                (BlackBoxPort("in", False), BlackBoxPort("out", True)),
                firing_duration=self._wcet_for_rate(self.rf_rate),
            ),
            BlackBoxModule(
                "LPF_V",
                (BlackBoxPort("in", False), BlackBoxPort("out", True)),
                firing_duration=self._wcet_for_rate(self.rf_rate),
            ),
            BlackBoxModule(
                "Video",
                (BlackBoxPort("in", False), BlackBoxPort("out", True)),
                firing_duration=self._wcet_for_rate(self.video_rate),
            ),
            BlackBoxModule(
                "Audio",
                (
                    BlackBoxPort("in", False, AUDIO_FINAL_DECIMATION),
                    BlackBoxPort("out", True, 1),
                ),
                firing_duration=self._wcet_for_rate(self.audio_rate),
            ),
        ]

    def function_wcets(self) -> Dict[str, Fraction]:
        """Worst-case response times of the coordinated functions."""
        audio_loop_rate = self.rf_rate / AUDIO_DECIMATION        # SRC_A loop
        video_loop_rate = self.rf_rate / VIDEO_DOWN              # SRC_V loop
        return {
            "LPF": self._wcet_for_rate(audio_loop_rate),
            "resamp": self._wcet_for_rate(video_loop_rate),
        }

    # -------------------------------------------------------------- pipeline
    def program(self):
        """The decoder as a :class:`repro.api.Program` (the facade front)."""
        from repro.api.program import Program
        from repro.dsp.pal import periodic_composite_stimulus

        return Program.from_source(
            self.source_text(),
            name="pal_decoder",
            function_wcets=self.function_wcets(),
            black_boxes=self.black_boxes(),
            registry=self.registry,
            signals=lambda: {"rf": periodic_composite_stimulus(self.signal)},
            params={
                "scale": self.scale,
                "utilisation": self.utilisation,
                "mute_threshold": self.mute_threshold,
            },
        )

    def compile(self) -> CompilationResult:
        """Parse, validate and derive the CTA model of the decoder."""
        return self.program().compile()

    def registry(self) -> FunctionRegistry:
        """Executable implementations of all coordinated functions.

        The DSP state (filter delay lines, oscillator phases) is created
        fresh for every registry, so separate simulations never share state.
        """
        registry = FunctionRegistry()
        mixer = Mixer(self.signal.audio_carrier)
        audio_decimator = Decimator(AUDIO_DECIMATION, num_taps=127)
        # Low-pass keeping the video band and rejecting the audio carrier.
        video_filter = StreamingFIR(design_lowpass(0.15, 63))
        video_resampler = RationalResampler(VIDEO_UP, VIDEO_DOWN, num_taps=63)
        final_decimator = Decimator(AUDIO_FINAL_DECIMATION, num_taps=63)
        threshold = self.mute_threshold

        registry.register(
            "Mix_A",
            lambda sample: mixer.process([sample])[0],
            wcet=self._wcet_for_rate(self.rf_rate),
            description="mix the audio carrier down to baseband",
            get_state=mixer.get_state,
            set_state=mixer.set_state,
            state_version=mixer.state_version,
        )
        registry.register(
            "LPF_V",
            lambda sample: video_filter.process([sample])[0],
            wcet=self._wcet_for_rate(self.rf_rate),
            description="low-pass filter keeping the video band",
            get_state=video_filter.get_state,
            set_state=video_filter.set_state,
            state_version=video_filter.state_version,
        )
        registry.register(
            "LPF",
            lambda samples: audio_decimator.process(samples)[0],
            wcet=self.function_wcets()["LPF"],
            description="anti-alias filter + decimation by 25 (SRC_A)",
            get_state=audio_decimator.get_state,
            set_state=audio_decimator.set_state,
            state_version=audio_decimator.state_version,
        )
        registry.register(
            "resamp",
            lambda samples: video_resampler.process(samples),
            wcet=self.function_wcets()["resamp"],
            description="10/16 rational resampler (SRC_V)",
            get_state=video_resampler.get_state,
            set_state=video_resampler.set_state,
            state_version=video_resampler.state_version,
        )
        registry.register(
            "Video",
            lambda sample: float(sample),
            wcet=self._wcet_for_rate(self.video_rate),
            description="black-box video processing (pass-through)",
            stateless=True,
        )

        def audio_box(samples):
            value = final_decimator.process(samples)[0]
            # Modal behaviour: mute the output when the level drops below the
            # configured threshold (bad reception).
            if abs(value) < threshold:
                return 0.0
            return value

        registry.register(
            "Audio",
            audio_box,
            wcet=self._wcet_for_rate(self.audio_rate),
            description="black-box audio processing with mute mode (decimation by 8)",
            get_state=final_decimator.get_state,
            set_state=final_decimator.set_state,
            state_version=final_decimator.state_version,
        )
        return registry

    def analyze(self) -> Tuple[CompilationResult, BufferSizingResult]:
        """Deprecated: use ``self.program().analyze()`` (facade)."""
        warn_deprecated(
            "PalDecoderApp.analyze()", 'repro.api.Program.from_app("pal_decoder").analyze()'
        )
        analysis = self.program().analyze()
        return analysis.compilation, analysis.sizing

    def simulate(
        self,
        duration: Rat,
        *,
        result: Optional[CompilationResult] = None,
        sizing: Optional[BufferSizingResult] = None,
        registry: Optional[FunctionRegistry] = None,
        scheduler=None,
        dispatcher: str = "ready-set",
        trace_level: str = "full",
    ) -> Tuple[Simulation, TraceRecorder]:
        """Deprecated: use ``self.program().analyze().run(...)`` (facade).

        The synthetic RF signal is deterministic, so two simulations with the
        same configuration produce identical traces.
        """
        from repro.api.program import Analysis

        warn_deprecated(
            "PalDecoderApp.simulate()",
            'repro.api.Program.from_app("pal_decoder").analyze().run(...)',
        )
        program = self.program()
        if result is not None:
            analysis = Analysis(program, result, sizing=sizing)
        else:
            analysis = program.analyze()
        run = analysis.run(
            duration,
            scheduler=scheduler,
            dispatcher=dispatcher,
            trace=trace_level,
            registry=registry,
        )
        return run.simulation, run.trace


def pal_program(
    scale: int = 1000,
    utilisation: float = 0.4,
    signal: Optional[PALSignalConfig] = None,
    mute_threshold: float = 0.0,
):
    """Builder behind ``Program.from_app("pal_decoder", ...)``."""
    app = PalDecoderApp(
        scale=scale,
        utilisation=utilisation,
        signal=signal if signal is not None else PALSignalConfig(),
        mute_threshold=mute_threshold,
    )
    return app.program()
