"""Ready-made OIL applications.

* :mod:`repro.apps.pal_decoder` -- the PAL video decoder case study
  (Sec. VI, Figs. 11/12),
* :mod:`repro.apps.rate_converter` -- the rate-conversion example of Fig. 2,
* :mod:`repro.apps.modal_audio` -- modal applications (if/else mute mode and
  a two-while-loop mode switcher),
* :mod:`repro.apps.producer_consumer` -- the minimal quickstart pipeline.

All applications are registered with the :mod:`repro.api` facade: build them
with ``Program.from_app("pal_decoder" | "rate_converter" | "modal_mute" |
"modal_two_mode" | "quickstart", **params)``.  The ``*_program`` builders
exported here are those registry entries; the older ``compile_*`` /
``simulate_*`` helpers are deprecated aliases kept for compatibility.
"""

from repro.apps.pal_decoder import (
    AUDIO_DECIMATION,
    AUDIO_FINAL_DECIMATION,
    AUDIO_RATE_HZ,
    RF_RATE_HZ,
    VIDEO_DOWN,
    VIDEO_RATE_HZ,
    VIDEO_UP,
    PalDecoderApp,
    pal_program,
    pal_source_text,
)
from repro.apps.rate_converter import (
    FIG2_OIL_SOURCE,
    Fig2Comparison,
    compare_specifications,
    compile_fig2,
    fig2_program,
    fig2_registry,
    fig2_task_graph,
    sequential_program_text,
    sequential_schedule,
)
from repro.apps.modal_audio import (
    DEFAULT_TWO_MODE_SCHEDULE,
    MUTE_OIL_SOURCE,
    TWO_MODE_OIL_SOURCE,
    compile_mute,
    compile_two_mode,
    mute_program,
    mute_registry,
    mute_wcets,
    simulate_mute,
    simulate_two_mode,
    two_mode_program,
    two_mode_registry,
    two_mode_wcets,
)
from repro.apps.producer_consumer import (
    QUICKSTART_OIL_SOURCE,
    compile_quickstart,
    quickstart_program,
    quickstart_registry,
    quickstart_wcets,
    simulate_quickstart,
)

__all__ = [
    "AUDIO_DECIMATION",
    "AUDIO_FINAL_DECIMATION",
    "AUDIO_RATE_HZ",
    "RF_RATE_HZ",
    "VIDEO_DOWN",
    "VIDEO_RATE_HZ",
    "VIDEO_UP",
    "PalDecoderApp",
    "pal_program",
    "pal_source_text",
    "FIG2_OIL_SOURCE",
    "fig2_program",
    "DEFAULT_TWO_MODE_SCHEDULE",
    "mute_program",
    "two_mode_program",
    "quickstart_program",
    "Fig2Comparison",
    "compare_specifications",
    "compile_fig2",
    "fig2_registry",
    "fig2_task_graph",
    "sequential_program_text",
    "sequential_schedule",
    "MUTE_OIL_SOURCE",
    "TWO_MODE_OIL_SOURCE",
    "compile_mute",
    "compile_two_mode",
    "mute_registry",
    "mute_wcets",
    "simulate_mute",
    "simulate_two_mode",
    "two_mode_registry",
    "two_mode_wcets",
    "QUICKSTART_OIL_SOURCE",
    "compile_quickstart",
    "quickstart_registry",
    "quickstart_wcets",
    "simulate_quickstart",
]
