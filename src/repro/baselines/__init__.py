"""Baselines the paper argues against.

* :mod:`repro.baselines.sequential_schedule` -- the explicit static-order
  schedule a sequential language forces the programmer to write (Fig. 2b),
* :mod:`repro.baselines.sdf_exact` -- exact SDF analysis via HSDF expansion
  and state-space exploration (exponential in the description size),
* :mod:`repro.baselines.comparison` -- matched-workload scaling comparison of
  the CTA analysis against the exact SDF route (experiment E9).
"""

from repro.baselines.sequential_schedule import (
    ScheduleGrowthRow,
    SequentialProgram,
    generate_sequential_program,
    rate_conversion_graph,
    schedule_growth,
    static_order_policy,
)
from repro.baselines.sdf_exact import (
    ExactAnalysisReport,
    exact_analysis,
    multirate_chain,
    multirate_cycle,
)
from repro.baselines.comparison import (
    ComparisonRow,
    compare_scaling,
    decimation_pipeline_source,
    format_comparison,
)

__all__ = [
    "ScheduleGrowthRow",
    "SequentialProgram",
    "generate_sequential_program",
    "rate_conversion_graph",
    "schedule_growth",
    "static_order_policy",
    "ExactAnalysisReport",
    "exact_analysis",
    "multirate_chain",
    "multirate_cycle",
    "ComparisonRow",
    "compare_scaling",
    "decimation_pipeline_source",
    "format_comparison",
]
