"""Baseline: writing multi-rate applications as sequential programs.

Section III-A of the paper argues that expressing multi-rate behaviour in a
sequential language forces the programmer to spell out the complete
static-order schedule (one statement per firing, Fig. 2b), whose length is the
sum of the repetition vector and can grow very large for applications whose
rates have large co-prime factors.

This module generalises the Fig. 2 comparison: given any consistent SDF graph,
it produces the explicit sequential program (the schedule with array-index
bookkeeping) and reports its size, so the benchmark can sweep rate pairs and
show how the sequential specification grows while the OIL specification stays
constant (one call per task).

The baseline is also *executable*: :func:`static_order_policy` turns the same
schedule into a :class:`~repro.engine.policies.StaticOrder` scheduling policy
of the execution engine, so "run the program the sequential way" is a policy
choice rather than a separate simulator code path -- the engine's
static-order firing sequence and the generated program's statement order are
one and the same schedule (the equivalence tests assert exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Dict, List, Optional, Tuple

from repro.dataflow.analysis import check_deadlock, repetition_vector
from repro.dataflow.sdf import SDFGraph
from repro.engine.policies import StaticOrder


@dataclass
class SequentialProgram:
    """The rendered sequential program and its size metrics."""

    text: str
    schedule: List[str]
    statement_count: int
    array_declarations: int

    @property
    def schedule_length(self) -> int:
        return len(self.schedule)


def generate_sequential_program(graph: SDFGraph) -> SequentialProgram:
    """Render the explicit sequential program for one iteration of *graph*.

    Every actor firing becomes one function-call statement whose arguments
    name the array slices read and written (the Fig. 2b style); the loop-while
    wrapper repeats the iteration indefinitely.
    """
    deadlock = check_deadlock(graph)
    if not deadlock.deadlock_free:
        raise ValueError(f"graph {graph.name!r} deadlocks; no sequential schedule exists")
    schedule = deadlock.schedule
    q = repetition_vector(graph)

    # Array capacity per edge: tokens moved per iteration plus initial tokens.
    capacities: Dict[str, int] = {}
    for name, edge in graph.edges.items():
        capacities[name] = q[edge.producer] * edge.production + edge.initial_tokens

    lines: List[str] = []
    declarations = 0
    for name, capacity in capacities.items():
        lines.append(f"int {name.replace('.', '_')}[{capacity}];")
        declarations += 1
    for name, edge in graph.edges.items():
        if edge.initial_tokens:
            lines.append(
                f"init_{name.replace('.', '_')}(out {name.replace('.', '_')}[0:{edge.initial_tokens - 1}]);"
            )

    lines.append("loop{")
    read_position = {name: 0 for name in graph.edges}
    write_position = {name: edge.initial_tokens for name, edge in graph.edges.items()}
    statement_count = 0
    for firing in schedule:
        arguments: List[str] = []
        for edge in graph.out_edges(firing):
            buffer = edge.name.replace(".", "_")
            start = write_position[edge.name] % capacities[edge.name]
            end = (write_position[edge.name] + edge.production - 1) % capacities[edge.name]
            arguments.append(f"out {buffer}[{start}:{end}]")
            write_position[edge.name] += edge.production
        for edge in graph.in_edges(firing):
            buffer = edge.name.replace(".", "_")
            start = read_position[edge.name] % capacities[edge.name]
            end = (read_position[edge.name] + edge.consumption - 1) % capacities[edge.name]
            arguments.append(f"{buffer}[{start}:{end}]")
            read_position[edge.name] += edge.consumption
        lines.append(f"  {firing}({', '.join(arguments)});")
        statement_count += 1
    lines.append("} while(1);")

    return SequentialProgram(
        text="\n".join(lines),
        schedule=schedule,
        statement_count=statement_count,
        array_declarations=declarations,
    )


def static_order_policy(graph: SDFGraph, *, cyclic: bool = True) -> StaticOrder:
    """The explicit sequential schedule of *graph* as a scheduler policy.

    Executing the graph's tasks under the returned
    :class:`~repro.engine.policies.StaticOrder` policy (see
    :func:`repro.engine.synthetic.tasks_from_sdf` and
    :func:`repro.engine.dispatcher.run_tasks`) reproduces firing for firing
    the program :func:`generate_sequential_program` renders -- the Fig. 2b
    baseline as a plug-in of the engine instead of a parallel code path.
    Raises ``ValueError`` when the graph deadlocks (no schedule exists).
    """
    deadlock = check_deadlock(graph)
    if not deadlock.deadlock_free:
        raise ValueError(f"graph {graph.name!r} deadlocks; no static-order policy exists")
    return StaticOrder(deadlock.schedule, cyclic=cyclic)


def rate_conversion_graph(produce: int, consume: int, *, initial_factor: int = 2) -> SDFGraph:
    """A two-actor cyclic rate converter (the Fig. 2a shape) with arbitrary
    production/consumption counts; the initial tokens are chosen large enough
    for deadlock freedom (``initial_factor`` times the larger count)."""
    graph = SDFGraph(f"conv_{produce}_{consume}")
    graph.add_actor("tf", firing_duration=1)
    graph.add_actor("tg", firing_duration=1)
    graph.add_edge("bx", "tf", "tg", production=produce, consumption=consume)
    graph.add_edge(
        "by",
        "tg",
        "tf",
        production=consume,
        consumption=produce,
        initial_tokens=initial_factor * max(produce, consume),
    )
    return graph


@dataclass
class ScheduleGrowthRow:
    """One row of the schedule-growth comparison."""

    produce: int
    consume: int
    schedule_length: int
    sequential_statements: int
    oil_statements: int

    @property
    def growth_factor(self) -> float:
        return self.sequential_statements / max(self.oil_statements, 1)


def schedule_growth(rate_pairs: List[Tuple[int, int]]) -> List[ScheduleGrowthRow]:
    """Schedule length of the sequential formulation vs. the (constant) OIL
    formulation for a family of rate-conversion factors."""
    rows: List[ScheduleGrowthRow] = []
    for produce, consume in rate_pairs:
        graph = rate_conversion_graph(produce, consume)
        program = generate_sequential_program(graph)
        # The OIL formulation always needs exactly one call per task plus the
        # init statement, independent of the rates.
        rows.append(
            ScheduleGrowthRow(
                produce=produce,
                consume=consume,
                schedule_length=program.schedule_length,
                sequential_statements=program.statement_count + 1,
                oil_statements=3,
            )
        )
    return rows
