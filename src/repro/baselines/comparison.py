"""Side-by-side comparison of the CTA analysis and the exact SDF baseline.

Builds matching workloads in both formalisms -- an OIL decimation pipeline and
the equivalent SDF graph -- and measures analysis results and analysis cost
for increasing problem sizes.  The scaling benchmark (E9) prints these rows;
the expected shape is the paper's claim: the exact SDF route blows up with the
repetition vector (exponential in the description), the OIL->CTA route stays
polynomial.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.baselines.sdf_exact import ExactAnalysisReport, exact_analysis, multirate_chain
from repro.core.compiler import CompilationResult, compile_program
from repro.util.rational import Rat


def decimation_pipeline_source(stages: int, *, rate: int = 2, base_hz: int = 0) -> str:
    """An OIL program with *stages* cascaded decimate-by-*rate* modules.

    ``base_hz`` (when non-zero) declares a source at that rate and a sink at
    ``base_hz / rate**stages`` so that the analysis has pinned rates; with
    ``base_hz == 0`` the program is left source-less and the analysis computes
    maximal achievable rates instead.
    """
    if stages < 1:
        raise ValueError("at least one stage is required")
    lines: List[str] = []
    for stage in range(stages):
        lines.append(
            f"mod seq Dec{stage}(sample i, out sample o){{\n"
            f"  loop{{ dec{stage}(i:{rate}, out o); }} while(1);\n"
            f"}}\n"
        )
    body: List[str] = []
    fifo_names = [f"s{stage}" for stage in range(stages - 1)]
    if fifo_names:
        body.append("  fifo sample " + ", ".join(fifo_names) + ";")
    if base_hz:
        out_hz = base_hz // (rate ** stages)
        body.append(f"  source sample input = capture() @ {base_hz} Hz;")
        body.append(f"  sink sample output = emit() @ {out_hz} Hz;")
    else:
        body.append("  fifo sample input, output;")
        body.append("  Feed(out input) || Drain(output) ||")
    calls = []
    for stage in range(stages):
        inlet = "input" if stage == 0 else f"s{stage - 1}"
        outlet = "output" if stage == stages - 1 else f"s{stage}"
        calls.append(f"  Dec{stage}({inlet}, out {outlet})")
    body.append(" ||\n".join(calls))
    if base_hz:
        lines.append("mod par {\n" + "\n".join(body) + "\n}\n")
    else:
        lines.append(
            "mod seq Feed(out sample o){ loop{ feed(out o); } while(1); }\n"
            "mod seq Drain(sample i){ loop{ drain(i); } while(1); }\n"
        )
        lines.append("mod par {\n" + "\n".join(body) + "\n}\n")
    return "\n".join(lines)


@dataclass
class ComparisonRow:
    """One row of the CTA vs exact-SDF scaling comparison."""

    stages: int
    rate: int
    #: CTA route
    cta_ports: int
    cta_connections: int
    cta_wall_seconds: float
    cta_consistent: bool
    cta_total_capacity: Optional[int]
    #: exact SDF route
    sdf_repetition_sum: int
    sdf_hsdf_actors: int
    sdf_wall_seconds: float

    @property
    def wall_ratio(self) -> float:
        if self.cta_wall_seconds == 0:
            return float("inf")
        return self.sdf_wall_seconds / self.cta_wall_seconds


def compare_scaling(
    stage_counts: List[int],
    *,
    rate: int = 2,
    base_hz: int = 1 << 16,
    run_statespace: bool = False,
    size_buffers: bool = True,
) -> List[ComparisonRow]:
    """Run both analyses on matched decimation cascades of growing depth."""
    rows: List[ComparisonRow] = []
    for stages in stage_counts:
        wcets = {f"dec{stage}": Fraction(1, 4 * base_hz) * (rate ** stage) for stage in range(stages)}
        source = decimation_pipeline_source(stages, rate=rate, base_hz=base_hz)

        start = time.perf_counter()
        result = compile_program(source, function_wcets=wcets)
        consistency = result.check_consistency(assume_infinite_unsized=True)
        total_capacity: Optional[int] = None
        if size_buffers and consistency.consistent:
            sizing = result.size_buffers()
            total_capacity = sizing.total_capacity
        cta_wall = time.perf_counter() - start

        graph = multirate_chain(stages, rate=rate)
        exact = exact_analysis(graph, run_statespace=run_statespace)

        rows.append(
            ComparisonRow(
                stages=stages,
                rate=rate,
                cta_ports=len(result.model.all_ports()),
                cta_connections=len(result.model.all_connections()),
                cta_wall_seconds=cta_wall,
                cta_consistent=consistency.consistent,
                cta_total_capacity=total_capacity,
                sdf_repetition_sum=exact.repetition_sum,
                sdf_hsdf_actors=exact.hsdf_actors,
                sdf_wall_seconds=exact.wall_seconds,
            )
        )
    return rows


def format_comparison(rows: List[ComparisonRow]) -> str:
    """Render the comparison rows as an aligned text table."""
    header = (
        f"{'stages':>6} {'rate':>4} {'CTA ports':>9} {'CTA conn':>8} {'CTA time[s]':>11} "
        f"{'CTA caps':>8} {'q-sum':>6} {'HSDF actors':>11} {'SDF time[s]':>11}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        caps = "-" if row.cta_total_capacity is None else str(row.cta_total_capacity)
        lines.append(
            f"{row.stages:>6} {row.rate:>4} {row.cta_ports:>9} {row.cta_connections:>8} "
            f"{row.cta_wall_seconds:>11.4f} {caps:>8} {row.sdf_repetition_sum:>6} "
            f"{row.sdf_hsdf_actors:>11} {row.sdf_wall_seconds:>11.4f}"
        )
    return "\n".join(lines)
