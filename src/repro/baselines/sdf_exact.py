"""Baseline: exact SDF analysis (exponential in the problem size).

The related-work section of the paper points out that exact temporal analysis
of SDF models (the StreamIt / state-space route) is decidable but has an
exponential time complexity in the size of the *description*, because the
analysis has to expand multi-rate graphs into their homogeneous equivalent or
explore the token state space.  The CTA analysis of OIL programs avoids this
by abstracting to periodic rates and stays polynomial.

This module packages the exact analyses of :mod:`repro.dataflow` into a
baseline with cost accounting (expansion sizes, state-space sizes and wall
clock) so the scaling benchmark can put both approaches side by side on the
same workloads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional

from repro.dataflow.analysis import repetition_vector
from repro.dataflow.hsdf import expansion_statistics, to_hsdf
from repro.dataflow.mcr import sdf_throughput
from repro.dataflow.sdf import SDFGraph
from repro.dataflow.statespace import self_timed_statespace
from repro.util.rational import Rat


@dataclass
class ExactAnalysisReport:
    """Result and cost of the exact SDF analysis of one graph."""

    graph_name: str
    actors: int
    edges: int
    repetition_sum: int
    hsdf_actors: int
    hsdf_edges: int
    iteration_period: Optional[Rat]
    statespace_period: Optional[Rat]
    statespace_events: int
    wall_seconds: float


def exact_analysis(graph: SDFGraph, *, run_statespace: bool = True) -> ExactAnalysisReport:
    """Run the HSDF/MCR analysis (and optionally the self-timed state-space
    exploration) on *graph* and report results plus cost metrics."""
    start = time.perf_counter()
    q = repetition_vector(graph)
    stats = expansion_statistics(graph)
    throughput = sdf_throughput(graph)
    statespace_period: Optional[Rat] = None
    events = 0
    if run_statespace:
        statespace = self_timed_statespace(graph)
        statespace_period = statespace.iteration_period
        events = statespace.events_processed
    wall = time.perf_counter() - start
    return ExactAnalysisReport(
        graph_name=graph.name,
        actors=len(graph.actors),
        edges=len(graph.edges),
        repetition_sum=q.total_firings(),
        hsdf_actors=stats.hsdf_actors,
        hsdf_edges=stats.hsdf_edges,
        iteration_period=throughput.iteration_period,
        statespace_period=statespace_period,
        statespace_events=events,
        wall_seconds=wall,
    )


def multirate_chain(stages: int, *, rate: int = 2, firing_duration: Rat = Fraction(1, 1000)) -> SDFGraph:
    """A chain of *stages* actors in which every stage consumes ``rate``
    tokens and produces one (a cascade of decimators) with bounded buffers.

    The repetition vector grows as ``rate**stage``, so the HSDF expansion --
    and with it the exact analysis -- grows exponentially in the number of
    stages while the textual description grows only linearly.  This is the
    workload of the scaling benchmark (E9).
    """
    if stages < 1:
        raise ValueError("at least one stage is required")
    graph = SDFGraph(f"chain{stages}x{rate}")
    graph.add_actor("src", firing_duration=firing_duration)
    previous = "src"
    previous_production = 1
    for stage in range(stages):
        name = f"dec{stage}"
        graph.add_actor(name, firing_duration=firing_duration)
        capacity = 2 * rate
        graph.add_edge(
            f"c{stage}",
            previous,
            name,
            production=previous_production,
            consumption=rate,
            initial_tokens=0,
        )
        graph.add_edge(
            f"c{stage}.space",
            name,
            previous,
            production=rate,
            consumption=previous_production,
            initial_tokens=capacity,
        )
        previous = name
        previous_production = 1
    return graph


def multirate_cycle(actors: int, *, rate: int = 3, firing_duration: Rat = Fraction(1, 1000)) -> SDFGraph:
    """A ring of *actors* in which consecutive actors exchange ``rate`` and 1
    tokens, with enough initial tokens to be live -- a cyclic variant of the
    scaling workload."""
    if actors < 2:
        raise ValueError("at least two actors are required")
    graph = SDFGraph(f"ring{actors}x{rate}")
    for index in range(actors):
        graph.add_actor(f"a{index}", firing_duration=firing_duration)
    for index in range(actors):
        nxt = (index + 1) % actors
        production = rate if index % 2 == 0 else 1
        consumption = 1 if index % 2 == 0 else rate
        graph.add_edge(
            f"e{index}",
            f"a{index}",
            f"a{nxt}",
            production=production,
            consumption=consumption,
            initial_tokens=2 * rate if nxt == 0 else 0,
        )
    return graph
