"""repro -- reproduction of "Hierarchical Programming Language for Modal
Multi-Rate Real-Time Stream Processing Applications" (Geuns, Hausmans,
Bekooij; ICPP Workshops 2014).

The package implements the OIL coordination language, the extraction of task
graphs from its sequential modules, the derivation of a Compositional Temporal
Analysis (CTA) model from complete programs, the polynomial-time consistency /
throughput / buffer-sizing analyses on that model, a discrete-event runtime
that executes OIL applications, the DSP kernels and the PAL video decoder case
study used in the paper's evaluation, and the exact (exponential) dataflow
baselines the paper argues against.

Sub-packages
------------
``repro.lang``      OIL frontend (lexer, parser, AST, semantics, printer)
``repro.graph``     task-graph extraction and circular buffers
``repro.dataflow``  SDF substrate and exact baselines
``repro.cta``       CTA model and polynomial analyses
``repro.core``      the OIL -> CTA compiler (the paper's contribution)
``repro.engine``    pluggable scheduler engine with indexed ready-set dispatch
``repro.runtime``   discrete-event execution of OIL applications
``repro.dsp``       signal-processing kernels for the PAL case study
``repro.apps``      ready-made OIL applications (PAL decoder, rate converter,
                    modal audio pipeline, producer/consumer)
``repro.baselines`` sequential-schedule and exact-SDF baselines
``repro.util``      rational arithmetic, units, constraint-graph algorithms
"""

__version__ = "1.0.0"

__all__ = [
    "lang",
    "graph",
    "dataflow",
    "cta",
    "core",
    "engine",
    "runtime",
    "dsp",
    "apps",
    "baselines",
    "util",
]
