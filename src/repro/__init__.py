"""repro -- reproduction of "Hierarchical Programming Language for Modal
Multi-Rate Real-Time Stream Processing Applications" (Geuns, Hausmans,
Bekooij; ICPP Workshops 2014).

The package implements the OIL coordination language, the extraction of task
graphs from its sequential modules, the derivation of a Compositional Temporal
Analysis (CTA) model from complete programs, the polynomial-time consistency /
throughput / buffer-sizing analyses on that model, a discrete-event runtime
that executes OIL applications, the DSP kernels and the PAL video decoder case
study used in the paper's evaluation, and the exact (exponential) dataflow
baselines the paper argues against.

The front door is :mod:`repro.api`: ``Program.from_source(...)`` /
``Program.from_app(...)`` -> ``.analyze()`` -> ``.run(duration)``, plus the
``Sweep`` subsystem for batched parameter-grid scenario studies.
:class:`Program` and :class:`Sweep` are re-exported here::

    from repro import Program, Sweep

Sub-packages
------------
``repro.api``       the unified facade (Program -> Analysis -> RunResult)
                    and the batched Sweep runner
``repro.service``   the sweep service: content-addressed result store,
                    resumable checkpoints, shardable grids, job spool and
                    the ``python -m repro sweep`` CLI
``repro.rules``     pre-flight rule framework (structured violations with
                    source spans) and the ``python -m repro check`` CLI
``repro.lang``      OIL frontend (lexer, parser, AST, semantics, printer)
``repro.graph``     task-graph extraction and circular buffers
``repro.dataflow``  SDF substrate and exact baselines
``repro.cta``       CTA model and polynomial analyses
``repro.core``      the OIL -> CTA compiler (the paper's contribution)
``repro.engine``    pluggable scheduler engine with indexed ready-set dispatch
``repro.platform``  processors, platforms and platform scheduling policies
                    (preemptive fixed-priority, partitioned heterogeneous)
``repro.runtime``   discrete-event execution of OIL applications
``repro.dsp``       signal-processing kernels for the PAL case study
``repro.apps``      ready-made OIL applications (PAL decoder, rate converter,
                    modal audio pipeline, producer/consumer)
``repro.baselines`` sequential-schedule and exact-SDF baselines
``repro.util``      rational arithmetic, units, constraint-graph algorithms
"""

__version__ = "1.1.0"

__all__ = [
    "api",
    "service",
    "rules",
    "lang",
    "graph",
    "dataflow",
    "cta",
    "core",
    "engine",
    "platform",
    "runtime",
    "dsp",
    "apps",
    "baselines",
    "util",
    "Program",
    "Sweep",
]

#: Facade classes re-exported lazily (PEP 562) so that ``import repro`` stays
#: cheap -- the api package pulls the compiler stack only when first used.
_API_EXPORTS = ("Program", "Sweep", "Analysis", "RunResult", "SweepReport")
#: Rule-framework classes re-exported the same way.
_RULES_EXPORTS = ("Rule", "Violation", "CheckModel", "CheckReport", "register_rule")


def __getattr__(name):
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    if name in _RULES_EXPORTS:
        from repro import rules

        return getattr(rules, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
