"""Graphviz (DOT) export of CTA models.

The paper's Figs. 7-12 draw CTA models as nested rectangles (components) with
ports on their borders and labelled arrows (connections).  This module renders
a :class:`~repro.cta.model.Component` hierarchy to DOT text with clustered
sub-graphs per component so that the derived models can be inspected visually
and compared against the paper's figures.  Rendering to an image requires an
external ``dot`` binary and is out of scope; the textual DOT output is enough
for the reproduction artefacts.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cta.model import Component, PortRef
from repro.util.rational import rational_str


def _port_node_id(ref: PortRef) -> str:
    return "port_" + "_".join(ref.component + (ref.port,)).replace("-", "_").replace(".", "_")


def to_dot(model: Component, *, include_labels: bool = True) -> str:
    """Render *model* as a Graphviz digraph with one cluster per component."""
    lines: List[str] = ["digraph cta {", "  rankdir=LR;", "  node [shape=circle, fontsize=9];"]

    cluster_counter = [0]

    def emit_component(component: Component, indent: str) -> None:
        cluster_counter[0] += 1
        lines.append(f'{indent}subgraph cluster_{cluster_counter[0]} {{')
        lines.append(f'{indent}  label="{component.kind}:{component.name}";')
        base = component.path()
        for port in component.ports.values():
            ref = PortRef(base, port.name)
            attrs = [f'label="{port.name}"']
            if port.fixed_rate is not None:
                attrs.append('color=blue')
            lines.append(f'{indent}  {_port_node_id(ref)} [{", ".join(attrs)}];')
        for child in component.children.values():
            emit_component(child, indent + "  ")
        lines.append(f"{indent}}}")

    emit_component(model, "  ")

    for connection in model.all_connections():
        label_parts: List[str] = []
        if include_labels:
            if connection.epsilon:
                label_parts.append(f"eps={rational_str(connection.epsilon)}")
            if connection.buffer is not None:
                cap = connection.buffer.value
                label_parts.append(f"-{connection.buffer.name}" + (f"={cap}" if cap is not None else ""))
            elif connection.phi:
                label_parts.append(f"phi={rational_str(connection.phi)}")
            if connection.gamma != 1:
                label_parts.append(f"g={rational_str(connection.gamma)}")
        label = ", ".join(label_parts)
        style = {
            "firing": "color=orange",
            "atomic-start": "color=purple",
            "buffer": "color=black",
            "periodicity": "color=gray",
            "latency": "color=red, style=dashed",
        }.get(connection.purpose, "color=black")
        lines.append(
            f'  {_port_node_id(connection.src)} -> {_port_node_id(connection.dst)} '
            f'[label="{label}", {style}];'
        )

    lines.append("}")
    return "\n".join(lines)
