"""Transfer-rate propagation for CTA models.

Every CTA connection relates the actual transfer rates of its two ports by
``r(dst) = gamma * r(src)``.  Consequently all ports that are (weakly)
connected by connections have rates that are fixed rational multiples of one
free *scale* per weakly connected component.  This module computes that
structure:

* the weakly connected *rate components* of a model,
* the relative rate ``rho(p)`` of every port with respect to its component's
  reference port,
* whether the multiplicative constraints are *consistent* around cycles
  (the product of gammas around every cycle must be 1 -- the CTA analogue of
  SDF sample-rate consistency),
* the scale constraints implied by ports with a fixed rate (sources/sinks) and
  by maximum rates ``r_hat``.

The result is the input of the consistency algorithm
(:mod:`repro.cta.consistency`): for a fixed-scale component a single
feasibility check remains; for a free-scale component the maximal feasible
scale is computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cta.model import Component, Connection, Port, PortRef
from repro.util.rational import Rat, rational_str


@dataclass
class RateConflict:
    """Describes a multiplicative rate inconsistency found during propagation."""

    kind: str  # "cycle" or "fixed"
    message: str
    ports: Tuple[PortRef, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind} rate conflict: {self.message}"


@dataclass
class RateComponent:
    """One weakly connected component of the port/connection graph.

    Attributes
    ----------
    index:
        Stable index of the component within the model.
    reference:
        The reference port; all relative rates are expressed w.r.t. it.
    relative_rates:
        ``rho(p)`` such that ``r(p) = rho(p) * scale``.
    fixed_scale:
        The scale value imposed by fixed-rate ports (``None`` if the component
        is free).
    scale_cap:
        Upper bound on the scale implied by the finite maximum port rates
        (``None`` when every port in the component has an unbounded maximum
        rate).
    """

    index: int
    reference: PortRef
    relative_rates: Dict[PortRef, Rat] = field(default_factory=dict)
    fixed_scale: Optional[Rat] = None
    scale_cap: Optional[Rat] = None
    #: port that pinned the fixed scale (for diagnostics)
    fixed_by: Optional[PortRef] = None
    #: port whose maximum rate produces the cap (for diagnostics)
    capped_by: Optional[PortRef] = None

    @property
    def ports(self) -> List[PortRef]:
        return list(self.relative_rates)

    def rate_of(self, port: PortRef, scale: Rat) -> Rat:
        """Actual rate of *port* for a given component scale."""
        return self.relative_rates[port] * scale

    def describe(self) -> str:  # pragma: no cover - cosmetic
        scale = "free" if self.fixed_scale is None else rational_str(self.fixed_scale)
        cap = "inf" if self.scale_cap is None else rational_str(self.scale_cap)
        return (
            f"rate component #{self.index}: {len(self.relative_rates)} ports, "
            f"scale={scale}, cap={cap}, reference={self.reference}"
        )


@dataclass
class RateStructure:
    """The complete rate structure of a model."""

    components: List[RateComponent]
    port_component: Dict[PortRef, int]
    conflicts: List[RateConflict] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        """True when no multiplicative or fixed-rate conflict was found."""
        return not self.conflicts

    def component_of(self, port: PortRef) -> RateComponent:
        return self.components[self.port_component[port]]

    def relative_rate(self, port: PortRef) -> Rat:
        return self.component_of(port).relative_rates[port]

    def port_rate(self, port: PortRef, scales: Sequence[Rat]) -> Rat:
        """Rate of *port* given one scale value per rate component."""
        comp = self.component_of(port)
        return comp.relative_rates[port] * scales[comp.index]


def compute_rate_structure(model: Component) -> RateStructure:
    """Propagate transfer-rate ratios through *model* and return its
    :class:`RateStructure`.

    The propagation is a breadth-first traversal of the undirected port graph
    in which traversing a connection forward multiplies the relative rate by
    ``gamma`` and traversing it backward divides by ``gamma``.  Revisiting a
    port with a different relative rate is a cycle inconsistency (the product
    of gammas around the cycle differs from one); visiting a second fixed-rate
    port whose implied scale differs from the first is a fixed-rate conflict.
    """
    ports: Dict[PortRef, Port] = model.all_ports()
    connections: List[Connection] = model.all_connections()

    # Validate connection endpoints eagerly so that construction mistakes show
    # up here with a clear message rather than as a KeyError later.
    for connection in connections:
        for endpoint in (connection.src, connection.dst):
            if endpoint not in ports:
                raise ValueError(
                    f"connection {connection.describe()} references unknown port {endpoint}"
                )

    adjacency: Dict[PortRef, List[Tuple[PortRef, Rat, Connection]]] = {p: [] for p in ports}
    for connection in connections:
        # forward: r(dst) = gamma * r(src)
        adjacency[connection.src].append((connection.dst, connection.gamma, connection))
        # backward: r(src) = r(dst) / gamma
        adjacency[connection.dst].append((connection.src, Fraction(1) / connection.gamma, connection))

    components: List[RateComponent] = []
    port_component: Dict[PortRef, int] = {}
    conflicts: List[RateConflict] = []

    for start in ports:
        if start in port_component:
            continue
        index = len(components)
        component = RateComponent(index=index, reference=start)
        components.append(component)

        queue: List[PortRef] = [start]
        component.relative_rates[start] = Fraction(1)
        port_component[start] = index

        while queue:
            current = queue.pop()
            current_rho = component.relative_rates[current]
            for neighbour, factor, connection in adjacency[current]:
                expected = current_rho * factor
                if neighbour in component.relative_rates:
                    if component.relative_rates[neighbour] != expected:
                        conflicts.append(
                            RateConflict(
                                kind="cycle",
                                message=(
                                    f"transfer-rate ratios are inconsistent around a cycle through "
                                    f"{neighbour}: relative rate {rational_str(component.relative_rates[neighbour])} "
                                    f"vs {rational_str(expected)} via connection {connection.describe()}"
                                ),
                                ports=(current, neighbour),
                            )
                        )
                    continue
                component.relative_rates[neighbour] = expected
                port_component[neighbour] = index
                queue.append(neighbour)

        # Fixed rates pin the component scale; all fixed-rate ports must agree.
        for port_ref, rho in component.relative_rates.items():
            port = ports[port_ref]
            if port.fixed_rate is not None:
                implied_scale = port.fixed_rate / rho
                if component.fixed_scale is None:
                    component.fixed_scale = implied_scale
                    component.fixed_by = port_ref
                elif component.fixed_scale != implied_scale:
                    conflicts.append(
                        RateConflict(
                            kind="fixed",
                            message=(
                                f"fixed rates of {component.fixed_by} and {port_ref} disagree: "
                                f"scales {rational_str(component.fixed_scale)} vs "
                                f"{rational_str(implied_scale)}"
                            ),
                            ports=(component.fixed_by, port_ref),
                        )
                    )

        # Maximum rates cap the component scale.
        for port_ref, rho in component.relative_rates.items():
            port = ports[port_ref]
            if port.max_rate is not None:
                cap = port.max_rate / rho
                if component.scale_cap is None or cap < component.scale_cap:
                    component.scale_cap = cap
                    component.capped_by = port_ref

        # A fixed scale above the cap is itself a conflict (the source/sink is
        # faster than some component on its path can ever be).
        if (
            component.fixed_scale is not None
            and component.scale_cap is not None
            and component.fixed_scale > component.scale_cap
        ):
            conflicts.append(
                RateConflict(
                    kind="fixed",
                    message=(
                        f"required scale {rational_str(component.fixed_scale)} (from {component.fixed_by}) "
                        f"exceeds the maximum-rate cap {rational_str(component.scale_cap)} "
                        f"(from {component.capped_by})"
                    ),
                    ports=tuple(x for x in (component.fixed_by, component.capped_by) if x is not None),
                )
            )

    return RateStructure(components=components, port_component=port_component, conflicts=conflicts)
