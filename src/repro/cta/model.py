"""Data model of the Compositional Temporal Analysis (CTA) model.

A CTA model (Hausmans et al., EMSOFT 2012; Sec. V-A of the reproduced paper)
is a graph of *components* and directed *connections*:

* a component ``w = (P, r_hat, C, gamma, epsilon, phi)`` has a set of ports
  ``P``; every port can transfer data (events) at a maximum rate
  ``r_hat : P -> R+`` (possibly unbounded),
* a connection ``c = (p, q)`` directed from port ``p`` to port ``q`` carries a
  constant delay ``epsilon(c)``, a rate-dependent delay ``phi(c)`` and a
  transfer-rate ratio ``gamma(c)``.  The actual rates satisfy
  ``r(q) = gamma(c) * r(p)`` and the time data is delayed over the connection
  is ``Delta(c) = epsilon(c) + phi(c) / r(p)``,
* a composition of components and connections is again a component.

This module defines the (hierarchical) data structures; the analysis
algorithms live in :mod:`repro.cta.consistency`, :mod:`repro.cta.rates`,
:mod:`repro.cta.buffer_sizing` and :mod:`repro.cta.latency`.

Connections may reference a named :class:`BufferParameter` instead of a fixed
``phi``; the buffer-sizing algorithm determines values for these parameters.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.util.rational import Rat, RationalLike, as_rational, rational_str
from repro.util.validation import check_identifier, require


# --------------------------------------------------------------------------
# Ports
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class PortRef:
    """A fully qualified reference to a port: hierarchical component path plus
    port name, e.g. ``("Splitter", "SRC_A", "loop0")`` / ``"in"``.

    Port references are hashable and are the nodes of the flattened analysis
    graph.
    """

    component: Tuple[str, ...]
    port: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "/".join(self.component + (self.port,))

    @property
    def component_path(self) -> str:
        return "/".join(self.component)


@dataclass
class Port:
    """A port of a CTA component.

    Parameters
    ----------
    name:
        Port name, unique within its component.
    max_rate:
        Maximum transfer rate ``r_hat(p)`` in events per second, or ``None``
        for an unbounded rate (used for the modelling-artifact ports of module
        components, Sec. V-C).
    fixed_rate:
        If set, the actual transfer rate of the port is pinned to this value
        (used for the data ports of periodic sources and sinks).
    direction:
        ``"in"``, ``"out"`` or ``"none"`` -- purely documentary; the analysis
        does not depend on it.
    """

    name: str
    max_rate: Optional[Rat] = None
    fixed_rate: Optional[Rat] = None
    direction: str = "none"

    def __post_init__(self) -> None:
        check_identifier(self.name, "port name")
        if self.max_rate is not None:
            self.max_rate = as_rational(self.max_rate)
            require(self.max_rate > 0, f"max_rate of port {self.name!r} must be positive")
        if self.fixed_rate is not None:
            self.fixed_rate = as_rational(self.fixed_rate)
            require(self.fixed_rate > 0, f"fixed_rate of port {self.name!r} must be positive")
        if self.max_rate is not None and self.fixed_rate is not None:
            require(
                self.fixed_rate <= self.max_rate,
                f"fixed_rate of port {self.name!r} exceeds its maximum rate",
            )


# --------------------------------------------------------------------------
# Buffer parameters
# --------------------------------------------------------------------------

_buffer_counter = itertools.count()


@dataclass
class BufferParameter:
    """A symbolic buffer capacity ``delta`` (in tokens / container locations).

    A connection whose rate-dependent delay models a buffer capacity carries
    ``phi = -delta`` (Sec. V-B.1: "if there are delta initial tokens the actor
    can start delta/r earlier, therefore on the corresponding CTA connection
    there is a delay of -delta/r").  The buffer-sizing algorithm assigns a
    sufficient integral value to every :class:`BufferParameter` of a model.

    ``minimum`` is the smallest admissible capacity (at least the number of
    tokens a single firing of the producer or consumer needs, otherwise the
    implementation deadlocks regardless of timing); ``value`` is the currently
    assigned capacity (``None`` while unsized).
    """

    name: str
    minimum: int = 1
    value: Optional[int] = None
    uid: int = field(default_factory=lambda: next(_buffer_counter))

    def __post_init__(self) -> None:
        check_identifier(self.name, "buffer name")
        require(self.minimum >= 0, "buffer minimum capacity must be non-negative")
        if self.value is not None:
            require(self.value >= self.minimum, "buffer capacity below its minimum")

    def resolved(self) -> int:
        """Return the assigned capacity, raising if the buffer is unsized."""
        if self.value is None:
            raise ValueError(f"buffer parameter {self.name!r} has not been sized yet")
        return self.value

    def __hash__(self) -> int:
        return hash(self.uid)


# --------------------------------------------------------------------------
# Connections
# --------------------------------------------------------------------------

@dataclass
class Connection:
    """A directed CTA connection from port ``src`` to port ``dst``.

    The delay of the connection is ``Delta(c) = epsilon + phi_effective / r(src)``
    where ``phi_effective`` is ``phi`` plus ``-delta`` for every attached
    buffer parameter (scaled by ``buffer_scale``).

    Parameters
    ----------
    src, dst:
        Fully qualified port references.
    epsilon:
        Constant delay in seconds (may be negative: latency constraints and
        periodicity back edges use negative constant delays).
    phi:
        Rate-dependent delay coefficient in *events*; the contribution to the
        delay is ``phi / r(src)`` seconds.  May be negative.
    gamma:
        Transfer-rate ratio: ``r(dst) = gamma * r(src)``.  Must be positive.
    buffer:
        Optional :class:`BufferParameter`; contributes ``-delta * buffer_scale``
        to ``phi`` once sized.
    buffer_scale:
        Multiplier applied to the buffer capacity (normally 1).
    purpose:
        Free-form tag used in reports and figures, e.g. ``"firing"``,
        ``"atomic-start"``, ``"buffer"``, ``"periodicity"``, ``"latency"``.
    """

    src: PortRef
    dst: PortRef
    epsilon: Rat = Fraction(0)
    phi: Rat = Fraction(0)
    gamma: Rat = Fraction(1)
    buffer: Optional[BufferParameter] = None
    buffer_scale: Rat = Fraction(1)
    purpose: str = "generic"
    label: Optional[str] = None

    def __post_init__(self) -> None:
        self.epsilon = as_rational(self.epsilon)
        self.phi = as_rational(self.phi)
        self.gamma = as_rational(self.gamma)
        self.buffer_scale = as_rational(self.buffer_scale)
        require(self.gamma > 0, "transfer rate ratio gamma must be positive")

    # -- derived quantities --------------------------------------------------
    def effective_phi(self) -> Rat:
        """The rate-dependent delay coefficient with any buffer capacity folded in."""
        phi = self.phi
        if self.buffer is not None:
            phi = phi - self.buffer_scale * Fraction(self.buffer.resolved())
        return phi

    def delay(self, src_rate: Rat) -> Rat:
        """The delay ``Delta(c)`` in seconds for a given source-port rate."""
        src_rate = as_rational(src_rate)
        require(src_rate > 0, "source port rate must be positive")
        return self.epsilon + self.effective_phi() / src_rate

    def describe(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{self.src} -> {self.dst}"]
        if self.epsilon:
            parts.append(f"eps={rational_str(self.epsilon)}s")
        if self.phi:
            parts.append(f"phi={rational_str(self.phi)}")
        if self.buffer is not None:
            parts.append(f"buffer={self.buffer.name}")
        if self.gamma != 1:
            parts.append(f"gamma={rational_str(self.gamma)}")
        parts.append(f"[{self.purpose}]")
        return " ".join(parts)


# --------------------------------------------------------------------------
# Components
# --------------------------------------------------------------------------

class Component:
    """A (possibly hierarchical) CTA component.

    A component owns its ports, a set of sub-components and the connections
    declared at its level.  Connections may reference ports of this component
    or ports of any (transitively nested) sub-component.

    The composition of components and connections is again a component: the
    :class:`CTAModel` root is itself just a component with no parent.
    """

    def __init__(self, name: str, *, kind: str = "component") -> None:
        check_identifier(name, "component name")
        self.name = name
        #: free-form kind tag: "task", "while-loop", "module", "source",
        #: "sink", "stream-access", "black-box", ...
        self.kind = kind
        self._ports: Dict[str, Port] = {}
        self._children: Dict[str, "Component"] = {}
        self._connections: List[Connection] = []
        self.parent: Optional["Component"] = None
        #: arbitrary metadata for reporting (firing duration, rates, ...)
        self.metadata: Dict[str, object] = {}

    # ------------------------------------------------------------------ build
    def add_port(
        self,
        name: str,
        *,
        max_rate: Optional[RationalLike] = None,
        fixed_rate: Optional[RationalLike] = None,
        direction: str = "none",
    ) -> Port:
        """Declare a port on this component and return it."""
        require(name not in self._ports, f"duplicate port {name!r} on component {self.name!r}")
        port = Port(
            name,
            max_rate=None if max_rate is None else as_rational(max_rate),
            fixed_rate=None if fixed_rate is None else as_rational(fixed_rate),
            direction=direction,
        )
        self._ports[name] = port
        return port

    def add_component(self, child: "Component") -> "Component":
        """Nest *child* inside this component and return it."""
        require(
            child.name not in self._children,
            f"duplicate sub-component {child.name!r} in {self.name!r}",
        )
        require(child.parent is None, f"component {child.name!r} already has a parent")
        child.parent = self
        self._children[child.name] = child
        return child

    def new_component(self, name: str, *, kind: str = "component") -> "Component":
        """Create and nest a fresh sub-component."""
        return self.add_component(Component(name, kind=kind))

    def connect(
        self,
        src: Union[PortRef, Tuple],
        dst: Union[PortRef, Tuple],
        *,
        epsilon: RationalLike = 0,
        phi: RationalLike = 0,
        gamma: RationalLike = 1,
        buffer: Optional[BufferParameter] = None,
        buffer_scale: RationalLike = 1,
        purpose: str = "generic",
        label: Optional[str] = None,
    ) -> Connection:
        """Add a connection declared at this component's level.

        ``src`` and ``dst`` are :class:`PortRef` objects or tuples accepted by
        :meth:`port_ref`.
        """
        connection = Connection(
            self._as_ref(src),
            self._as_ref(dst),
            epsilon=as_rational(epsilon),
            phi=as_rational(phi),
            gamma=as_rational(gamma),
            buffer=buffer,
            buffer_scale=as_rational(buffer_scale),
            purpose=purpose,
            label=label,
        )
        self._connections.append(connection)
        return connection

    def _as_ref(self, ref: Union[PortRef, Tuple]) -> PortRef:
        if isinstance(ref, PortRef):
            return ref
        if isinstance(ref, tuple) and len(ref) == 2 and isinstance(ref[0], Component):
            return ref[0].port_ref(ref[1])
        if isinstance(ref, tuple) and all(isinstance(x, str) for x in ref):
            return PortRef(tuple(ref[:-1]), ref[-1])
        raise TypeError(f"cannot interpret {ref!r} as a port reference")

    # -------------------------------------------------------------- accessors
    @property
    def ports(self) -> Mapping[str, Port]:
        return dict(self._ports)

    @property
    def children(self) -> Mapping[str, "Component"]:
        return dict(self._children)

    @property
    def connections(self) -> Sequence[Connection]:
        return list(self._connections)

    def path(self) -> Tuple[str, ...]:
        """The hierarchical path of this component from the root (inclusive)."""
        if self.parent is None:
            return (self.name,)
        return self.parent.path() + (self.name,)

    def port_ref(self, port_name: str) -> PortRef:
        """A fully qualified reference to one of this component's ports."""
        require(
            port_name in self._ports,
            f"component {self.name!r} has no port {port_name!r} "
            f"(ports: {sorted(self._ports)})",
        )
        return PortRef(self.path(), port_name)

    def child(self, name: str) -> "Component":
        """Return the direct sub-component called *name*."""
        require(name in self._children, f"component {self.name!r} has no child {name!r}")
        return self._children[name]

    def find(self, path: Sequence[str]) -> "Component":
        """Resolve a descendant component by relative path."""
        node: Component = self
        for part in path:
            node = node.child(part)
        return node

    # -------------------------------------------------------------- traversal
    def walk(self) -> Iterator["Component"]:
        """Yield this component and every descendant (pre-order)."""
        yield self
        for child in self._children.values():
            yield from child.walk()

    def all_connections(self) -> List[Connection]:
        """All connections declared at this level or in any descendant."""
        result: List[Connection] = []
        for component in self.walk():
            result.extend(component._connections)
        return result

    def all_ports(self) -> Dict[PortRef, Port]:
        """All ports of this component and every descendant, fully qualified."""
        result: Dict[PortRef, Port] = {}
        for component in self.walk():
            base = component.path()
            for port in component._ports.values():
                result[PortRef(base, port.name)] = port
        return result

    def all_buffers(self) -> List[BufferParameter]:
        """All distinct buffer parameters referenced by connections in scope."""
        seen: Dict[int, BufferParameter] = {}
        for connection in self.all_connections():
            if connection.buffer is not None:
                seen[connection.buffer.uid] = connection.buffer
        return sorted(seen.values(), key=lambda b: b.uid)

    # ------------------------------------------------------------- reporting
    def summary(self) -> str:
        """A human readable multi-line summary of the component tree."""
        lines: List[str] = []

        def visit(component: "Component", indent: int) -> None:
            pad = "  " * indent
            lines.append(f"{pad}{component.kind} {component.name} "
                         f"(ports: {len(component._ports)}, connections: {len(component._connections)})")
            for child in component._children.values():
                visit(child, indent + 1)

        visit(self, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Component {self.name!r} kind={self.kind!r} ports={len(self._ports)} children={len(self._children)}>"


class CTAModel(Component):
    """The root of a CTA model.

    A :class:`CTAModel` is simply a component with convenience constructors
    and the entry points the analysis algorithms operate on.  All ports and
    connections of the complete hierarchy are reachable through
    :meth:`Component.all_ports` and :meth:`Component.all_connections`.
    """

    def __init__(self, name: str = "model") -> None:
        super().__init__(name, kind="model")

    # The analysis algorithms (consistency, rates, buffer sizing, latency)
    # are implemented as free functions in their respective modules to keep
    # the data model import-light; these thin methods exist for discoverability.

    def check_consistency(self, **kwargs):
        """Run the consistency analysis (see :func:`repro.cta.consistency.check_consistency`)."""
        from repro.cta.consistency import check_consistency

        return check_consistency(self, **kwargs)

    def maximal_rates(self, **kwargs):
        """Compute maximal achievable port rates (see :func:`repro.cta.consistency.maximal_rates`)."""
        from repro.cta.consistency import maximal_rates

        return maximal_rates(self, **kwargs)

    def size_buffers(self, **kwargs):
        """Determine sufficient buffer capacities (see :func:`repro.cta.buffer_sizing.size_buffers`)."""
        from repro.cta.buffer_sizing import size_buffers

        return size_buffers(self, **kwargs)
