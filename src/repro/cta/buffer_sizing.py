"""Buffer-capacity sizing on CTA models.

Buffer capacities appear in the CTA model as rate-dependent delays of
``-delta / r`` on the connection that models giving space back to the producer
(Sec. V-B.1 and V-C).  A capacity that is too small creates a cycle with
positive total delay: the producer has to wait for space longer than the
required period allows, so data arrives too late -- the model is inconsistent.

This module determines *sufficient* capacities so that the model is consistent
at the required rates, using only polynomially many Bellman-Ford runs:

1. start every unsized buffer at its structural minimum,
2. while the delay graph of a rate component (at its required scale) has a
   positive cycle, pick the buffer connection on the witness cycle that needs
   the fewest additional tokens to neutralise the cycle and enlarge it by
   exactly that amount (every iteration eliminates at least the witness
   cycle; capacities only grow and are bounded by the final sizes),
3. optionally run a minimisation pass that shrinks each buffer in turn with a
   binary search while preserving consistency.

The procedure mirrors the paper's claim that "the CTA model can be used to
determine buffer sizes such that throughput and latency constraints can be
met" with polynomial-time algorithms.  Latency-constraint connections are part
of the delay graph, so capacities computed here also respect latency
constraints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.cta.consistency import (
    ConsistencyResult,
    _build_graph,
    _delay_evaluator,
    _prepare_edges,
    check_consistency,
)
from repro.cta.model import BufferParameter, Component, Connection, PortRef
from repro.cta.rates import compute_rate_structure
from repro.util.rational import Rat, rational_str


class BufferSizingError(ValueError):
    """Raised when no finite buffer capacities can satisfy the constraints."""


@dataclass
class BufferSizingResult:
    """Outcome of the buffer-sizing algorithm."""

    #: buffer name -> assigned capacity (tokens)
    capacities: Dict[str, int]
    #: the consistency result of the model with the assigned capacities
    consistency: ConsistencyResult
    #: number of enlargement iterations performed
    iterations: int
    #: whether the minimisation pass ran
    minimized: bool

    @property
    def total_capacity(self) -> int:
        return sum(self.capacities.values())

    def explain(self) -> str:
        lines = [f"buffer sizing: {len(self.capacities)} buffers, total {self.total_capacity} tokens"]
        for name, value in sorted(self.capacities.items()):
            lines.append(f"  {name}: {value}")
        lines.append(self.consistency.explain())
        return "\n".join(lines)


def size_buffers(
    model: Component,
    *,
    target_rates: Optional[Dict[PortRef, Rat]] = None,
    minimize: bool = True,
    max_iterations: int = 10000,
) -> BufferSizingResult:
    """Determine sufficient buffer capacities for *model*.

    Rate components pinned by sources/sinks are sized for their required
    rates.  Free rate components are sized for the rate implied by
    *target_rates* if one of their ports appears there; otherwise their
    buffers keep their structural minimum (a free component's maximal
    achievable rate simply adapts to the capacity).

    Raises
    ------
    BufferSizingError
        If the required rates cannot be met by any finite capacities (the
        witness cycle contains no buffer connection, or the rates are
        infeasible even with unbounded buffers).
    """
    target_rates = dict(target_rates or {})

    # Feasibility with unbounded buffers: if the required rates cannot be met
    # even then, no sizing will help -- fail early with the analysis output.
    unbounded = check_consistency(model, assume_infinite_unsized=True)
    if not unbounded.consistent:
        raise BufferSizingError(
            "required rates are infeasible even with unbounded buffers:\n" + unbounded.explain()
        )

    structure = compute_rate_structure(model)

    # Required scale per rate component: the fixed scale imposed by sources /
    # sinks, a caller-supplied target rate, or -- for free components -- the
    # maximal scale achievable with unbounded buffers (so that "size the
    # buffers" without further requirements means "do not lose any of the
    # achievable throughput").
    required_scale: List[Optional[Rat]] = []
    for component in structure.components:
        scale: Optional[Rat] = component.fixed_scale
        for port_ref, rho in component.relative_rates.items():
            if port_ref in target_rates:
                implied = target_rates[port_ref] / rho
                if scale is None or implied > scale:
                    scale = implied
        if scale is None and component.index < len(unbounded.scales):
            scale = unbounded.scales[component.index]
        required_scale.append(scale)

    # Initialise every unsized buffer at its minimum.
    for buffer in model.all_buffers():
        if buffer.value is None:
            buffer.value = max(buffer.minimum, 1)

    iterations = 0
    for _ in range(max_iterations):
        enlarged = _enlarge_once(model, structure, required_scale)
        if not enlarged:
            break
        iterations += 1
    else:
        raise BufferSizingError(
            f"buffer sizing did not converge within {max_iterations} iterations"
        )

    if minimize:
        _minimize(model, structure, required_scale)

    capacities = {buffer.name: buffer.resolved() for buffer in model.all_buffers()}
    consistency = check_consistency(model)
    return BufferSizingResult(
        capacities=capacities,
        consistency=consistency,
        iterations=iterations,
        minimized=minimize,
    )


# --------------------------------------------------------------------------
# internals
# --------------------------------------------------------------------------

def _component_positive_cycle(
    model: Component,
    structure,
    component_index: int,
    scale: Rat,
):
    """Return (cycle_edges, edge->connection-data map) for a positive cycle of
    the given rate component at the given scale, or (None, None) if feasible."""
    per_component = _prepare_edges(model, structure, assume_infinite_unsized=False)
    edges = per_component[component_index]
    graph, _ = _build_graph(edges)
    # Rebuild the label -> data mapping (labels are stable "e{i}").
    label_map = {}
    kept = [d for d in edges if d.phi_effective is not None]
    for i, data in enumerate(edges):
        label_map[f"e{i}"] = data
    theta = Fraction(1) / scale
    result = graph.longest_paths(evaluate=_delay_evaluator(theta))
    if not result.has_positive_cycle:
        return None, None
    return result.cycle, label_map


def _enlarge_once(model: Component, structure, required_scale) -> bool:
    """Run one enlargement step; return True if some buffer was enlarged."""
    for component in structure.components:
        scale = required_scale[component.index]
        if scale is None:
            continue
        cycle, label_map = _component_positive_cycle(model, structure, component.index, scale)
        if cycle is None:
            continue
        theta = Fraction(1) / scale

        # Total positive delay of the cycle at the required rate.
        total = Fraction(0)
        for edge in cycle:
            total += edge.weight + edge.parametric * theta
        assert total > 0

        # Candidate buffer connections on the cycle: adding x tokens to buffer
        # b on edge e reduces the cycle delay by x * buffer_scale * theta / rho_src.
        candidates: List[Tuple[int, BufferParameter]] = []
        for edge in cycle:
            data = label_map.get(edge.label)
            if data is None:
                continue
            connection: Connection = data.connection
            if connection.buffer is None:
                continue
            per_token = connection.buffer_scale * theta / data.rho_src
            if per_token <= 0:
                continue
            needed = total / per_token
            extra = int(math.ceil(needed)) if needed > 0 else 1
            if extra <= 0:
                extra = 1
            candidates.append((extra, connection.buffer))

        if not candidates:
            labels = [edge.label or "?" for edge in cycle]
            raise BufferSizingError(
                "a positive-delay cycle contains no buffer connection; the required rate "
                f"cannot be achieved by enlarging buffers (cycle edges: {labels}, "
                f"excess delay {rational_str(total)} s)"
            )

        extra, buffer = min(candidates, key=lambda item: item[0])
        buffer.value = buffer.resolved() + extra
        return True
    return False


def _feasible_everywhere(model: Component, structure, required_scale) -> bool:
    """True when every rate component with a required scale is feasible."""
    for component in structure.components:
        scale = required_scale[component.index]
        if scale is None:
            continue
        cycle, _ = _component_positive_cycle(model, structure, component.index, scale)
        if cycle is not None:
            return False
    return True


def _minimize(model: Component, structure, required_scale) -> None:
    """Shrink each buffer in turn to the smallest consistent capacity."""
    buffers = model.all_buffers()
    for buffer in buffers:
        lo = max(buffer.minimum, 1)
        hi = buffer.resolved()
        if hi <= lo:
            continue
        # Binary search the smallest feasible capacity for this buffer while
        # keeping all other capacities fixed.
        best = hi
        low, high = lo, hi
        while low <= high:
            mid = (low + high) // 2
            buffer.value = mid
            if _feasible_everywhere(model, structure, required_scale):
                best = mid
                high = mid - 1
            else:
                low = mid + 1
        buffer.value = best
