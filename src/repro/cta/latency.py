"""Latency constraints between sources and sinks.

OIL programs can constrain the start times of sources and sinks with
``start x n ms after y`` and ``start x n ms before y`` (Sec. IV-B).  In the
CTA model such a constraint becomes a single connection between the two
corresponding components whose constant delay encodes the bound
(Sec. V-C, Fig. 10):

* ``start x n after y``  means x must start at least ``n`` after y:
  ``offset(x) >= offset(y) + n`` -- a connection from y to x with constant
  delay ``+n``.
* ``start x n before y`` means y must start within ``n`` after x, i.e.
  ``offset(y) <= offset(x) + n`` which as a longest-path constraint reads
  ``offset(x) >= offset(y) - n`` -- a connection from y to x with constant
  delay ``-n`` (this is the ``-5 ms`` connection of Fig. 10b).

Combining a ``0 ms after`` and a ``0 ms before`` constraint (as the PAL
decoder does between screen and speakers) forces the two start times to be
equal -- the audio/video synchronisation requirement.

This module provides helpers to attach such constraints to a model and to
*verify* start-time differences from the offsets computed by the consistency
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional

from repro.cta.consistency import ConsistencyResult
from repro.cta.model import Component, Connection, PortRef
from repro.util.rational import Rat, as_rational
from repro.util.units import TimeValue


@dataclass(frozen=True)
class LatencyConstraint:
    """A declarative latency constraint between two ports.

    ``kind`` is ``"after"`` (``subject`` starts at least ``bound`` after
    ``reference``) or ``"before"`` (``subject`` starts at most ``bound``
    before... i.e. ``reference`` starts within ``bound`` after ``subject``).
    ``bound`` is in seconds.
    """

    subject: PortRef
    reference: PortRef
    bound: Rat
    kind: str  # "after" | "before"

    def __post_init__(self) -> None:
        if self.kind not in ("after", "before"):
            raise ValueError(f"latency constraint kind must be 'after' or 'before', got {self.kind!r}")


def add_latency_constraint(
    model: Component,
    constraint: LatencyConstraint,
    *,
    label: Optional[str] = None,
) -> Connection:
    """Encode *constraint* as a CTA connection on *model* and return it.

    The connection's transfer-rate ratio is chosen so that it does not alter
    the existing rate structure: it equals the ratio of the two ports'
    relative rates as implied by the rest of the model when both ports are
    already rate-connected; when the two ports are in different rate
    components the constraint also (correctly) ties their rates together with
    ratio 1.
    """
    from repro.cta.rates import compute_rate_structure

    structure = compute_rate_structure(model)
    gamma = Fraction(1)
    src: PortRef
    dst: PortRef
    if constraint.kind == "after":
        # offset(subject) >= offset(reference) + bound : reference -> subject, +bound
        src, dst = constraint.reference, constraint.subject
        epsilon = as_rational(constraint.bound)
    else:
        # offset(reference) >= offset(subject) - bound : subject is the one that
        # starts earlier; encode offset(subject) >= offset(reference) - bound
        # wait: "start subject n before reference" means reference starts at most
        # n after subject: offset(reference) <= offset(subject) + n, i.e.
        # offset(subject) >= offset(reference) - n : reference -> subject, -n.
        src, dst = constraint.reference, constraint.subject
        epsilon = -as_rational(constraint.bound)

    if (
        constraint.subject in structure.port_component
        and constraint.reference in structure.port_component
        and structure.port_component[constraint.subject] == structure.port_component[constraint.reference]
    ):
        rho_src = structure.relative_rate(src)
        rho_dst = structure.relative_rate(dst)
        gamma = rho_dst / rho_src

    return model.connect(
        src,
        dst,
        epsilon=epsilon,
        gamma=gamma,
        purpose="latency",
        label=label or f"latency[{constraint.kind} {constraint.bound}s]",
    )


@dataclass
class LatencyCheck:
    """Result of verifying one latency constraint against computed offsets."""

    constraint: LatencyConstraint
    satisfied: bool
    actual_difference: Optional[Rat]  # offset(subject) - offset(reference), seconds
    message: str


def verify_latency(
    result: ConsistencyResult,
    constraints: List[LatencyConstraint],
) -> List[LatencyCheck]:
    """Check the start-offset differences produced by the consistency analysis
    against a list of latency constraints.

    The offsets of a consistent model are by construction a feasible solution
    of all constraint connections, so constraints that were added to the model
    with :func:`add_latency_constraint` are always satisfied here; this
    function is mainly useful to evaluate constraints that were *not* encoded
    in the model (what-if analysis) and to report actual slack.
    """
    checks: List[LatencyCheck] = []
    for constraint in constraints:
        subject = result.offsets.get(constraint.subject)
        reference = result.offsets.get(constraint.reference)
        if subject is None or reference is None:
            checks.append(
                LatencyCheck(
                    constraint=constraint,
                    satisfied=False,
                    actual_difference=None,
                    message="offsets unavailable (model inconsistent or port unknown)",
                )
            )
            continue
        diff = subject - reference
        if constraint.kind == "after":
            ok = diff >= constraint.bound
            message = (
                f"{constraint.subject} starts {TimeValue(diff)} after {constraint.reference} "
                f"(required: at least {TimeValue(as_rational(constraint.bound))})"
            )
        else:
            # subject starts, reference must start within bound after subject:
            # offset(reference) - offset(subject) <= bound
            ok = (reference - subject) <= constraint.bound
            message = (
                f"{constraint.reference} starts {TimeValue(reference - subject)} after {constraint.subject} "
                f"(required: at most {TimeValue(as_rational(constraint.bound))})"
            )
        checks.append(
            LatencyCheck(
                constraint=constraint,
                satisfied=ok,
                actual_difference=diff,
                message=message,
            )
        )
    return checks


def end_to_end_latency(
    result: ConsistencyResult,
    source_port: PortRef,
    sink_port: PortRef,
) -> Optional[Rat]:
    """Difference between the sink's and the source's start offsets (seconds).

    For a consistent model this is a conservative bound on the time between a
    sample entering at the source and the corresponding processed sample being
    consumed by the sink (the offsets are the latest feasible periodic start
    times compatible with all delays).
    """
    if source_port not in result.offsets or sink_port not in result.offsets:
        return None
    return result.offsets[sink_port] - result.offsets[source_port]
