"""Composition and hiding of CTA components.

Two properties make the CTA model attractive for incremental design
(Sec. I and V-A): composition of components (and connections) is again a
component, and composition is *associative* -- analysing a library module in
isolation and then composing it with the rest of an application gives the
same constraints as analysing everything at once.  *Hiding* removes internal
ports from a component's interface while preserving the temporal constraints
between the remaining ports, which is how black-box library components with
rate/latency interfaces are produced (Fig. 12 hides the loop- and
stream-access components of the PAL decoder).

``compose`` builds a new parent component from existing ones;
``hide`` produces an interface-level abstraction of a component: a new flat
component with only the selected ports, connected by constraint edges whose
(epsilon, phi) pairs are the strongest path constraints between those ports.
Hiding is *conservative*: the hidden component admits exactly the start-time
and rate combinations of the original restricted to the exposed ports as long
as path delays are rate-monotone, which holds for OIL-derived models (all
epsilon on internal paths non-negative).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cta.model import Component, Connection, CTAModel, PortRef
from repro.cta.rates import compute_rate_structure
from repro.util.rational import Rat


def compose(name: str, components: Sequence[Component], *, kind: str = "composition") -> Component:
    """Create a new component named *name* containing *components* as children.

    The children must not already have a parent.  Connections between the
    children can afterwards be added on the returned parent with
    :meth:`~repro.cta.model.Component.connect`.
    """
    parent = Component(name, kind=kind)
    for child in components:
        parent.add_component(child)
    return parent


@dataclass(frozen=True)
class _PathConstraint:
    """Aggregated (epsilon, phi-coefficient) constraint between two ports."""

    epsilon: Rat
    coefficient: Rat  # rate-dependent part expressed w.r.t. the source port's rate


def hide(
    component: Component,
    exposed: Iterable[PortRef],
    *,
    name: Optional[str] = None,
) -> Component:
    """Produce a flat component exposing only *exposed* ports of *component*.

    For every ordered pair of exposed ports the strongest (largest-delay) path
    constraint through the component is computed with a longest-path run per
    source port, treating the rate-dependent delay coefficient symbolically
    (it is accumulated relative to the source port's rate using the known
    relative rates of the traversed ports).  The resulting component has one
    connection per pair that is actually constrained.

    The maximum rates and fixed rates of the exposed ports are copied so that
    the hidden component still advertises its interface rates -- this is how
    black-box components with "interfaces that define maximum rates and
    delays" (Sec. I) are produced.
    """
    exposed = list(exposed)
    all_ports = component.all_ports()
    for port_ref in exposed:
        if port_ref not in all_ports:
            raise ValueError(f"cannot hide: {port_ref} is not a port of {component.name!r}")

    structure = compute_rate_structure(component)
    hidden = Component(name or f"{component.name}_iface", kind="black-box")

    # Create interface ports, preserving rate attributes.
    local_name: Dict[PortRef, str] = {}
    for port_ref in exposed:
        port = all_ports[port_ref]
        base = port_ref.port
        candidate = base
        suffix = 1
        while candidate in hidden.ports:
            candidate = f"{base}_{suffix}"
            suffix += 1
        hidden.add_port(
            candidate,
            max_rate=port.max_rate,
            fixed_rate=port.fixed_rate,
            direction=port.direction,
        )
        local_name[port_ref] = candidate

    # Longest (epsilon, coefficient) paths from each exposed port.  Delays are
    # compared at the component's nominal operating point: the fixed scale if
    # any, otherwise coefficient-dominant ordering at scale 1.
    connections = component.all_connections()
    adjacency: Dict[PortRef, List[Connection]] = {}
    for connection in connections:
        adjacency.setdefault(connection.src, []).append(connection)

    def reference_scale(port_ref: PortRef) -> Rat:
        comp = structure.component_of(port_ref)
        if comp.fixed_scale is not None:
            return comp.fixed_scale
        if comp.scale_cap is not None:
            return comp.scale_cap
        return Fraction(1)

    for src_ref in exposed:
        scale = reference_scale(src_ref)
        theta = Fraction(1) / scale
        # Bellman-Ford longest paths from src_ref, tracking (eps, coeff) pairs
        # ordered by their value at theta.
        best: Dict[PortRef, Tuple[Rat, Rat]] = {src_ref: (Fraction(0), Fraction(0))}
        ports = list(all_ports)
        for _ in range(len(ports)):
            changed = False
            for connection in connections:
                if connection.src not in best:
                    continue
                eps0, coeff0 = best[connection.src]
                rho_src = structure.relative_rate(connection.src)
                coeff = connection.effective_phi() / rho_src if connection.buffer is None or connection.buffer.value is not None else None
                if coeff is None:
                    continue
                eps1 = eps0 + connection.epsilon
                coeff1 = coeff0 + coeff
                value1 = eps1 + coeff1 * theta
                current = best.get(connection.dst)
                if current is None or value1 > current[0] + current[1] * theta:
                    best[connection.dst] = (eps1, coeff1)
                    changed = True
            if not changed:
                break
        for dst_ref in exposed:
            if dst_ref == src_ref or dst_ref not in best:
                continue
            eps, coeff = best[dst_ref]
            if eps == 0 and coeff == 0:
                continue
            rho_src = structure.relative_rate(src_ref)
            rho_dst = structure.relative_rate(dst_ref)
            hidden.connect(
                hidden.port_ref(local_name[src_ref]),
                hidden.port_ref(local_name[dst_ref]),
                epsilon=eps,
                phi=coeff * rho_src,  # re-express w.r.t. the source port's own rate
                gamma=rho_dst / rho_src,
                purpose="hidden",
                label=f"hide[{src_ref}->{dst_ref}]",
            )
    return hidden


def flatten(model: Component, name: Optional[str] = None) -> CTAModel:
    """Create a flat (single-level) copy of *model*.

    Every port of every descendant becomes a port of the new root named by its
    joined path; connections are rewritten accordingly.  Useful for exporting
    and for tests that compare hierarchical and flat analyses.
    """
    flat = CTAModel(name or f"{model.name}_flat")
    mapping: Dict[PortRef, PortRef] = {}
    for port_ref, port in model.all_ports().items():
        flat_name = "__".join(port_ref.component[1:] + (port_ref.port,)) or port_ref.port
        flat.add_port(
            flat_name,
            max_rate=port.max_rate,
            fixed_rate=port.fixed_rate,
            direction=port.direction,
        )
        mapping[port_ref] = flat.port_ref(flat_name)
    for connection in model.all_connections():
        flat.connect(
            mapping[connection.src],
            mapping[connection.dst],
            epsilon=connection.epsilon,
            phi=connection.phi,
            gamma=connection.gamma,
            buffer=connection.buffer,
            buffer_scale=connection.buffer_scale,
            purpose=connection.purpose,
            label=connection.label,
        )
    return flat
