"""Compositional Temporal Analysis (CTA) model and analysis algorithms.

This package implements the temporal analysis substrate the paper builds on
(Hausmans et al., EMSOFT 2012; Sec. V of the reproduced paper):

* :mod:`repro.cta.model` -- components, ports, connections, buffer parameters,
* :mod:`repro.cta.rates` -- transfer-rate propagation and rate consistency,
* :mod:`repro.cta.consistency` -- the polynomial consistency algorithm, which
  also returns the maximal achievable transfer rates and feasible start
  offsets,
* :mod:`repro.cta.buffer_sizing` -- sufficient buffer capacities for required
  throughput / latency,
* :mod:`repro.cta.latency` -- latency constraints between sources and sinks,
* :mod:`repro.cta.composition` -- composition, hiding and flattening,
* :mod:`repro.cta.dot` -- Graphviz export for figure-style inspection.
"""

from repro.cta.model import (
    BufferParameter,
    Component,
    Connection,
    CTAModel,
    Port,
    PortRef,
)
from repro.cta.rates import RateComponent, RateStructure, compute_rate_structure
from repro.cta.consistency import (
    ConsistencyResult,
    Violation,
    check_consistency,
    maximal_rates,
    verify_throughput,
)
from repro.cta.buffer_sizing import BufferSizingError, BufferSizingResult, size_buffers
from repro.cta.latency import (
    LatencyCheck,
    LatencyConstraint,
    add_latency_constraint,
    end_to_end_latency,
    verify_latency,
)
from repro.cta.composition import compose, flatten, hide
from repro.cta.dot import to_dot

__all__ = [
    "BufferParameter",
    "Component",
    "Connection",
    "CTAModel",
    "Port",
    "PortRef",
    "RateComponent",
    "RateStructure",
    "compute_rate_structure",
    "ConsistencyResult",
    "Violation",
    "check_consistency",
    "maximal_rates",
    "verify_throughput",
    "BufferSizingError",
    "BufferSizingResult",
    "size_buffers",
    "LatencyCheck",
    "LatencyConstraint",
    "add_latency_constraint",
    "end_to_end_latency",
    "verify_latency",
    "compose",
    "flatten",
    "hide",
    "to_dot",
]
