"""Consistency analysis for CTA models.

A composition of CTA components is *consistent* when (Sec. V-A):

1. the transfer-rate ratios are multiplicatively consistent and every actual
   transfer rate is at most the corresponding maximum transfer rate, and
2. data arrives in time on every port, i.e. no sequence of connections that
   forms a cycle delays data by a positive amount of time.

Property (1) is computed by :mod:`repro.cta.rates`.  Property (2) is a
difference-constraint feasibility problem on port start offsets: connection
``c = (p, q)`` with delay ``Delta(c) = epsilon(c) + phi(c)/r(p)`` requires
``offset(q) >= offset(p) + Delta(c)``, which is feasible iff the delay graph
has no positive-weight cycle -- a single Bellman-Ford computation once all
rates are known.

Because all ports of a weakly connected *rate component* share one free rate
scale, the consistency question for components that are not pinned by a
source or sink becomes: *what is the maximal scale for which the delay graph
has no positive cycle?*  This is computed with a Newton-style iteration over
Bellman-Ford feasibility checks (each witness cycle yields the exact period at
which it becomes satisfiable), which is polynomial; the paper claims and we
reproduce the polynomial complexity of the CTA analysis.  The iteration is
exact for models in which slowing a component down never hurts feasibility
(all constant cycle delays non-negative), which holds for every model derived
from an OIL program; a bisection fallback covers pathological hand-built
models.

The consistency algorithm returns, next to the binary answer, the maximal
achievable transfer rates of every port (the second output the paper
describes) and feasible start offsets used by the latency analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cta.model import Component, Connection, PortRef
from repro.cta.rates import RateComponent, RateStructure, compute_rate_structure
from repro.util.graphs import ConstraintGraph, Edge
from repro.util.rational import Rat, rational_str


@dataclass
class Violation:
    """A single consistency violation with a human-readable explanation."""

    kind: str  # "rate", "cycle", "cap", "unbounded"
    message: str
    connections: Tuple[Connection, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.message}"


@dataclass
class ConsistencyResult:
    """Outcome of the consistency analysis of a CTA model."""

    consistent: bool
    rate_structure: RateStructure
    #: chosen scale per rate component (None when the component is infeasible)
    scales: List[Optional[Rat]] = field(default_factory=list)
    #: actual (or maximal achievable) transfer rate per port
    port_rates: Dict[PortRef, Rat] = field(default_factory=dict)
    #: feasible start offsets (seconds) per port, empty when inconsistent
    offsets: Dict[PortRef, Rat] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)

    def rate_of(self, port: PortRef) -> Rat:
        """The (maximal achievable) rate of *port*; raises if unknown."""
        if port not in self.port_rates:
            raise KeyError(f"no rate known for port {port}")
        return self.port_rates[port]

    def explain(self) -> str:
        """A human-readable multi-line explanation of the result."""
        lines = [f"consistent: {self.consistent}"]
        for component in self.rate_structure.components:
            scale = self.scales[component.index] if component.index < len(self.scales) else None
            lines.append(
                f"  component #{component.index}: scale="
                + ("infeasible" if scale is None else rational_str(scale))
                + (" (fixed)" if component.fixed_scale is not None else " (maximal achievable)")
            )
        for violation in self.violations:
            lines.append(f"  {violation}")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# Delay graphs
# --------------------------------------------------------------------------

@dataclass
class _DelayEdgeData:
    """Pre-computed per-connection data used while evaluating delays."""

    connection: Connection
    #: phi with the buffer capacity folded in (or None when the buffer is
    #: unsized and treated as unbounded -> the edge is dropped)
    phi_effective: Optional[Rat]
    #: relative rate of the source port within its rate component
    rho_src: Rat


def _prepare_edges(
    model: Component,
    structure: RateStructure,
    *,
    assume_infinite_unsized: bool,
) -> Dict[int, List[_DelayEdgeData]]:
    """Group connections per rate component and fold buffers into phi."""
    per_component: Dict[int, List[_DelayEdgeData]] = {
        comp.index: [] for comp in structure.components
    }
    for connection in model.all_connections():
        comp = structure.component_of(connection.src)
        rho_src = comp.relative_rates[connection.src]
        if connection.buffer is not None and connection.buffer.value is None:
            if assume_infinite_unsized:
                phi_eff: Optional[Rat] = None
            else:
                raise ValueError(
                    f"connection {connection.describe()} references the unsized buffer "
                    f"{connection.buffer.name!r}; size the buffers first or pass "
                    f"assume_infinite_unsized=True"
                )
        else:
            phi_eff = connection.effective_phi()
        per_component[comp.index].append(
            _DelayEdgeData(connection=connection, phi_effective=phi_eff, rho_src=rho_src)
        )
    return per_component


def _build_graph(edges: Sequence[_DelayEdgeData]) -> Tuple[ConstraintGraph, Dict[int, _DelayEdgeData]]:
    """Build the constraint graph for one rate component.

    Edge ``weight`` holds the constant delay epsilon, ``parametric`` holds the
    coefficient of the period scale theta (= phi / rho_src), so the effective
    delay at period scale theta is ``weight + parametric * theta``.
    Connections with an unbounded (unsized, assumed infinite) buffer are
    skipped: an infinite capacity never constrains start times.
    """
    graph = ConstraintGraph()
    index: Dict[int, _DelayEdgeData] = {}
    for i, data in enumerate(edges):
        if data.phi_effective is None:
            continue
        connection = data.connection
        edge = graph.add_edge(
            connection.src,
            connection.dst,
            connection.epsilon,
            parametric=data.phi_effective / data.rho_src,
            label=f"e{i}",
        )
        index[id(edge)] = data
    return graph, index


def _delay_evaluator(theta: Rat):
    """Evaluator computing ``epsilon + (phi/rho) * theta`` for an edge."""

    def evaluate(edge: Edge) -> Rat:
        return edge.weight + edge.parametric * theta

    return evaluate


# --------------------------------------------------------------------------
# Maximal feasible scale of a free rate component
# --------------------------------------------------------------------------

@dataclass
class _ScaleSearchResult:
    feasible: bool
    #: maximal feasible scale; None means "unbounded by delay constraints"
    max_scale: Optional[Rat] = None
    witness: List[Edge] = field(default_factory=list)


def _maximal_scale(graph: ConstraintGraph) -> _ScaleSearchResult:
    """Maximal rate scale for which the delay graph has no positive cycle.

    Works on the period scale ``theta = 1 / scale``: the delay of an edge is
    ``epsilon + coeff * theta`` which is linear in theta, so every cycle
    constraint is a half-line in theta and the feasible set is an interval.
    We search for its lower end (the fastest admissible execution).

    The iteration assumes feasibility is monotone in theta (slowing down never
    hurts), which holds when every cycle has a non-negative constant-delay
    part -- true for all OIL-derived models.  A bisection fallback handles
    other models; if even the fallback cannot find a feasible theta the
    component is reported infeasible.
    """
    if not graph.edges:
        return _ScaleSearchResult(feasible=True, max_scale=None)

    # Upper probe: a theta so large that every cycle whose rate-dependent part
    # is positive is certainly violated; if the graph is still infeasible at
    # this theta no rate can make it feasible (there is a cycle with positive
    # constant delay and non-negative rate-dependent delay).
    abs_eps = sum((abs(e.weight) for e in graph.edges), Fraction(0))
    nonzero_coeffs = [abs(e.parametric) for e in graph.edges if e.parametric != 0]
    if not nonzero_coeffs:
        # Purely constant delays: feasibility is rate independent.
        result = graph.longest_paths()
        if result.has_positive_cycle:
            return _ScaleSearchResult(feasible=False, witness=result.cycle)
        return _ScaleSearchResult(feasible=True, max_scale=None)

    theta_probe = abs_eps / min(nonzero_coeffs) + 1
    probe_result = graph.longest_paths(evaluate=_delay_evaluator(theta_probe))
    if probe_result.has_positive_cycle:
        return _ScaleSearchResult(feasible=False, witness=probe_result.cycle)

    # Newton iteration from theta = 0 upwards.
    theta = Fraction(0)
    max_iterations = 4 * len(graph.edges) * max(len(graph.nodes), 1) + 64
    for _ in range(max_iterations):
        result = graph.longest_paths(evaluate=_delay_evaluator(theta))
        if not result.has_positive_cycle:
            if theta == 0:
                # No delay constraint limits the rate.
                return _ScaleSearchResult(feasible=True, max_scale=None)
            return _ScaleSearchResult(feasible=True, max_scale=Fraction(1) / theta)
        cycle = result.cycle
        eps_sum = sum((e.weight for e in cycle), Fraction(0))
        coeff_sum = sum((e.parametric for e in cycle), Fraction(0))
        if coeff_sum < 0:
            required = eps_sum / (-coeff_sum)
            if required <= theta:
                # No strict progress: fall back to bisection.
                break
            theta = required
        else:
            # This cycle cannot be satisfied by slowing down -- monotonicity
            # does not hold; fall back to bisection.
            break
    else:
        # Iteration budget exhausted; fall back to bisection.
        pass

    return _bisect_scale(graph, theta_probe)


def _bisect_scale(graph: ConstraintGraph, theta_hi: Rat) -> _ScaleSearchResult:
    """Bisection fallback: find the smallest feasible theta in (0, theta_hi].

    ``theta_hi`` is known feasible.  The result is refined to the exact
    witness-cycle ratio once bisection isolates the binding cycle.
    """
    lo = Fraction(0)
    hi = theta_hi
    witness: List[Edge] = []
    for _ in range(256):
        mid = (lo + hi) / 2
        result = graph.longest_paths(evaluate=_delay_evaluator(mid))
        if result.has_positive_cycle:
            witness = result.cycle
            # The binding cycle gives an exact candidate for the boundary.
            eps_sum = sum((e.weight for e in witness), Fraction(0))
            coeff_sum = sum((e.parametric for e in witness), Fraction(0))
            if coeff_sum < 0:
                candidate = eps_sum / (-coeff_sum)
                if candidate > mid and candidate <= hi:
                    check = graph.longest_paths(evaluate=_delay_evaluator(candidate))
                    if not check.has_positive_cycle:
                        return _ScaleSearchResult(feasible=True, max_scale=Fraction(1) / candidate if candidate > 0 else None)
            lo = mid
        else:
            hi = mid
        if hi - lo == 0:
            break
    if hi > 0:
        return _ScaleSearchResult(feasible=True, max_scale=Fraction(1) / hi)
    return _ScaleSearchResult(feasible=False, witness=witness)


# --------------------------------------------------------------------------
# Public API
# --------------------------------------------------------------------------

def check_consistency(
    model: Component,
    *,
    assume_infinite_unsized: bool = False,
) -> ConsistencyResult:
    """Check whether the CTA *model* is consistent.

    The result carries, for every rate component, either the fixed scale
    imposed by its sources/sinks or the maximal achievable scale, the implied
    per-port rates, feasible start offsets and a list of violations when the
    model is inconsistent.

    Parameters
    ----------
    assume_infinite_unsized:
        When True, connections referencing an unsized
        :class:`~repro.cta.model.BufferParameter` are treated as imposing no
        capacity constraint (infinite buffer).  This is the mode used before
        buffer sizing to establish whether the required rates are achievable
        at all.  When False (default) unsized buffers raise an error.
    """
    structure = compute_rate_structure(model)
    violations: List[Violation] = [
        Violation(kind="rate", message=str(conflict)) for conflict in structure.conflicts
    ]

    per_component = _prepare_edges(
        model, structure, assume_infinite_unsized=assume_infinite_unsized
    )

    scales: List[Optional[Rat]] = [None] * len(structure.components)
    component_graphs: Dict[int, ConstraintGraph] = {}

    for component in structure.components:
        graph, _ = _build_graph(per_component[component.index])
        component_graphs[component.index] = graph

        if component.fixed_scale is not None:
            scale = component.fixed_scale
            if component.scale_cap is not None and scale > component.scale_cap:
                violations.append(
                    Violation(
                        kind="cap",
                        message=(
                            f"rate component #{component.index} requires scale {rational_str(scale)} "
                            f"but its maximum-rate cap is {rational_str(component.scale_cap)}"
                        ),
                    )
                )
                continue
            theta = Fraction(1) / scale
            result = graph.longest_paths(evaluate=_delay_evaluator(theta))
            if result.has_positive_cycle:
                cyc = result.cycle
                conns = tuple()
                violations.append(
                    Violation(
                        kind="cycle",
                        message=(
                            f"rate component #{component.index} (pinned at scale {rational_str(scale)} by "
                            f"{component.fixed_by}) has a positive-delay cycle of length {len(cyc)}; "
                            "data arrives too late (throughput constraint violated or buffers too small)"
                        ),
                        connections=conns,
                    )
                )
                continue
            scales[component.index] = scale
        else:
            search = _maximal_scale(graph)
            if not search.feasible:
                violations.append(
                    Violation(
                        kind="cycle",
                        message=(
                            f"rate component #{component.index} is infeasible at every rate: "
                            f"a cycle has positive delay independent of the execution rate"
                        ),
                    )
                )
                continue
            if search.max_scale is None:
                scale = component.scale_cap  # may be None (genuinely unbounded)
            else:
                scale = search.max_scale
                if component.scale_cap is not None and component.scale_cap < scale:
                    scale = component.scale_cap
            scales[component.index] = scale

    consistent = not violations

    port_rates: Dict[PortRef, Rat] = {}
    for component in structure.components:
        scale = scales[component.index]
        if scale is None:
            continue
        for port_ref, rho in component.relative_rates.items():
            port_rates[port_ref] = rho * scale

    offsets: Dict[PortRef, Rat] = {}
    if consistent:
        offsets = _compute_offsets(structure, component_graphs, scales)

    return ConsistencyResult(
        consistent=consistent,
        rate_structure=structure,
        scales=scales,
        port_rates=port_rates,
        offsets=offsets,
        violations=violations,
    )


def _compute_offsets(
    structure: RateStructure,
    component_graphs: Dict[int, ConstraintGraph],
    scales: Sequence[Optional[Rat]],
) -> Dict[PortRef, Rat]:
    """Feasible start offsets for all ports of all feasible components."""
    offsets: Dict[PortRef, Rat] = {}
    for component in structure.components:
        scale = scales[component.index]
        graph = component_graphs[component.index]
        if scale is None:
            # Unbounded rate and no delay edges: all offsets zero.
            for port_ref in component.relative_rates:
                offsets[port_ref] = Fraction(0)
            continue
        theta = Fraction(1) / scale
        result = graph.longest_paths(evaluate=_delay_evaluator(theta))
        if result.has_positive_cycle:  # pragma: no cover - guarded by caller
            continue
        for port_ref in component.relative_rates:
            offsets[port_ref] = result.offsets.get(port_ref, Fraction(0))
    return offsets


def maximal_rates(
    model: Component,
    *,
    assume_infinite_unsized: bool = False,
) -> Dict[PortRef, Optional[Rat]]:
    """The maximal achievable transfer rate of every port of *model*.

    For ports in rate components pinned by a source or sink the returned value
    is their actual rate; for free components it is the fastest rate the delay
    and maximum-rate constraints admit, or ``None`` when nothing bounds the
    rate.  This is the second output of the consistency algorithm described in
    Sec. V-A ("the consistency algorithm also returns the maximal achievable
    transfer rates for every port").
    """
    result = check_consistency(model, assume_infinite_unsized=assume_infinite_unsized)
    rates: Dict[PortRef, Optional[Rat]] = {}
    structure = result.rate_structure
    for component in structure.components:
        scale = result.scales[component.index]
        for port_ref, rho in component.relative_rates.items():
            rates[port_ref] = None if scale is None else rho * scale
    return rates


def verify_throughput(
    model: Component,
    requirements: Dict[PortRef, Rat],
    *,
    assume_infinite_unsized: bool = False,
) -> Tuple[bool, List[str]]:
    """Verify that every port in *requirements* can sustain at least the
    required rate.  Returns ``(ok, problems)``.
    """
    result = check_consistency(model, assume_infinite_unsized=assume_infinite_unsized)
    problems: List[str] = [str(v) for v in result.violations]
    if not result.consistent:
        return False, problems
    for port_ref, required in requirements.items():
        actual = result.port_rates.get(port_ref)
        if actual is None:
            continue  # unbounded
        if actual < required:
            problems.append(
                f"port {port_ref} achieves rate {rational_str(actual)} < required {rational_str(required)}"
            )
    return not problems, problems
