"""``python -m repro`` -- command-line entry point.

Currently one command group: ``sweep`` (the sweep service; see
:mod:`repro.service.cli`).  The group layer exists so later CLIs
(``check``, ``bench``, ...) attach beside it rather than on top of it.
"""

import sys


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro sweep <submit|status|run|resume|shard|run-shard|merge> ...")
        print("       python -m repro sweep --help")
        return 0 if argv else 2
    group, rest = argv[0], argv[1:]
    if group == "sweep":
        from repro.service.cli import main as sweep_main

        return sweep_main(rest)
    print(f"unknown command {group!r}; try: python -m repro sweep --help", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
