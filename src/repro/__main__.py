"""``python -m repro`` -- command-line entry point.

Command groups: ``sweep`` (the sweep service; see :mod:`repro.service.cli`)
and ``check`` (pre-flight rule checks; see :mod:`repro.rules.cli`).  The
group layer exists so later CLIs (``bench``, ...) attach beside them rather
than on top of them.
"""

import sys

_USAGE = (
    "usage: python -m repro sweep <submit|status|run|resume|shard|run-shard|merge> ...\n"
    "       python -m repro check <app-or-oil-file> [--json] [--select ...] ...\n"
    "       python -m repro sweep --help\n"
    "       python -m repro check --help"
)


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE)
        return 0 if argv else 2
    group, rest = argv[0], argv[1:]
    if group == "sweep":
        from repro.service.cli import main as sweep_main

        return sweep_main(rest)
    if group == "check":
        from repro.rules.cli import main as check_main

        return check_main(rest)
    print(f"unknown command {group!r}; try: python -m repro --help", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
