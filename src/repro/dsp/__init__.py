"""Signal-processing kernels coordinated by the PAL decoder application.

* :mod:`repro.dsp.filters` -- FIR design and streaming filtering,
* :mod:`repro.dsp.resample` -- rational resampling and decimation,
* :mod:`repro.dsp.mixer` -- frequency mixing and spectral helpers,
* :mod:`repro.dsp.pal` -- the synthetic composite PAL-like signal that
  substitutes the paper's RF front-end (see DESIGN.md).
"""

from repro.dsp.filters import StreamingFIR, block_convolve, design_lowpass
from repro.dsp.resample import Decimator, RationalResampler
from repro.dsp.mixer import Mixer, band_power, tone
from repro.dsp.pal import (
    PALSignalConfig,
    PALSignalGenerator,
    dominant_frequency,
    synthesize_composite,
    synthesize_composite_at,
)

__all__ = [
    "StreamingFIR",
    "block_convolve",
    "design_lowpass",
    "Decimator",
    "RationalResampler",
    "Mixer",
    "band_power",
    "tone",
    "PALSignalConfig",
    "PALSignalGenerator",
    "dominant_frequency",
    "synthesize_composite",
    "synthesize_composite_at",
]
