"""FIR filter design and streaming filtering.

The PAL decoder's rate converters and band splitters are built from low-pass
FIR filters (the ``LPF``, ``LPF_V`` and ``resamp`` functions the OIL program
coordinates).  This module provides:

* :func:`design_lowpass` -- windowed-sinc low-pass design (Hamming window),
* :class:`StreamingFIR` -- a stateful, side-effect-free-per-call filter that
  keeps its delay line between calls (state is allowed in OIL functions,
  side effects are not: the filter never touches anything outside its own
  state and produces identical outputs for identical input histories),
* :func:`block_convolve` -- helper used by tests to cross-check the streaming
  implementation against :func:`numpy.convolve`.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np


def design_lowpass(cutoff: float, num_taps: int = 63) -> np.ndarray:
    """Design a linear-phase low-pass FIR filter.

    Parameters
    ----------
    cutoff:
        Normalised cutoff frequency (fraction of the sampling rate, 0 < cutoff
        < 0.5).
    num_taps:
        Number of taps (odd numbers give a symmetric, type-I filter).

    Returns
    -------
    numpy.ndarray
        The filter coefficients, normalised to unit DC gain.
    """
    if not 0 < cutoff < 0.5:
        raise ValueError(f"cutoff must be in (0, 0.5), got {cutoff}")
    if num_taps < 1:
        raise ValueError("num_taps must be positive")
    n = np.arange(num_taps)
    middle = (num_taps - 1) / 2.0
    # Windowed sinc.
    argument = 2.0 * cutoff * (n - middle)
    taps = 2.0 * cutoff * np.sinc(argument)
    window = np.hamming(num_taps)
    taps = taps * window
    total = taps.sum()
    if total != 0:
        taps = taps / total
    return taps


class StreamingFIR:
    """A stateful FIR filter processing samples one block at a time.

    The delay line persists between calls so consecutive calls on consecutive
    blocks produce the same output as filtering the concatenated signal.
    """

    def __init__(self, taps: Sequence[float]) -> None:
        self.taps = np.asarray(list(taps), dtype=float)
        if self.taps.ndim != 1 or self.taps.size == 0:
            raise ValueError("taps must be a non-empty 1-D sequence")
        self._history: List[float] = [0.0] * (self.taps.size - 1)
        self._version = 0

    def reset(self) -> None:
        """Clear the delay line."""
        self._history = [0.0] * (self.taps.size - 1)
        self._version += 1

    def get_state(self):
        """The delay line as a serialisable tuple (raw input copies, so a
        periodic input makes the state exactly periodic)."""
        return tuple(self._history)

    def set_state(self, state) -> None:
        self._history = list(state)
        self._version += 1

    def state_version(self) -> int:
        """Monotone counter that moves whenever the delay line may have
        changed (the ``FunctionSpec.state_version`` declaration: lets the
        fast-forwarder cache the state digest between anchor samples)."""
        return self._version

    def process(self, samples: Sequence[float]) -> List[float]:
        """Filter *samples* and return one output per input sample."""
        if np.isscalar(samples):
            samples = [float(samples)]  # type: ignore[list-item]
        samples = [float(s) for s in samples]
        if not samples:
            return []
        signal = np.asarray(self._history + samples, dtype=float)
        # Output y[n] = sum_k taps[k] * x[n - k]  for n over the new samples.
        outputs: List[float] = []
        taps = self.taps[::-1]
        width = self.taps.size
        for index in range(len(samples)):
            window = signal[index : index + width]
            outputs.append(float(np.dot(window, taps)))
        keep = max(width - 1, 0)
        self._history = list(signal[-keep:]) if keep else []
        self._version += 1
        return outputs

    def __call__(self, samples: Sequence[float]) -> List[float]:
        return self.process(samples)


def block_convolve(taps: Sequence[float], signal: Sequence[float]) -> np.ndarray:
    """Reference convolution (causal, same length as the input signal)."""
    taps = np.asarray(list(taps), dtype=float)
    signal = np.asarray(list(signal), dtype=float)
    full = np.convolve(signal, taps)
    return full[: signal.size]
