"""Rational sample-rate conversion.

The PAL decoder changes sample rates by rational factors: the audio path is
decimated by 25 and then by 8, the video path is resampled by 10/16
(Sec. VI).  This module implements a streaming rational resampler based on
zero-stuffing, low-pass filtering and decimation (the textbook L/M
structure), with the anti-aliasing/anti-imaging filter shared between the
interpolation and decimation stages.

The streaming interface matches the OIL colon notation: each call consumes a
fixed block of input samples and produces a fixed block of output samples
(``resamp(si:16, out so:10)`` consumes 16 and produces 10 per call).
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.dsp.filters import StreamingFIR, design_lowpass


class RationalResampler:
    """A streaming resampler by the rational factor ``up / down``.

    Each call to :meth:`process` may pass any number of input samples; the
    resampler buffers fractional phases internally so that concatenated calls
    are equivalent to one large call.  For block-oriented use (the OIL
    decoder), pass ``down`` samples per call to obtain exactly ``up`` output
    samples per call (after the start-up transient of the filter).
    """

    def __init__(self, up: int, down: int, *, num_taps: int = 63) -> None:
        if up < 1 or down < 1:
            raise ValueError("up and down factors must be positive")
        gcd = math.gcd(up, down)
        self.up = up // gcd
        self.down = down // gcd
        cutoff = 0.45 / max(self.up, self.down)
        self._filter = StreamingFIR(design_lowpass(cutoff, num_taps) * self.up)
        self._phase = 0  # position within the upsampled stream modulo `down`
        self._pending: List[float] = []
        self._version = 0

    def reset(self) -> None:
        self._filter.reset()
        self._phase = 0
        self._pending = []
        self._version += 1

    def get_state(self):
        """Filter delay line + decimation phase as a serialisable tuple."""
        return (self._filter.get_state(), self._phase)

    def set_state(self, state) -> None:
        history, phase = state
        self._filter.set_state(history)
        self._phase = int(phase)
        self._version += 1

    def state_version(self) -> int:
        """Monotone counter moving whenever the resampler state (delay line
        or decimation phase) may have changed -- the
        ``FunctionSpec.state_version`` declaration."""
        return self._version

    def process(self, samples: Sequence[float]) -> List[float]:
        """Resample *samples*; returns the newly available output samples."""
        if np.isscalar(samples):
            samples = [float(samples)]  # type: ignore[list-item]
        samples = [float(s) for s in samples]
        if not samples:
            return []
        # Zero-stuff by the interpolation factor.
        stuffed: List[float] = []
        for sample in samples:
            stuffed.append(sample)
            stuffed.extend([0.0] * (self.up - 1))
        filtered = self._filter.process(stuffed)
        # Decimate by the decimation factor, honouring the phase left over
        # from the previous call.
        outputs: List[float] = []
        index = (self.down - self._phase) % self.down
        start = index if self._phase else 0
        position = self._phase
        for offset, value in enumerate(filtered):
            if position == 0:
                outputs.append(value)
            position = (position + 1) % self.down
        self._phase = position
        self._version += 1
        return outputs

    def __call__(self, samples: Sequence[float]) -> List[float]:
        return self.process(samples)


class Decimator:
    """A streaming decimator by an integer factor with anti-alias filtering.

    ``process`` consumes blocks of ``factor`` samples and produces one output
    sample per block (the SRC_A / Audio behaviour of the PAL decoder).
    """

    def __init__(self, factor: int, *, num_taps: int = 63) -> None:
        if factor < 1:
            raise ValueError("decimation factor must be positive")
        self.factor = factor
        self._resampler = RationalResampler(1, factor, num_taps=num_taps)

    def reset(self) -> None:
        self._resampler.reset()

    def get_state(self):
        return self._resampler.get_state()

    def set_state(self, state) -> None:
        self._resampler.set_state(state)

    def state_version(self) -> int:
        return self._resampler.state_version()

    def process(self, samples: Sequence[float]) -> List[float]:
        return self._resampler.process(samples)

    def __call__(self, samples: Sequence[float]) -> List[float]:
        return self.process(samples)
