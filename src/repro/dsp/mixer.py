"""Frequency mixing (down-conversion).

The PAL decoder's audio path first mixes the audio carrier to zero frequency
(module ``Mix_A`` in Fig. 11) before low-pass filtering and decimation.  The
streaming mixer below multiplies the input with a local oscillator whose phase
persists between calls, so block-wise operation equals sample-wise operation.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Any, List, Sequence

import numpy as np


class Mixer:
    """Multiply a real signal with a cosine local oscillator.

    The oscillator phase argument is ``2*pi*frequency*n``; for a rational
    ``frequency = p/q`` (read off the decimal spelling) the value stream is
    made *exactly* periodic by wrapping the sample index modulo ``q`` --
    ``cos`` of the very same float argument repeats bit for bit, which is
    what lets the fast-forwarder fold :meth:`get_state` into a finite
    periodicity key.

    Parameters
    ----------
    frequency:
        Oscillator frequency in cycles per *sample* (normalised frequency).
    amplitude:
        Oscillator amplitude (2.0 recovers the baseband amplitude of a
        double-sideband signal after low-pass filtering).
    """

    def __init__(self, frequency: float, *, amplitude: float = 2.0) -> None:
        self.frequency = float(frequency)
        self.amplitude = float(amplitude)
        #: oscillator period in samples (the denominator of the decimal
        #: spelling of the frequency; 1.0/3 etc. just get a huge period)
        self.period = Fraction(str(self.frequency)).denominator
        self._sample_index = 0

    def reset(self) -> None:
        self._sample_index = 0

    def get_state(self) -> int:
        """The oscillator position (serialisable, bounded by :attr:`period`)."""
        return self._sample_index

    def set_state(self, state: Any) -> None:
        self._sample_index = int(state) % self.period

    def state_version(self) -> int:
        """Monotone-enough change token for the fast-forwarder's digest
        cache: the oscillator state *is* a bounded integer, so the position
        itself serves (the digest it guards is equally cheap either way)."""
        return self._sample_index

    def process(self, samples: Sequence[float]) -> List[float]:
        if np.isscalar(samples):
            samples = [float(samples)]  # type: ignore[list-item]
        samples = [float(s) for s in samples]
        outputs: List[float] = []
        for sample in samples:
            phase = 2.0 * math.pi * self.frequency * self._sample_index
            outputs.append(self.amplitude * sample * math.cos(phase))
            self._sample_index = (self._sample_index + 1) % self.period
        return outputs

    def __call__(self, samples: Sequence[float]) -> List[float]:
        return self.process(samples)


def tone(frequency: float, count: int, *, amplitude: float = 1.0, phase: float = 0.0) -> np.ndarray:
    """A cosine test tone at normalised *frequency* (cycles per sample)."""
    n = np.arange(count)
    return amplitude * np.cos(2.0 * math.pi * frequency * n + phase)


def band_power(signal: Sequence[float], low: float, high: float) -> float:
    """Fraction of the signal's power contained in the normalised frequency
    band [low, high] (cycles per sample, 0..0.5).  Used by the PAL tests to
    check that the audio/video bands end up where they should."""
    data = np.asarray(list(signal), dtype=float)
    if data.size == 0:
        return 0.0
    spectrum = np.abs(np.fft.rfft(data)) ** 2
    freqs = np.fft.rfftfreq(data.size)
    total = spectrum.sum()
    if total == 0:
        return 0.0
    mask = (freqs >= low) & (freqs <= high)
    return float(spectrum[mask].sum() / total)
