"""Synthetic PAL-like composite signal.

The paper's case study decodes a broadcast PAL signal sampled at 6.4 MS/s by
an analog RF front-end -- hardware and data we do not have.  As a substitute
(documented in DESIGN.md) this module synthesises a composite baseband signal
with the two properties the decoder exercises:

* a *video band* occupying the low part of the spectrum (a sum of slowly
  varying tones standing in for luminance content), and
* an *audio carrier* at a configurable normalised frequency, amplitude
  modulated by a low-frequency audio tone.

The decoder's splitter separates exactly these two bands: ``LPF_V`` keeps the
video band, ``Mix_A`` shifts the audio carrier to zero frequency where the
``LPF``/``SRC_A`` chain extracts the audio tone.  The tests verify that the
decoded audio contains the modulating tone and that the video output retains
the video-band energy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.runtime.sources import PeriodicStimulus


@dataclass(frozen=True)
class PALSignalConfig:
    """Parameters of the synthetic composite signal.

    All frequencies are *normalised* (cycles per sample at the RF sampling
    rate), so the same configuration works for the full-rate 6.4 MS/s setting
    and for the scaled-down simulation settings.
    """

    #: normalised frequencies of the video-band tones and their amplitudes
    video_tones: Sequence[float] = (0.01, 0.035, 0.06)
    video_amplitudes: Sequence[float] = (1.0, 0.6, 0.3)
    #: normalised frequency of the audio carrier
    audio_carrier: float = 0.35
    #: normalised frequency of the audio modulation tone
    audio_tone: float = 0.0008
    audio_depth: float = 0.8
    audio_carrier_amplitude: float = 0.5
    noise_amplitude: float = 0.01
    seed: int = 20140712


def synthesize_composite(config: PALSignalConfig, count: int) -> np.ndarray:
    """Generate *count* samples of the composite signal."""
    n = np.arange(count)
    signal = np.zeros(count, dtype=float)
    for frequency, amplitude in zip(config.video_tones, config.video_amplitudes):
        signal += amplitude * np.cos(2.0 * math.pi * frequency * n)
    modulation = 1.0 + config.audio_depth * np.cos(2.0 * math.pi * config.audio_tone * n)
    signal += (
        config.audio_carrier_amplitude
        * modulation
        * np.cos(2.0 * math.pi * config.audio_carrier * n)
    )
    if config.noise_amplitude > 0:
        rng = np.random.default_rng(config.seed)
        signal += config.noise_amplitude * rng.standard_normal(count)
    return signal


class PALSignalGenerator:
    """An endless iterator over composite samples (used by the RF source)."""

    def __init__(self, config: PALSignalConfig | None = None, *, block: int = 4096) -> None:
        self.config = config or PALSignalConfig()
        self.block = block
        self._buffer: List[float] = []
        self._offset = 0

    def __iter__(self) -> Iterator[float]:
        return self

    def __next__(self) -> float:
        if not self._buffer:
            samples = synthesize_composite_at(self.config, self._offset, self.block)
            self._offset += self.block
            self._buffer = list(samples)
        return self._buffer.pop(0)


def synthesize_composite_at(config: PALSignalConfig, start: int, count: int) -> np.ndarray:
    """Generate samples ``start .. start+count`` of the composite signal
    (phase-continuous with :func:`synthesize_composite`)."""
    n = np.arange(start, start + count)
    signal = np.zeros(count, dtype=float)
    for frequency, amplitude in zip(config.video_tones, config.video_amplitudes):
        signal += amplitude * np.cos(2.0 * math.pi * frequency * n)
    modulation = 1.0 + config.audio_depth * np.cos(2.0 * math.pi * config.audio_tone * n)
    signal += (
        config.audio_carrier_amplitude
        * modulation
        * np.cos(2.0 * math.pi * config.audio_carrier * n)
    )
    if config.noise_amplitude > 0:
        rng = np.random.default_rng(config.seed + start)
        signal += config.noise_amplitude * rng.standard_normal(count)
    return signal


def composite_period(config: Optional[PALSignalConfig] = None) -> int:
    """Samples per exact period of the deterministic part of the signal.

    Every tone argument is ``2*pi*f*n`` with ``f`` a decimal rational
    ``p/q``; the sum of tones repeats bit for bit after ``lcm`` of the
    denominators (5000 samples for the default configuration)."""
    config = config or PALSignalConfig()
    period = 1
    for frequency in (*config.video_tones, config.audio_carrier, config.audio_tone):
        period = math.lcm(period, Fraction(str(float(frequency))).denominator)
    return period


def periodic_composite_stimulus(
    config: Optional[PALSignalConfig] = None, *, period: Optional[int] = None
) -> PeriodicStimulus:
    """One period of the composite signal as a declared cyclic stimulus.

    The deterministic part (tones + modulated carrier) is exactly periodic
    in :func:`composite_period` samples; the dither noise is not, so the
    one precomputed block freezes the first period's noise and cycles it --
    spectrally equivalent at ``noise_amplitude`` 0.01, and *declared*, which
    is what lets a simulation fast-forward the RF source value-exactly
    instead of draining an opaque generator (:class:`PALSignalGenerator`,
    kept for streaming use)."""
    config = config or PALSignalConfig()
    count = period if period is not None else composite_period(config)
    block = synthesize_composite(config, count)
    return PeriodicStimulus([float(sample) for sample in block])


def dominant_frequency(signal: Sequence[float]) -> float:
    """The normalised frequency with the most energy (DC excluded)."""
    data = np.asarray(list(signal), dtype=float)
    if data.size < 4:
        return 0.0
    data = data - data.mean()
    spectrum = np.abs(np.fft.rfft(data * np.hanning(data.size)))
    freqs = np.fft.rfftfreq(data.size)
    index = int(np.argmax(spectrum[1:])) + 1
    return float(freqs[index])
