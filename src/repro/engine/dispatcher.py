"""Event-driven ready-set dispatch of runtime tasks.

The seed simulator validated the paper's claims with an O(all-tasks) polling
dispatcher: every buffer change scheduled a dispatch event that re-scanned the
whole task fleet (repeatedly, until a fixpoint).  That is fine for the paper's
small figures and fatal for large programs.  The :class:`ExecutionEngine`
replaces it with dependency-indexed dispatch:

* every :class:`~repro.graph.circular_buffer.CircularBuffer` carries a reverse
  index of the tasks reading and writing it (wired by :meth:`wire_buffers`);
  when the buffer's produced floor moves its *readers* are pushed onto the
  ready set, when its consumed floor moves its *writers* are -- nothing else
  is ever re-examined,
* the ready set (:class:`ReadySet`) is *pass-structured*: it hands out tasks
  in static (registration) order and defers tasks woken at-or-before the
  cursor to the next pass, which reproduces the exact fixpoint iteration
  order of the polling dispatcher -- self-timed traces are bit-identical to
  the seed implementation,
* a pluggable :class:`~repro.engine.policies.SchedulerPolicy` gates starts,
  so the same dispatch core executes unbounded self-timed, bounded-processor
  and static-order schedules.

The polling dispatcher survives as ``mode="polling"`` -- the brute-force
reference the equivalence tests and the dispatch microbenchmark compare
against.

Starting a task only *consumes* tokens (outputs are released at completion),
and consuming can only enable other tasks -- a producer gains space, no
consumer loses tokens (windows are private).  Eligibility is therefore
monotone within a dispatch, which is what makes the ready-set fixpoint equal
to the polling fixpoint.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.engine.policies import SchedulerPolicy, SelfTimedUnbounded
from repro.graph.circular_buffer import CircularBuffer
from repro.util.rational import Rat, TimeBase, TimeBaseError
from repro.util.validation import check_in

if TYPE_CHECKING:  # imports only for annotations: runtime.simulator imports us
    from repro.runtime.events import EventQueue
    from repro.runtime.tasks import RuntimeTask
    from repro.runtime.trace import TraceRecorder


class ReadySet:
    """An ordered ready set that replays the polling dispatcher's pass order.

    The polling reference repeatedly scans all tasks in registration order
    until a whole pass starts nothing.  Its ordering rule, restated per task:
    a task woken at an index *greater* than the scan cursor is reached later
    in the same pass; a task woken at-or-before the cursor has to wait for
    the next pass.  :meth:`push`/:meth:`pop` implement exactly that rule over
    only the woken tasks, so the dispatch order (and with it the trace) is
    identical while the work per dispatch shrinks from O(all tasks) to
    O(woken tasks).
    """

    def __init__(self) -> None:
        self._current: List[int] = []  # min-heap of indices > cursor (this pass)
        self._deferred: List[int] = []  # indices <= cursor (next pass)
        self._queued: set = set()
        self._cursor = -1

    def __len__(self) -> int:
        return len(self._queued)

    def push(self, index: int) -> None:
        if index in self._queued:
            return
        self._queued.add(index)
        if index > self._cursor:
            heapq.heappush(self._current, index)
        else:
            self._deferred.append(index)

    def pop(self) -> Optional[int]:
        """Next index in pass order; ``None`` (and cursor reset) when empty."""
        if not self._current:
            if not self._deferred:
                self._cursor = -1
                return None
            self._current = self._deferred
            heapq.heapify(self._current)
            self._deferred = []
            self._cursor = -1
        index = heapq.heappop(self._current)
        self._queued.discard(index)
        self._cursor = index
        return index


class ExecutionEngine:
    """Dispatches runtime tasks over an event queue under a scheduling policy.

    The engine owns the hot path of a simulation: deciding which task starts
    when.  It is independent of the OIL module hierarchy --
    :class:`~repro.runtime.simulator.Simulation` instantiates that hierarchy
    and registers the resulting tasks here; benchmarks and scheduler tests
    drive the engine directly on synthetic task sets
    (:mod:`repro.engine.synthetic`).

    Parameters
    ----------
    queue, trace:
        The discrete-event queue and trace recorder shared with the drivers.
    policy:
        A :class:`~repro.engine.policies.SchedulerPolicy`; default
        :class:`~repro.engine.policies.SelfTimedUnbounded`.
    mode:
        ``"ready-set"`` (indexed dispatch, the default) or ``"polling"``
        (the brute-force whole-fleet reference).
    """

    MODES = ("ready-set", "polling")

    def __init__(
        self,
        queue: EventQueue,
        trace: TraceRecorder,
        *,
        policy: Optional[SchedulerPolicy] = None,
        mode: str = "ready-set",
    ) -> None:
        check_in(mode, self.MODES, "mode")
        self.queue = queue
        self.trace = trace
        self.policy: SchedulerPolicy = policy if policy is not None else SelfTimedUnbounded()
        self.mode = mode
        self.tasks: List[RuntimeTask] = []
        self._index: Dict[RuntimeTask, int] = {}
        self._ready = ReadySet()
        self._dispatch_pending = False
        self._in_dispatch = False
        self.started_firings = 0
        self.completed_firings = 0
        #: completion time of the last finished firing in the queue's native
        #: units; maintained independently of the trace so makespans survive
        #: ``trace_level="off"``.  Read via :attr:`last_completion_time`.
        self._last_completion: Union[int, Fraction] = 0
        # A fresh engine is a fresh execution: drop any processor accounting
        # a previous (possibly mid-flight-stopped) run left in the policy.
        reset = getattr(self.policy, "reset", None)
        if reset is not None:
            reset()
        #: optional hook run at the end of every completion (the simulator
        #: advances mode-schedule phases and notifies waiting sinks here)
        self.on_complete: Optional[Callable[[RuntimeTask], None]] = None

    @property
    def last_completion_time(self) -> Rat:
        """Completion time of the last finished firing as exact rational
        seconds (correct at every trace level and in both time
        representations)."""
        return self.queue.to_time(self._last_completion)

    # ------------------------------------------------------------------ build
    def register_task(self, task: RuntimeTask) -> None:
        """Add *task* to the fleet; registration order is the static priority
        order (it matches the extraction order the seed dispatcher scanned)."""
        self._index[task] = len(self.tasks)
        self.tasks.append(task)

    def wire_buffers(self) -> None:
        """Build the reverse dependency index: subscribe one waker per buffer
        so that a moved produced floor wakes the buffer's readers and a moved
        consumed floor wakes its writers.  Call once, after all tasks are
        registered and the queue's time base (if any) is set -- response
        times are pre-converted to the queue's native units here so the
        firing hot path only adds them.  The index itself is skipped in
        polling mode, which re-scans everything."""
        queue = self.queue
        for task in self.tasks:
            task.wcet_internal = queue.to_internal(task.wcet)
        if self.mode == "polling":
            return
        readers: Dict[CircularBuffer, List[RuntimeTask]] = {}
        writers: Dict[CircularBuffer, List[RuntimeTask]] = {}
        for task in self.tasks:
            for access in task.task.reads:
                dependents = readers.setdefault(task.buffers[access.buffer], [])
                if task not in dependents:
                    dependents.append(task)
            for access in task.task.writes:
                dependents = writers.setdefault(task.buffers[access.buffer], [])
                if task not in dependents:
                    dependents.append(task)
        for buffer, dependents in readers.items():
            buffer.watch_tokens(self._waker(dependents))
        for buffer, dependents in writers.items():
            buffer.watch_space(self._waker(dependents))

    def _waker(self, dependents: Sequence[RuntimeTask]) -> Callable[[], None]:
        def wake() -> None:
            for task in dependents:
                self.wake_task(task)

        return wake

    # ------------------------------------------------------------------ wakes
    def wake_task(self, task: RuntimeTask) -> None:
        """Mark *task* for (re-)examination at the next dispatch."""
        if task.busy or (task.one_shot and task.fired_once):
            return
        if self.mode == "ready-set":
            self._ready.push(self._index[task])
        if not self._in_dispatch:
            self.schedule_dispatch()

    def wake_tasks(self, tasks: Iterable[RuntimeTask]) -> None:
        for task in tasks:
            self.wake_task(task)

    def wake_all(self) -> None:
        """Queue the whole fleet (start-up, or after an external change)."""
        self.wake_tasks(self.tasks)

    # -------------------------------------------------------------- dispatch
    def schedule_dispatch(self) -> None:
        if self._dispatch_pending:
            return
        self._dispatch_pending = True
        self.queue.schedule(self.queue.now, self._dispatch, label="dispatch")

    def _dispatch(self) -> None:
        self._dispatch_pending = False
        self._in_dispatch = True
        try:
            if self.mode == "polling":
                self._dispatch_polling()
            else:
                self._dispatch_ready_set()
        finally:
            self._in_dispatch = False

    def _dispatch_polling(self) -> None:
        """The seed's dispatcher: rescan the whole fleet until a fixpoint."""
        progress = True
        while progress:
            progress = False
            for task in self.tasks:
                if task.can_fire() and self.policy.allow_start(task):
                    self._start_task(task)
                    progress = True

    def _dispatch_ready_set(self) -> None:
        """Examine only woken tasks, in the polling dispatcher's pass order.

        Tasks that are eligible but denied by the policy (all processors
        busy, not next in the static order) are kept queued for the next
        dispatch, which the policy's releasing completion always schedules.
        """
        stalled: List[int] = []
        while True:
            index = self._ready.pop()
            if index is None:
                break
            task = self.tasks[index]
            if not task.can_fire():
                continue  # re-queued by the next relevant buffer change
            if not self.policy.allow_start(task):
                stalled.append(index)
                continue
            self._start_task(task)
        for index in stalled:
            self._ready.push(index)

    # -------------------------------------------------------------- execution
    def _start_task(self, task: RuntimeTask) -> None:
        start = self.queue.now
        values = task.start_firing()
        self.policy.on_start(task)
        self.started_firings += 1

        def complete() -> None:
            executed = task.finish_firing(values)
            self.completed_firings += 1
            queue = self.queue
            self._last_completion = queue.now
            trace = self.trace
            if trace.firings_enabled:
                trace.record_firing(
                    task.producer_key(), queue.to_time(start), queue.to_time(queue.now), executed
                )
            if trace.occupancy_enabled:
                for access in task.task.writes:
                    buffer = task.buffers[access.buffer]
                    trace.record_occupancy(buffer.name, buffer.occupancy())
            self.policy.on_complete(task)
            if self.on_complete is not None:
                self.on_complete(task)
            self.wake_task(task)
            self.schedule_dispatch()

        self.queue.schedule(start + task.wcet_internal, complete, label=f"complete:{task.name}")


@dataclass
class EngineRun:
    """Outcome of a standalone engine execution (no module hierarchy)."""

    engine: ExecutionEngine
    queue: EventQueue
    trace: TraceRecorder

    @property
    def makespan(self):
        """Completion time of the last finished firing (engine-tracked, so
        it is correct at every trace level, including ``"off"``)."""
        return self.engine.last_completion_time

    def firing_sequence(self) -> List[str]:
        """Task names in completion order (with one-processor policies this
        equals the start order, i.e. the executed schedule).  Requires the
        default ``"full"`` trace level -- the sequence is read off the
        recorded firings."""
        return [firing.task.rsplit(":", 1)[-1] for firing in self.trace.firings]


def run_tasks(
    tasks: Sequence[RuntimeTask],
    *,
    policy: Optional[SchedulerPolicy] = None,
    mode: str = "ready-set",
    stop_after_firings: Optional[int] = None,
    horizon=Fraction(10**9),
    trace: Optional[TraceRecorder] = None,
    time_base: Union[str, TimeBase, None] = "auto",
) -> EngineRun:
    """Execute *tasks* data-driven on a fresh event queue.

    Runs until the queue drains, *horizon* is reached, or (when
    *stop_after_firings* is given) at least that many firings completed --
    whichever comes first.  This is the entry point for scheduler experiments
    and benchmarks that need the execution layer without compiling an OIL
    program.

    ``time_base`` selects the queue's time representation: ``"auto"`` (the
    default) derives an integer-tick base from the tasks' response times and
    falls back to exact fractions when none exists, ``"ticks"`` requires one
    (raising :class:`~repro.util.rational.TimeBaseError` otherwise),
    ``"fraction"`` (or ``None``) keeps the legacy fraction-based queue, and a
    ready :class:`~repro.util.rational.TimeBase` is used as given.  Traces
    are bit-identical across all choices.
    """
    from repro.runtime.events import EventQueue
    from repro.runtime.trace import TraceRecorder

    timebase: Optional[TimeBase]
    if time_base is None or time_base == "fraction":
        timebase = None
    elif isinstance(time_base, TimeBase):
        timebase = time_base
    elif time_base in ("auto", "ticks"):
        timebase = TimeBase.for_durations(task.wcet for task in tasks)
        if timebase is None and time_base == "ticks":
            raise TimeBaseError("no positive response time to derive a tick resolution from")
    else:
        raise ValueError(f"unknown time base {time_base!r}")
    queue = EventQueue(timebase)
    trace = trace if trace is not None else TraceRecorder()
    engine = ExecutionEngine(queue, trace, policy=policy, mode=mode)
    for task in tasks:
        engine.register_task(task)
    engine.wire_buffers()
    engine.wake_all()
    engine.schedule_dispatch()
    if stop_after_firings is None:
        queue.run_until(horizon)
    else:
        target = stop_after_firings
        queue.run_until(horizon, stop=lambda: engine.completed_firings >= target)
    return EngineRun(engine=engine, queue=queue, trace=trace)
