"""Event-driven ready-set dispatch of runtime tasks.

The seed simulator validated the paper's claims with an O(all-tasks) polling
dispatcher: every buffer change scheduled a dispatch event that re-scanned the
whole task fleet (repeatedly, until a fixpoint).  That is fine for the paper's
small figures and fatal for large programs.  The :class:`ExecutionEngine`
replaces it with dependency-indexed dispatch:

* every :class:`~repro.graph.circular_buffer.CircularBuffer` carries a reverse
  index of the tasks reading and writing it (wired by :meth:`wire_buffers`);
  when the buffer's produced floor moves its *readers* are pushed onto the
  ready set, when its consumed floor moves its *writers* are -- nothing else
  is ever re-examined,
* the ready set (:class:`ReadySet`) is *pass-structured*: it hands out tasks
  in static (registration) order and defers tasks woken at-or-before the
  cursor to the next pass, which reproduces the exact fixpoint iteration
  order of the polling dispatcher -- self-timed traces are bit-identical to
  the seed implementation,
* a pluggable :class:`~repro.engine.policies.SchedulerPolicy` gates starts,
  so the same dispatch core executes unbounded self-timed, bounded-processor
  and static-order schedules,
* a *platform* policy (:mod:`repro.platform.policies`, detected by the
  presence of ``decide_start``) upgrades the boolean gate to full
  ``(task, processor, start | preempt | resume)`` decisions: the engine then
  tracks in-flight firings (:class:`ActiveFiring`), cancels and re-posts
  completion events on preemption with the exact remaining work, scales
  durations by processor speed, and accounts busy time per processor.

The polling dispatcher survives as ``mode="polling"`` -- the brute-force
reference the equivalence tests and the dispatch microbenchmark compare
against.  Platform policies require ready-set mode (the polling reference
predates processors as first-class objects).

Starting a task only *consumes* tokens (outputs are released at completion),
and consuming can only enable other tasks -- a producer gains space, no
consumer loses tokens (windows are private).  Eligibility is therefore
monotone within a dispatch, which is what makes the ready-set fixpoint equal
to the polling fixpoint.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.engine.policies import SchedulerPolicy, SelfTimedUnbounded
from repro.graph.circular_buffer import CircularBuffer
from repro.util.rational import Rat, TimeBase, TimeBaseError, as_rational
from repro.util.validation import check_in

if TYPE_CHECKING:  # imports only for annotations: runtime.simulator imports us
    from repro.engine.steady_state import SteadyState
    from repro.platform.model import Platform, Processor
    from repro.runtime.events import Event, EventQueue
    from repro.runtime.sources import SinkDriver, SourceDriver
    from repro.runtime.tasks import RuntimeTask
    from repro.runtime.trace import TraceRecorder

#: Compiled-kernel requests accepted by the engine.
KERNEL_MODES = ("auto", "on", "off")


class ReadySet:
    """An ordered ready set that replays the polling dispatcher's pass order.

    The polling reference repeatedly scans all tasks in registration order
    until a whole pass starts nothing.  Its ordering rule, restated per task:
    a task woken at an index *greater* than the scan cursor is reached later
    in the same pass; a task woken at-or-before the cursor has to wait for
    the next pass.  :meth:`push`/:meth:`pop` implement exactly that rule over
    only the woken tasks, so the dispatch order (and with it the trace) is
    identical while the work per dispatch shrinks from O(all tasks) to
    O(woken tasks).
    """

    def __init__(self) -> None:
        self._current: List[int] = []  # min-heap of indices > cursor (this pass)
        self._deferred: List[int] = []  # indices <= cursor (next pass)
        self._queued: set[int] = set()
        self._cursor = -1

    def __len__(self) -> int:
        return len(self._queued)

    def push(self, index: int) -> None:
        if index in self._queued:
            return
        self._queued.add(index)
        if index > self._cursor:
            heapq.heappush(self._current, index)
        else:
            self._deferred.append(index)

    def pop(self) -> Optional[int]:
        """Next index in pass order; ``None`` (and cursor reset) when empty."""
        if not self._current:
            if not self._deferred:
                self._cursor = -1
                return None
            self._current = self._deferred
            heapq.heapify(self._current)
            self._deferred = []
            self._cursor = -1
        index = heapq.heappop(self._current)
        self._queued.discard(index)
        self._cursor = index
        return index


@dataclass
class ActiveFiring:
    """One in-flight (or suspended) firing under a platform policy.

    ``remaining`` is ``None`` while the firing runs; a preemption records the
    native-unit time still owed (``completion event time - now``, exact in
    both tick and fraction modes) and the speed it was accrued at, so a
    resume -- possibly on a different-speed processor -- re-posts the
    completion with exactly the outstanding work.
    """

    task: "RuntimeTask"
    values: dict
    start: Union[int, Fraction]
    processor: "Processor"
    #: start of the current uninterrupted execution segment (busy accounting)
    segment_start: Union[int, Fraction]
    event: Optional["Event"] = None
    #: native-unit time still owed after a preemption (None while running)
    remaining: Optional[Union[int, Fraction]] = None
    #: speed factor ``remaining`` was accrued at (for migrating resumes)
    suspended_speed: Optional[Fraction] = None


class ExecutionEngine:
    """Dispatches runtime tasks over an event queue under a scheduling policy.

    The engine owns the hot path of a simulation: deciding which task starts
    when.  It is independent of the OIL module hierarchy --
    :class:`~repro.runtime.simulator.Simulation` instantiates that hierarchy
    and registers the resulting tasks here; benchmarks and scheduler tests
    drive the engine directly on synthetic task sets
    (:mod:`repro.engine.synthetic`).

    Parameters
    ----------
    queue, trace:
        The discrete-event queue and trace recorder shared with the drivers.
    policy:
        A :class:`~repro.engine.policies.SchedulerPolicy`; default
        :class:`~repro.engine.policies.SelfTimedUnbounded`.
    mode:
        ``"ready-set"`` (indexed dispatch, the default) or ``"polling"``
        (the brute-force whole-fleet reference).
    kernel:
        The compiled dispatch kernel specialises the per-program hot loop at
        :meth:`wire_buffers` time: wcets pre-converted to ticks, window
        objects pre-bound per task, dependent indices pre-resolved per
        buffer -- the firing path then touches no dicts and no
        :class:`~fractions.Fraction`.  It applies to ready-set dispatch
        under boolean policies on an integer-tick queue; traces are
        bit-identical to the interpreted path.  ``"auto"`` (default) uses
        it whenever applicable, ``"off"`` never, ``"on"`` requires it
        (``ValueError`` at :meth:`wire_buffers` when inapplicable).
    """

    MODES = ("ready-set", "polling")

    def __init__(
        self,
        queue: EventQueue,
        trace: TraceRecorder,
        *,
        policy: Optional[SchedulerPolicy] = None,
        mode: str = "ready-set",
        kernel: str = "auto",
    ) -> None:
        check_in(mode, self.MODES, "mode")
        check_in(kernel, KERNEL_MODES, "kernel")
        self.queue = queue
        self.trace = trace
        self.policy: SchedulerPolicy = policy if policy is not None else SelfTimedUnbounded()
        self.mode = mode
        #: True when the policy speaks the rich platform protocol
        #: (``decide_start``); detected by duck-typing so this module never
        #: imports :mod:`repro.platform`
        self.platform_mode = callable(getattr(self.policy, "decide_start", None))
        if self.platform_mode and mode == "polling":
            raise ValueError(
                "platform policies require the ready-set dispatcher; the "
                "polling reference predates processors as first-class objects"
            )
        self.tasks: List[RuntimeTask] = []
        self._index: Dict[RuntimeTask, int] = {}
        self._ready = ReadySet()
        self._dispatch_pending = False
        self._in_dispatch = False
        self.started_firings = 0
        self.completed_firings = 0
        #: platform-mode state: in-flight firings, suspended firings and the
        #: per-processor busy-time accumulators (native units)
        self._active: Dict[RuntimeTask, ActiveFiring] = {}
        self._suspended: Dict[RuntimeTask, ActiveFiring] = {}
        self._busy_internal: Dict[str, Union[int, Fraction]] = {}
        self._duration_cache: Dict[tuple, Union[int, Fraction]] = {}
        self.preemptions = 0
        self.resumes = 0
        #: completion time of the last finished firing in the queue's native
        #: units; maintained independently of the trace so makespans survive
        #: ``trace_level="off"``.  Read via :attr:`last_completion_time`.
        self._last_completion: Union[int, Fraction] = 0
        #: compiled-kernel state: the request ("auto"/"on"/"off"), whether it
        #: was activated at wire time, and whether the policy is the trivial
        #: self-timed one (per-firing policy calls skipped entirely)
        self._kernel_request = kernel
        self.kernel_active = False
        self._kernel_trivial = False
        #: steady-state fast-forward detector (enable_fast_forward)
        self._steady: Optional["SteadyState"] = None
        # A fresh engine is a fresh execution: drop any processor accounting
        # a previous (possibly mid-flight-stopped) run left in the policy.
        reset = getattr(self.policy, "reset", None)
        if reset is not None:
            reset()
        #: optional hook run at the end of every completion (the simulator
        #: advances mode-schedule phases and notifies waiting sinks here)
        self.on_complete: Optional[Callable[[RuntimeTask], None]] = None

    @property
    def last_completion_time(self) -> Rat:
        """Completion time of the last finished firing as exact rational
        seconds (correct at every trace level and in both time
        representations)."""
        return self.queue.to_time(self._last_completion)

    @property
    def processor_busy_time(self) -> Dict[str, Rat]:
        """Accumulated busy time per processor as exact rational seconds
        (platform mode only; empty under legacy boolean policies).  Busy
        time of a suspended firing stops at the preemption instant and
        continues at the resume, and a still-running firing counts its
        executed segment up to the current instant -- so the sum over
        processors equals the sum of actually executed segments even when a
        run horizon cuts firings mid-flight."""
        busy = dict(self._busy_internal)
        now = self.queue.now
        for firing in self._active.values():
            name = firing.processor.name
            busy[name] = busy.get(name, 0) + now - firing.segment_start
        return {name: self.queue.to_time(value) for name, value in sorted(busy.items())}

    @property
    def suspended_tasks(self) -> List["RuntimeTask"]:
        """Tasks whose current firing is preempted (awaiting resume)."""
        return list(self._suspended)

    @property
    def steady_state(self) -> Optional["SteadyState"]:
        """The installed fast-forward detector (None when disabled/refused)."""
        return self._steady

    def enable_fast_forward(
        self,
        horizon,
        *,
        extra_state=None,
        sources: Sequence["SourceDriver"] = (),
        sinks: Sequence["SinkDriver"] = (),
        firing_target: Optional[int] = None,
        max_states: int = 10_000,
        value_exact: bool = False,
        functions=None,
    ) -> Optional[str]:
        """Install the steady-state detector for a run up to *horizon*.

        *horizon* is in native units or rational seconds (floored to the
        tick grid like :meth:`~repro.runtime.events.EventQueue.run_until`).
        Returns a refusal message (and leaves the engine naive) when the
        configuration cannot fast-forward -- see
        :func:`repro.engine.steady_state.fast_forward_refusal`; callers
        record it like a ``SweepReport`` warning.  Calling again (a second
        ``run`` on the same simulation) refreshes the horizon and firing
        target but keeps the learned state table.

        ``value_exact=True`` folds buffer contents, stimulus state and the
        state of the *functions* mapping (name -> ``FunctionSpec`` with
        ``get_state``) into the periodicity key, making jumps exact for
        data values too; callers must have qualified the configuration
        first (every stimulus declared periodic, every function
        ``jump_exact``).  Installing the value-exact detector arms
        incremental per-slot value digests on every reachable buffer
        (:meth:`~repro.graph.circular_buffer.CircularBuffer.enable_value_digests`),
        so subsequent writes carry a small constant digest cost and the
        per-anchor-completion sampling does O(changed-since-last-sample)
        work instead of re-walking every buffer.
        """
        from repro.engine.steady_state import SteadyState, fast_forward_refusal

        refusal = fast_forward_refusal(self.policy, self.queue.timebase)
        if refusal is not None:
            self._steady = None
            return refusal
        if not isinstance(horizon, int):
            horizon = self.queue.timebase.ticks_floor(as_rational(horizon))
        if self._steady is not None:
            self._steady.horizon = horizon
            self._steady.firing_target = firing_target
            return None
        self._steady = SteadyState(
            self,
            horizon=horizon,
            extra_state=extra_state,
            sources=sources,
            sinks=sinks,
            firing_target=firing_target,
            max_states=max_states,
            value_exact=value_exact,
            functions=functions,
        )
        return None

    # ------------------------------------------------------------------ build
    def register_task(self, task: RuntimeTask) -> None:
        """Add *task* to the fleet; registration order is the static priority
        order (it matches the extraction order the seed dispatcher scanned)."""
        self._index[task] = len(self.tasks)
        self.tasks.append(task)

    def wire_buffers(self) -> None:
        """Build the reverse dependency index: subscribe one waker per buffer
        so that a moved produced floor wakes the buffer's readers and a moved
        consumed floor wakes its writers.  Call once, after all tasks are
        registered and the queue's time base (if any) is set -- response
        times are pre-converted to the queue's native units here so the
        firing hot path only adds them.  The index itself is skipped in
        polling mode, which re-scans everything."""
        queue = self.queue
        for task in self.tasks:
            task.wcet_internal = queue.to_internal(task.wcet)
        if self.platform_mode:
            bind = getattr(self.policy, "bind", None)
            if bind is not None:
                bind(self.tasks)
            # Seed the busy accumulators so idle processors report 0 busy
            # time instead of being absent from the accounting.
            for processor in getattr(self.policy, "processors", ()):
                self._busy_internal.setdefault(processor.name, 0)
            # Partitioned policies pin every task to one processor; warming
            # the scaled-duration cache here keeps the firing hot path free
            # of Fraction division even on heterogeneous platforms.
            processor_of = getattr(self.policy, "processor_of", None)
            if callable(processor_of):
                for task in self.tasks:
                    self._duration_on(task, processor_of(task))
        # The compiled kernel needs pre-resolvable state: indexed dispatch
        # (pass order), boolean policies (no processors/preemption) and an
        # integer-tick clock (wcets as plain ints).
        applicable = (
            self.mode == "ready-set"
            and not self.platform_mode
            and queue.timebase is not None
        )
        if self._kernel_request == "on" and not applicable:
            raise ValueError(
                "kernel='on' requires ready-set dispatch under a boolean "
                "policy on an integer-tick time base"
            )
        self.kernel_active = applicable and self._kernel_request != "off"
        if self.kernel_active:
            self._kernel_trivial = type(self.policy) is SelfTimedUnbounded
            for task in self.tasks:
                task.bind_windows()
        if self.mode == "polling":
            return
        readers: Dict[CircularBuffer, List[RuntimeTask]] = {}
        writers: Dict[CircularBuffer, List[RuntimeTask]] = {}
        for task in self.tasks:
            for access in task.task.reads:
                dependents = readers.setdefault(task.buffers[access.buffer], [])
                if task not in dependents:
                    dependents.append(task)
            for access in task.task.writes:
                dependents = writers.setdefault(task.buffers[access.buffer], [])
                if task not in dependents:
                    dependents.append(task)
        waker = self._index_waker if self.kernel_active else self._waker
        for buffer, dependents in readers.items():
            buffer.watch_tokens(waker(dependents))
        for buffer, dependents in writers.items():
            buffer.watch_space(waker(dependents))

    def _waker(self, dependents: Sequence[RuntimeTask]) -> Callable[[], None]:
        def wake() -> None:
            for task in dependents:
                self.wake_task(task)

        return wake

    def _index_waker(self, dependents: Sequence[RuntimeTask]) -> Callable[[], None]:
        """Compiled-kernel waker: dependent indices pre-resolved, ready-set
        pushes inlined.  Wake-for-wake identical to :meth:`_waker` -- the
        dispatch event is scheduled exactly when a non-busy dependent was
        pushed (and :meth:`schedule_dispatch` is idempotent anyway)."""
        pairs = [(task, self._index[task]) for task in dependents]
        ready = self._ready

        def wake() -> None:
            woke = False
            for task, index in pairs:
                if task.busy or (task.one_shot and task.fired_once):
                    continue
                ready.push(index)
                woke = True
            if woke and not self._in_dispatch:
                self.schedule_dispatch()

        return wake

    # ------------------------------------------------------------------ wakes
    def wake_task(self, task: RuntimeTask) -> None:
        """Mark *task* for (re-)examination at the next dispatch."""
        if task.busy or (task.one_shot and task.fired_once):
            return
        if self.mode == "ready-set":
            self._ready.push(self._index[task])
        if not self._in_dispatch:
            self.schedule_dispatch()

    def wake_tasks(self, tasks: Iterable[RuntimeTask]) -> None:
        for task in tasks:
            self.wake_task(task)

    def wake_all(self) -> None:
        """Queue the whole fleet (start-up, or after an external change)."""
        self.wake_tasks(self.tasks)

    # -------------------------------------------------------------- dispatch
    def schedule_dispatch(self) -> None:
        if self._dispatch_pending:
            return
        self._dispatch_pending = True
        self.queue.schedule(self.queue.now, self._dispatch, label="dispatch")

    def _dispatch(self) -> None:
        self._dispatch_pending = False
        self._in_dispatch = True
        try:
            if self.kernel_active:
                self._dispatch_compiled()
            elif self.mode == "polling":
                self._dispatch_polling()
            elif self.platform_mode:
                self._dispatch_platform()
            else:
                self._dispatch_ready_set()
        finally:
            self._in_dispatch = False

    def _dispatch_polling(self) -> None:
        """The seed's dispatcher: rescan the whole fleet until a fixpoint."""
        progress = True
        while progress:
            progress = False
            for task in self.tasks:
                if task.can_fire() and self.policy.allow_start(task):
                    self._start_task(task)
                    progress = True

    def _dispatch_ready_set(self) -> None:
        """Examine only woken tasks, in the polling dispatcher's pass order.

        Tasks that are eligible but denied by the policy (all processors
        busy, not next in the static order) are kept queued for the next
        dispatch, which the policy's releasing completion always schedules.
        """
        stalled: List[int] = []
        while True:
            index = self._ready.pop()
            if index is None:
                break
            task = self.tasks[index]
            if not task.can_fire():
                continue  # re-queued by the next relevant buffer change
            if not self.policy.allow_start(task):
                stalled.append(index)
                continue
            self._start_task(task)
        for index in stalled:
            self._ready.push(index)

    def _dispatch_compiled(self) -> None:
        """The compiled kernel's hot loop: :meth:`_dispatch_ready_set` with
        eligibility inlined over pre-bound windows and cached floors.

        Same pop order, same eligibility semantics (reads before writes,
        first failure wins), same stalled re-queueing -- traces are
        bit-identical to the interpreted loop; only dict lookups, method
        calls and Fraction arithmetic are gone.  Under the trivial
        self-timed policy the per-firing policy calls are skipped outright
        (they are no-ops by definition).
        """
        ready = self._ready
        tasks = self.tasks
        policy = self.policy
        trivial = self._kernel_trivial
        stalled: Optional[List[int]] = None
        while True:
            index = ready.pop()
            if index is None:
                break
            task = tasks[index]
            if task.busy or not task.active or (task.one_shot and task.fired_once):
                continue
            eligible = True
            for _, count, buffer, window in task._read_windows:
                floor = buffer._producer_floor_cache
                if floor is None:
                    floor = buffer._producer_floor()
                if window.acquired + count > floor:
                    eligible = False
                    break
            if eligible:
                for _, count, buffer, window in task._write_windows:
                    if buffer._consumers:
                        floor = buffer._consumer_floor_cache
                        if floor is None:
                            floor = buffer._consumer_floor()
                    else:
                        floor = 0
                    if window.acquired + count - floor > buffer.capacity:
                        eligible = False
                        break
            if not eligible:
                continue  # re-queued by the next relevant buffer change
            if not trivial and not policy.allow_start(task):
                if stalled is None:
                    stalled = []
                stalled.append(index)
                continue
            self._start_task_compiled(task)
        if stalled:
            for index in stalled:
                ready.push(index)

    def _dispatch_platform(self) -> None:
        """Ready-set dispatch under the rich platform protocol.

        The loop mirrors :meth:`_dispatch_ready_set` exactly -- same pop
        order, same can-fire check, same stalled re-queueing -- so a
        degenerate platform policy (no preemption, unit speeds) schedules
        the very same events in the very same order as its legacy boolean
        counterpart: traces are bit-identical.  On top of that, a popped
        task may be a *suspended* firing (queued by a freed processor), in
        which case the policy decides a resume instead of a start, and any
        decision may name a lower-priority victim to preempt.
        """
        policy = self.policy
        stalled: List[int] = []
        while True:
            index = self._ready.pop()
            if index is None:
                break
            task = self.tasks[index]
            if task in self._suspended:
                decision = policy.decide_resume(task)
                if decision is None:
                    stalled.append(index)
                    continue
                if decision.preempt is not None:
                    self._preempt(decision.preempt)
                self._resume_firing(task, decision.processor)
                continue
            if not task.can_fire():
                continue  # re-queued by the next relevant buffer change
            decision = policy.decide_start(task)
            if decision is None:
                stalled.append(index)
                continue
            if decision.preempt is not None:
                self._preempt(decision.preempt)
            self._start_platform(task, decision.processor)
        for index in stalled:
            self._ready.push(index)

    # -------------------------------------------------------------- execution
    def _start_task(self, task: RuntimeTask) -> None:
        start = self.queue.now
        values = task.start_firing()
        self.policy.on_start(task)
        self.started_firings += 1

        def complete() -> None:
            executed = task.finish_firing(values)
            self.completed_firings += 1
            queue = self.queue
            self._last_completion = queue.now
            trace = self.trace
            if trace.firings_enabled:
                # The start is recomputed from the completion instant rather
                # than closed over: a steady-state jump translates the
                # pending completion event, and ``now - wcet`` translates
                # with it (identical to the closed-over start otherwise).
                trace.record_firing(
                    task.producer_key(),
                    queue.to_time(queue.now - task.wcet_internal),
                    queue.to_time(queue.now),
                    executed,
                )
            if trace.occupancy_enabled:
                for access in task.task.writes:
                    buffer = task.buffers[access.buffer]
                    trace.record_occupancy(buffer.name, buffer.occupancy())
            self.policy.on_complete(task)
            if self.on_complete is not None:
                self.on_complete(task)
            self.wake_task(task)
            self.schedule_dispatch()
            steady = self._steady
            if steady is not None and task is steady.anchor:
                steady.on_anchor_completion()

        self.queue.schedule(start + task.wcet_internal, complete, label=task._complete_label)

    def _start_task_compiled(self, task: RuntimeTask) -> None:
        """:meth:`_start_task` over the pre-bound fast paths (identical
        event schedule, trace records and policy interaction)."""
        queue = self.queue
        values = task.start_firing_fast()
        if not self._kernel_trivial:
            self.policy.on_start(task)
        self.started_firings += 1

        def complete() -> None:
            executed = task.finish_firing_fast(values)
            self.completed_firings += 1
            now = queue.now
            self._last_completion = now
            trace = self.trace
            if trace.firings_enabled:
                trace.record_firing(
                    task._key,
                    queue.to_time(now - task.wcet_internal),
                    queue.to_time(now),
                    executed,
                )
            if trace.occupancy_enabled:
                for _, _, buffer, _ in task._write_windows:
                    trace.record_occupancy(buffer.name, buffer.occupancy())
            if not self._kernel_trivial:
                self.policy.on_complete(task)
            if self.on_complete is not None:
                self.on_complete(task)
            self.wake_task(task)
            self.schedule_dispatch()
            steady = self._steady
            if steady is not None and task is steady.anchor:
                steady.on_anchor_completion()

        queue.schedule(queue.now + task.wcet_internal, complete, label=task._complete_label)

    # ------------------------------------------------- platform-mode execution
    def _duration_on(self, task: RuntimeTask, processor: "Processor") -> Union[int, Fraction]:
        """Native-unit occupancy of one firing of *task* on *processor*
        (``wcet / speed``, cached per pair; exact -- raises
        :class:`~repro.util.rational.TimeBaseError` when a scaled duration
        falls off an integer tick grid)."""
        if processor.speed == 1:
            return task.wcet_internal
        key = (task, processor.name)
        duration = self._duration_cache.get(key)
        if duration is None:
            duration = self.queue.to_internal(task.wcet / processor.speed)
            self._duration_cache[key] = duration
        return duration

    def _start_platform(self, task: RuntimeTask, processor: "Processor") -> None:
        start = self.queue.now
        values = task.start_firing()
        self.policy.on_start(task, processor)
        self.started_firings += 1
        firing = ActiveFiring(
            task=task, values=values, start=start, processor=processor, segment_start=start
        )
        self._active[task] = firing
        firing.event = self.queue.schedule(
            start + self._duration_on(task, processor),
            lambda: self._complete_platform(firing),
            label=task._complete_label,
        )

    def _complete_platform(self, firing: ActiveFiring) -> None:
        task = firing.task
        queue = self.queue
        del self._active[task]
        executed = task.finish_firing(firing.values)
        self.completed_firings += 1
        self._last_completion = queue.now
        name = firing.processor.name
        self._busy_internal[name] = (
            self._busy_internal.get(name, 0) + queue.now - firing.segment_start
        )
        trace = self.trace
        if trace.firings_enabled:
            trace.record_firing(
                task.producer_key(), queue.to_time(firing.start), queue.to_time(queue.now), executed
            )
        if trace.occupancy_enabled:
            for access in task.task.writes:
                buffer = task.buffers[access.buffer]
                trace.record_occupancy(buffer.name, buffer.occupancy())
        self.policy.on_complete(task, firing.processor)
        if self.on_complete is not None:
            self.on_complete(task)
        self.wake_task(task)
        self._wake_suspended()
        self.schedule_dispatch()
        steady = self._steady
        if steady is not None and task is steady.anchor:
            steady.on_anchor_completion()

    def _preempt(self, victim: RuntimeTask) -> None:
        """Suspend the in-flight firing of *victim*: cancel its completion
        event and record the exact native-unit time still owed."""
        firing = self._active.pop(victim)
        queue = self.queue
        queue.cancel(firing.event)
        firing.remaining = firing.event.time - queue.now
        firing.suspended_speed = firing.processor.speed
        name = firing.processor.name
        self._busy_internal[name] = (
            self._busy_internal.get(name, 0) + queue.now - firing.segment_start
        )
        victim.suspended = True
        victim.preemptions += 1
        self._suspended[victim] = firing
        self.preemptions += 1
        self.policy.on_preempt(victim, firing.processor)

    def _resume_firing(self, task: RuntimeTask, processor: "Processor") -> None:
        """Continue a suspended firing on *processor*, re-posting the
        completion with exactly the remaining work (rescaled by the speed
        ratio when the firing migrates across speeds)."""
        firing = self._suspended.pop(task)
        task.suspended = False
        queue = self.queue
        remaining = firing.remaining
        if processor.speed != firing.suspended_speed:
            # remaining work = remaining time x old speed; exact rescale
            work = queue.to_time(remaining) * firing.suspended_speed
            remaining = queue.to_internal(work / processor.speed)
        firing.processor = processor
        firing.segment_start = queue.now
        firing.remaining = None
        firing.suspended_speed = None
        self._active[task] = firing
        firing.event = queue.schedule(
            queue.now + remaining,
            lambda: self._complete_platform(firing),
            label=task._complete_label,
        )
        self.resumes += 1
        self.policy.on_resume(task, processor)

    def _wake_suspended(self) -> None:
        """Queue every suspended firing for a resume decision.  Suspended
        tasks are ``busy`` (their inputs are consumed), so :meth:`wake_task`
        would skip them; they are pushed directly."""
        for task in self._suspended:
            self._ready.push(self._index[task])


@dataclass
class EngineRun:
    """Outcome of a standalone engine execution (no module hierarchy)."""

    engine: ExecutionEngine
    queue: EventQueue
    trace: TraceRecorder
    #: fast-forward refusals and give-ups (empty when disabled or clean)
    warnings: List[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.warnings is None:
            self.warnings = []

    @property
    def fast_forwarded(self) -> bool:
        """True when at least one steady-state jump skipped simulated work."""
        steady = self.engine.steady_state
        return steady is not None and steady.jumps > 0

    @property
    def makespan(self):
        """Completion time of the last finished firing (engine-tracked, so
        it is correct at every trace level, including ``"off"``)."""
        return self.engine.last_completion_time

    def firing_sequence(self) -> List[str]:
        """Task names in completion order (with one-processor policies this
        equals the start order, i.e. the executed schedule).  Requires the
        default ``"full"`` trace level -- the sequence is read off the
        recorded firings."""
        return [firing.task.rsplit(":", 1)[-1] for firing in self.trace.firings]


def run_tasks(
    tasks: Sequence[RuntimeTask],
    *,
    policy: Optional[SchedulerPolicy] = None,
    platform: Optional["Platform"] = None,
    mode: str = "ready-set",
    stop_after_firings: Optional[int] = None,
    horizon=Fraction(10**9),
    trace: Optional[TraceRecorder] = None,
    time_base: Union[str, TimeBase, None] = "auto",
    fast_forward: Union[bool, str] = "auto",
    kernel: str = "auto",
) -> EngineRun:
    """Execute *tasks* data-driven on a fresh event queue.

    Runs until the queue drains, *horizon* is reached, or (when
    *stop_after_firings* is given) at least that many firings completed --
    whichever comes first.  This is the entry point for scheduler experiments
    and benchmarks that need the execution layer without compiling an OIL
    program.

    ``platform`` is a :class:`~repro.platform.model.Platform` shorthand for
    ``policy=platform.policy()`` (its natural default policy); pass a
    platform policy via ``policy=`` directly for preemptive / partitioned
    variants.  Mutually exclusive with ``policy``.

    ``time_base`` selects the queue's time representation: ``"auto"`` (the
    default) derives an integer-tick base from the tasks' response times --
    including their speed-scaled variants on every platform processor -- and
    falls back to exact fractions when none exists, ``"ticks"`` requires one
    (raising :class:`~repro.util.rational.TimeBaseError` otherwise),
    ``"fraction"`` (or ``None``) keeps the legacy fraction-based queue, and a
    ready :class:`~repro.util.rational.TimeBase` is used as given.  Traces
    are bit-identical across all choices.

    ``fast_forward`` selects the steady-state detector
    (:mod:`repro.engine.steady_state`):

    * ``"auto"`` (the default) installs a *value-exact* detector when every
      function the fleet invokes declares jump-exact behaviour
      (``stateless``, ``jump_invariant`` or ``get_state`` -- see
      :class:`~repro.runtime.functions.FunctionSpec`); the run is then
      bit-identical to naive execution, data values included.  Fleets with
      undeclared functions run naively, recording an
      ``undeclared-function`` :class:`~repro.util.runwarnings.RunWarning`;
      engine-level refusals fall back silently (auto never promised a
      jump).
    * ``True`` installs the legacy *timing-exact* detector: once the
      execution state repeats, the remaining horizon is skipped in O(1)
      per period with exactly the aggregate counters and trace a naive run
      would produce, but replayed data values are periodic-stale.
      Refusals (speed-migrating preemptive policies, fraction-mode queues)
      are recorded in ``EngineRun.warnings``.
    * ``False`` runs naively.

    ``kernel`` selects the compiled dispatch kernel (see
    :class:`ExecutionEngine`).
    """
    from repro.runtime.events import EventQueue
    from repro.runtime.trace import TraceRecorder

    if platform is not None:
        if policy is not None:
            raise ValueError("pass either policy= or platform=, not both")
        policy = platform.policy()

    timebase: Optional[TimeBase]
    if time_base is None or time_base == "fraction":
        timebase = None
    elif isinstance(time_base, TimeBase):
        timebase = time_base
    elif time_base in ("auto", "ticks"):
        if time_base == "auto" and getattr(policy, "migrates_across_speeds", False):
            # A firing preempted at one speed and resumed at another owes a
            # rescaled remainder that no finite tick grid is closed under;
            # "auto" keeps the always-exact fractions (an explicit "ticks"
            # request is honoured below and may raise at the migration).
            timebase = None
        else:
            durations = [task.wcet for task in tasks]
            # A platform policy schedules wcet / speed; the tick grid must
            # cover those scaled durations too, or exact ticks are
            # impossible.
            policy_platform = getattr(policy, "platform", None)
            if policy_platform is not None:
                durations.extend(policy_platform.scaled_durations(durations))
            timebase = TimeBase.for_durations(durations)
        if timebase is None and time_base == "ticks":
            raise TimeBaseError("no positive response time to derive a tick resolution from")
    else:
        raise ValueError(f"unknown time base {time_base!r}")
    queue = EventQueue(timebase)
    trace = trace if trace is not None else TraceRecorder()
    engine = ExecutionEngine(queue, trace, policy=policy, mode=mode, kernel=kernel)
    for task in tasks:
        engine.register_task(task)
    engine.wire_buffers()
    engine.wake_all()
    engine.schedule_dispatch()
    warnings: List[str] = []
    if fast_forward == "auto":
        from repro.util.runwarnings import RunWarning

        specs = {}
        qualified = True
        undeclared: List[str] = []
        for task in tasks:
            for name in task.function_names():
                if name in specs:
                    continue
                try:
                    spec = task.registry.get(name)
                except KeyError:
                    # A synthetic fleet whose fallback name is unregistered:
                    # nothing to declare on, fall back silently.
                    qualified = False
                    continue
                specs[name] = spec
                if not spec.jump_exact:
                    qualified = False
                    undeclared.append(name)
        if undeclared:
            warnings.append(
                RunWarning(
                    "fast-forward (auto) fell back to naive execution: "
                    f"function(s) {', '.join(sorted(undeclared))} declare no "
                    "jump behaviour (stateless, jump_invariant or get_state)",
                    "undeclared-function",
                )
            )
        if qualified:
            # Value periods are multiples of the timing period, so the
            # value-exact detector gets a larger state budget; refusals are
            # silent -- "auto" never promised a jump.
            engine.enable_fast_forward(
                horizon,
                firing_target=stop_after_firings,
                max_states=16_384,
                value_exact=True,
                functions=specs,
            )
    elif fast_forward:
        refusal = engine.enable_fast_forward(horizon, firing_target=stop_after_firings)
        if refusal is not None:
            warnings.append(refusal)
    if stop_after_firings is None:
        queue.run_until(horizon)
    else:
        target = stop_after_firings
        queue.run_until(horizon, stop=lambda: engine.completed_firings >= target)
    if engine.steady_state is not None:
        warnings.extend(engine.steady_state.warnings)
    return EngineRun(engine=engine, queue=queue, trace=trace, warnings=warnings)
