"""Synthetic task programs for scheduler experiments and benchmarks.

Builders that produce fleets of :class:`~repro.runtime.tasks.RuntimeTask`
wired through circular buffers *without* compiling an OIL program, so the
execution engine can be measured and tested in isolation:

* :func:`ring_program` -- N tasks in a cycle with K circulating tokens; the
  dispatch microbenchmark workload (every firing is one event, the polling
  dispatcher pays O(N) per event while ready-set dispatch pays O(K)),
* :func:`fork_join_program` -- a split / W parallel workers / join diamond
  iterated round by round; the Fig. 4 speedup-vs-processors workload,
* :func:`tasks_from_sdf` -- one runtime task per actor of an SDF graph, so a
  static-order schedule computed by the analysis can be *executed* and its
  firing sequence compared against the generated sequential program.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataflow.analysis import repetition_vector
from repro.dataflow.sdf import SDFGraph
from repro.graph.circular_buffer import CircularBuffer
from repro.graph.taskgraph import Access, Task
from repro.runtime.functions import FunctionRegistry
from repro.runtime.tasks import RuntimeTask
from repro.util.rational import Rat, as_rational
from repro.util.validation import check_positive, require


def _make_task(
    name: str,
    function: str,
    reads: Sequence[Tuple[CircularBuffer, int]],
    writes: Sequence[Tuple[CircularBuffer, int]],
    registry: FunctionRegistry,
    wcet: Rat,
    instance: str,
) -> RuntimeTask:
    """One black-box style runtime task bound directly to its buffers."""
    task = Task(name=name, kind="call", function=function, firing_duration=wcet)
    task.reads = [Access(buffer.name, count) for buffer, count in reads]
    task.writes = [Access(buffer.name, count) for buffer, count in writes]
    buffers = {buffer.name: buffer for buffer, _ in (*reads, *writes)}
    runtime_task = RuntimeTask(
        name=name,
        task=task,
        instance=instance,
        registry=registry,
        buffers=buffers,
        wcet=as_rational(wcet),
    )
    key = runtime_task.producer_key()
    for buffer, _ in reads:
        buffer.register_consumer(key)
    for buffer, _ in writes:
        buffer.register_producer(key)
    return runtime_task


def ring_program(
    task_count: int = 200,
    *,
    tokens: int = 8,
    wcet: Rat = Fraction(1, 1000),
    capacity: int = 2,
    stagger: int = 1,
    buffer_factory=CircularBuffer,
) -> List[RuntimeTask]:
    """A cycle of *task_count* tasks with *tokens* values circulating.

    Task ``i`` consumes one value from buffer ``i`` and produces one into
    buffer ``(i+1) % task_count``; the initial values are spread evenly over
    the ring, so about *tokens* tasks are eligible at any instant.  Token
    count is conserved, hence the program runs forever -- callers bound the
    execution by firing count or horizon.

    With ``stagger > 1`` task ``i`` gets response time ``wcet * (1 + i %
    stagger)``, desynchronising completions so that (almost) every firing
    triggers its own dispatch round -- the dispatch-bound regime the
    microbenchmark measures.  ``buffer_factory`` lets benchmarks substitute
    an instrumented or reference buffer implementation.
    """
    check_positive(task_count, "task_count")
    check_positive(tokens, "tokens")
    check_positive(stagger, "stagger")
    require(tokens < task_count, "the ring needs fewer tokens than tasks")
    require(capacity >= 2, "ring buffers need capacity >= 2 (one in flight + one initial)")

    seeded = {(i * task_count) // tokens for i in range(tokens)}
    buffers = [
        buffer_factory(
            f"ring/b{i}", capacity, initial_values=[float(i)] if i in seeded else []
        )
        for i in range(task_count)
    ]
    registry = FunctionRegistry()
    registry.register("step", lambda value: value + 1.0, description="pass the token on")
    return [
        _make_task(
            f"t{i}",
            "step",
            reads=[(buffers[i], 1)],
            writes=[(buffers[(i + 1) % task_count], 1)],
            registry=registry,
            wcet=as_rational(wcet) * (1 + i % stagger),
            instance="ring",
        )
        for i in range(task_count)
    ]


def fork_join_program(
    width: int = 8,
    *,
    worker_wcet: Rat = Fraction(1),
    overhead_wcet: Rat = Fraction(1, 1000),
) -> List[RuntimeTask]:
    """A split → *width* parallel workers → join diamond, iterated in rounds.

    A single token on the feedback buffer lets ``split`` hand one value to
    every worker; ``join`` collects all results and returns the token.  With
    ``BoundedProcessors(n)`` each round takes about ``ceil(width / n)`` worker
    durations, so the makespan over a fixed number of rounds yields the
    Fig. 4-style speedup curve.
    """
    check_positive(width, "width")
    feedback = CircularBuffer("forkjoin/feedback", 2, initial_values=[0.0])
    inputs = [CircularBuffer(f"forkjoin/in{i}", 2) for i in range(width)]
    outputs = [CircularBuffer(f"forkjoin/out{i}", 2) for i in range(width)]

    registry = FunctionRegistry()
    registry.register(
        "split", lambda value: tuple(value for _ in range(width)) if width > 1 else value,
        description="hand the round value to every worker",
    )
    registry.register("work", lambda value: value + 1.0, description="one unit of work")
    registry.register(
        "join",
        lambda *values: sum(values) / len(values),
        description="combine the round results",
    )

    tasks = [
        _make_task(
            "split",
            "split",
            reads=[(feedback, 1)],
            writes=[(buffer, 1) for buffer in inputs],
            registry=registry,
            wcet=overhead_wcet,
            instance="forkjoin",
        )
    ]
    for i in range(width):
        tasks.append(
            _make_task(
                f"w{i}",
                "work",
                reads=[(inputs[i], 1)],
                writes=[(outputs[i], 1)],
                registry=registry,
                wcet=worker_wcet,
                instance="forkjoin",
            )
        )
    tasks.append(
        _make_task(
            "join",
            "join",
            reads=[(buffer, 1) for buffer in outputs],
            writes=[(feedback, 1)],
            registry=registry,
            wcet=overhead_wcet,
            instance="forkjoin",
        )
    )
    return tasks


def tasks_from_sdf(
    graph: SDFGraph,
    *,
    iterations: int = 1,
    registry: Optional[FunctionRegistry] = None,
) -> List[RuntimeTask]:
    """One runtime task per actor of *graph*, buffers per edge.

    Edge buffers are sized for *iterations* complete graph iterations plus
    the initial tokens, so capacity never throttles the execution within that
    budget -- the policy alone shapes the schedule.  Actor functions default
    to trivial value shufflers when no *registry* is supplied.
    """
    check_positive(iterations, "iterations")
    q = repetition_vector(graph)
    buffers: Dict[str, CircularBuffer] = {}
    for name, edge in graph.edges.items():
        capacity = q[edge.producer] * edge.production * iterations + max(edge.initial_tokens, 1)
        buffers[name] = CircularBuffer(
            f"{graph.name}/{name}", capacity, initial_values=[0.0] * edge.initial_tokens
        )

    if registry is None:
        registry = FunctionRegistry()

    tasks: List[RuntimeTask] = []
    for actor_name in graph.actors:
        reads = [(buffers[e.name], e.consumption) for e in graph.in_edges(actor_name)]
        writes = [(buffers[e.name], e.production) for e in graph.out_edges(actor_name)]
        if actor_name not in registry:
            registry.register(
                actor_name,
                _actor_function(
                    [count for _, count in reads], [count for _, count in writes]
                ),
                description=f"synthetic body of SDF actor {actor_name!r}",
            )
        tasks.append(
            _make_task(
                actor_name,
                actor_name,
                reads=reads,
                writes=writes,
                registry=registry,
                wcet=graph.actors[actor_name].firing_duration,
                instance=graph.name,
            )
        )
    return tasks


def _actor_function(read_counts: Sequence[int], write_counts: Sequence[int]):
    """A trivial actor body with the right input/output shape: averages its
    inputs and replicates the average on every output."""

    def body(*inputs):
        flat: List[float] = []
        for value in inputs:
            if isinstance(value, list):
                flat.extend(float(v) for v in value)
            else:
                flat.append(float(value))
        value = sum(flat) / len(flat) if flat else 0.0
        produced = [
            [value] * count if count > 1 else value for count in write_counts
        ]
        if not produced:
            return None
        if len(produced) == 1:
            return produced[0]
        return tuple(produced)

    return body
