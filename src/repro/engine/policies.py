"""Pluggable scheduling policies of the execution engine.

The dispatcher (:mod:`repro.engine.dispatcher`) decides *when* a task is
eligible -- enough tokens on every read buffer, enough space on every write
buffer, loop active, no firing in flight.  A :class:`SchedulerPolicy` decides
*whether* an eligible task may start *now*, which is where platform models
plug in:

* :class:`SelfTimedUnbounded` -- every eligible task starts immediately: one
  processor per task, the virtual unbounded-parallel hardware the paper's CTA
  analysis bounds.  This is the default and reproduces the seed simulator's
  semantics exactly.
* :class:`BoundedProcessors` -- list scheduling on ``n`` identical
  processors: at most ``n`` firings are in flight at any instant, eligible
  tasks are started in static (extraction) order as processors free up.  This
  expresses the Fig. 4 speedup-vs-cores scenario axis.
* :class:`StaticOrder` -- a single processor executing a fixed (cyclic)
  firing sequence, the schedule a sequential language forces the programmer
  to spell out (Sec. III-A / Fig. 2b).  This absorbs the
  :mod:`repro.baselines.sequential_schedule` baseline into the engine: the
  baseline's generated schedule *is* the policy's firing order.

A policy never decides eligibility -- it only gates starts -- so every policy
observes the same data-driven semantics and the same produced values; policies
only reshape the timing.

This boolean protocol cannot express *where* a firing runs or that it is
suspended with work left; those are the platform protocol's decisions
(:mod:`repro.platform.policies`), which re-expresses all three policies here
as degenerate platforms with bit-identical traces and adds preemptive
fixed-priority and partitioned heterogeneous scheduling on top.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Protocol, Sequence, runtime_checkable

from repro.util.validation import check_positive, require

if TYPE_CHECKING:  # import only for annotations: runtime.simulator imports us
    from repro.runtime.tasks import RuntimeTask


def _task_name(task: "RuntimeTask") -> str:
    """Default :class:`StaticOrder` schedule key: the bare task name.

    A module-level function (not a lambda) so a default-keyed policy pickles
    by reference -- process-parallel sweeps ship policy instances to worker
    processes.
    """
    return task.name


@runtime_checkable
class SchedulerPolicy(Protocol):
    """Start-gating protocol implemented by all scheduling policies."""

    def allow_start(self, task: RuntimeTask) -> bool:
        """May this *eligible* task start a firing right now?"""
        ...

    def on_start(self, task: RuntimeTask) -> None:
        """A firing of *task* started (account the processor it occupies)."""
        ...

    def on_complete(self, task: RuntimeTask) -> None:
        """The in-flight firing of *task* completed (release its processor)."""
        ...

    def reset(self) -> None:
        """Drop run-scoped state.  The engine calls this when it is
        constructed, so one policy object can be reused across runs (a run
        stopped mid-flight would otherwise leak busy-processor accounting
        into the next one)."""
        ...

    # Policies additionally expose ``steady_state_key()`` -- a hashable
    # summary of all state that influences future scheduling decisions.  The
    # steady-state fast-forward detector folds it into its periodicity key;
    # a policy without the method opts out of fast-forward (the detector
    # refuses rather than guessing what hidden state the policy carries).


class SelfTimedUnbounded:
    """Self-timed execution on virtually unbounded parallel hardware.

    Every task owns its own processor, so an eligible task always starts
    immediately -- the execution model the CTA analysis bounds and the
    semantics of the seed dispatcher.
    """

    def allow_start(self, task: RuntimeTask) -> bool:
        return True

    def on_start(self, task: RuntimeTask) -> None:
        pass

    def on_complete(self, task: RuntimeTask) -> None:
        pass

    def reset(self) -> None:
        pass

    def steady_state_key(self) -> tuple:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SelfTimedUnbounded()"


class BoundedProcessors:
    """List scheduling on *processors* identical processors.

    At most *processors* firings are in flight simultaneously; the dispatcher
    offers eligible tasks in static order, so ties are broken by extraction
    order (the classical list-scheduling priority).  With ``processors=1``
    the execution is fully serialised; as the count grows the makespan
    approaches the self-timed (unbounded) execution, which is exactly the
    Fig. 4 speedup experiment.
    """

    def __init__(self, processors: int) -> None:
        check_positive(processors, "processors")
        self.processors = processors
        self.busy = 0
        #: completions that arrived without a matching start (a run stopped
        #: mid-flight whose policy was reset/reused); clamped, and counted
        #: so the anomaly stays observable
        self.stale_completions = 0

    def allow_start(self, task: RuntimeTask) -> bool:
        return self.busy < self.processors

    def on_start(self, task: RuntimeTask) -> None:
        self.busy += 1

    def on_complete(self, task: RuntimeTask) -> None:
        # A run stopped mid-flight leaves completions that never ran; when
        # the policy is then reset (or reused) while such a stale completion
        # still fires, an unguarded decrement would drive ``busy`` negative
        # and over-admit starts forever after.  Clamp instead of going
        # negative and record the anomaly.
        if self.busy > 0:
            self.busy -= 1
        else:
            self.stale_completions += 1

    def reset(self) -> None:
        self.busy = 0
        self.stale_completions = 0

    def steady_state_key(self) -> tuple:
        return (self.busy,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoundedProcessors({self.processors})"


class StaticOrder:
    """A single processor executing a fixed firing sequence.

    *order* lists one entry per firing; when *cyclic* (the default) the
    sequence repeats indefinitely, which is the ``loop{...} while(1)``
    wrapper of the generated sequential program.  One-shot (initialisation)
    tasks are outside the steady-state schedule and are admitted whenever
    the processor is free -- but, like every firing on this single
    processor, never while another firing is in flight.

    Schedule entries are matched against ``key(task)`` -- bare ``task.name``
    by default, which is unambiguous for SDF-derived and synthetic task sets
    (one task per actor).  For compiled OIL programs, where distinct module
    instances may contain same-named tasks, pass ``key=lambda t:
    t.producer_key()`` and spell the schedule in ``"instance:name"`` form.

    Use :func:`repro.baselines.sequential_schedule.static_order_policy` to
    build this policy directly from an SDF graph's deadlock-free schedule.
    """

    def __init__(
        self,
        order: Sequence[str],
        *,
        cyclic: bool = True,
        key: Optional[Callable[[RuntimeTask], str]] = None,
    ) -> None:
        require(len(order) > 0, "a static-order schedule needs at least one entry")
        self.order: List[str] = list(order)
        self.cyclic = cyclic
        self.position = 0
        self._in_flight = False
        self._key = key if key is not None else _task_name

    def current(self) -> Optional[str]:
        """Schedule entry the policy admits next (None when exhausted)."""
        if not self.cyclic and self.position >= len(self.order):
            return None
        return self.order[self.position % len(self.order)]

    def allow_start(self, task: RuntimeTask) -> bool:
        # One-shots too must wait for the processor: admitting them while a
        # steady-state firing is in flight would overlap two firings on the
        # supposedly single processor.
        if self._in_flight:
            return False
        if task.one_shot:
            return True
        return self._key(task) == self.current()

    def on_start(self, task: RuntimeTask) -> None:
        self._in_flight = True

    def on_complete(self, task: RuntimeTask) -> None:
        if not self._in_flight:
            # stale completion of a run stopped mid-flight whose policy was
            # reset/reused: ignore it instead of advancing the schedule past
            # entries that never ran (same hardening as BoundedProcessors)
            return
        self._in_flight = False
        if not task.one_shot:
            # only steady-state firings consume a schedule entry
            self.position += 1

    def reset(self) -> None:
        self.position = 0
        self._in_flight = False

    def steady_state_key(self) -> tuple:
        # The cyclic schedule only cares about the position modulo its
        # length; the absolute position grows forever and would make every
        # state unique.  A finite schedule keeps the absolute position (no
        # two states with different remaining work may ever be identified).
        position = self.position % len(self.order) if self.cyclic else self.position
        return (position, self._in_flight)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StaticOrder({len(self.order)} firings, cyclic={self.cyclic})"
