"""Pluggable scheduler engine with indexed ready-set dispatch.

The execution layer of the reproduction: buffers report availability changes
through a reverse dependency index, a pass-structured ready set dispatches
exactly the tasks those changes may have enabled, and a pluggable
:class:`~repro.engine.policies.SchedulerPolicy` decides which eligible task
occupies a processor when.

* :mod:`repro.engine.policies` -- the legacy boolean start-gate protocol and
  the three built-in policies (self-timed unbounded, bounded processors,
  static order),
* :mod:`repro.engine.dispatcher` -- the ready-set dispatch core, the polling
  reference it is verified against, platform-mode execution (suspend/resume
  of in-flight firings, per-processor accounting) and a standalone task
  runner,
* :mod:`repro.engine.synthetic` -- synthetic task programs (ring, fork/join,
  SDF-derived) for scheduler experiments and benchmarks.

Real platform models -- processor sets with speeds, preemptive fixed
priorities, partitioned heterogeneous scheduling -- live in
:mod:`repro.platform` and plug into the same engine through the rich
``decide_start`` protocol.

The simulator (:mod:`repro.runtime.simulator`) instantiates compiled OIL
programs on top of this engine; benchmarks and scheduler tests drive it
directly.  See ARCHITECTURE.md for the full pipeline.
"""

from repro.engine.dispatcher import ActiveFiring, EngineRun, ExecutionEngine, ReadySet, run_tasks
from repro.engine.policies import (
    BoundedProcessors,
    SchedulerPolicy,
    SelfTimedUnbounded,
    StaticOrder,
)
from repro.engine.synthetic import fork_join_program, ring_program, tasks_from_sdf

__all__ = [
    "ActiveFiring",
    "EngineRun",
    "ExecutionEngine",
    "ReadySet",
    "run_tasks",
    "BoundedProcessors",
    "SchedulerPolicy",
    "SelfTimedUnbounded",
    "StaticOrder",
    "fork_join_program",
    "ring_program",
    "tasks_from_sdf",
]
