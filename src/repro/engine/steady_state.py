"""Online steady-state detection and O(1) fast-forward.

Self-timed executions of consistent programs converge to a *periodic regime*
-- the paper's core observation, computed offline by
:func:`repro.dataflow.statespace.self_timed_statespace` via state-space
exploration.  This module detects the same periodicity *online*, while the
engine simulates, and exploits it: once the execution state repeats, the
remaining horizon is covered in O(1) per period batch instead of O(events).

How it works
------------
Every time the *anchor* task (the first steady-state task of the fleet)
completes a firing, the detector captures a canonical key of the entire
execution state:

* per buffer: the window positions of every producer/consumer relative to
  the buffer's least-advanced window (absolute positions grow forever; the
  *relative* layout is what repeats),
* the pending event multiset in execution order, as ``(time - now, rank,
  label)`` -- completion events, driver ticks and the dispatch event, with
  same-instant ties kept in their sequence order (ties execute in that
  order, so it is part of the state),
* per task: busy/suspended/active flags, phase progress, and for platform
  policies the occupied processor with the elapsed segment time (running)
  or the exact remaining work and accrual speed (suspended),
* the ready set's queued indices, the policy's
  ``steady_state_key()`` and any simulator-supplied extra state (mode
  schedule phases).

The components are canonicalised through the same
:func:`~repro.dataflow.statespace.canonical_state_key` helper as the offline
analysis, so both notions of "state" agree (cross-checked by tests).  All
components are *shift-invariant*: translating the whole execution in time
does not change the key.

When a key repeats, the time between the two occurrences is (a multiple of)
the steady-state period ``delta`` and the counter differences are exact
per-``delta`` increments.  The detector then *jumps* ``K`` periods at once:

* every pending event and the clock advance rigidly by ``K * delta``
  (:meth:`~repro.runtime.events.EventQueue.shift_pending`),
* engine counters, per-task firing/preemption counters, per-processor busy
  time, driver production/consumption counters and the trace's streaming
  statistics advance by ``K`` times their per-period delta,
* every buffer window advances by ``K`` times its buffer's per-period
  advance (caches translated, no watcher fires: relative state is unchanged,
  so nothing new is enabled),
* with unbounded trace retention, the stored trace records and sink values
  of the canonical period are replayed ``K`` times with shifted timestamps,
  keeping even the stored trace bit-identical to a naive run.

Afterwards the simulation resumes naively; further anchor completions hit
the same (shift-invariant) keys and trigger further jumps until the horizon
is within one period.

Exactness contract
------------------
Timing in this engine is value-independent (guards gate *data*, never token
counts or durations), so every timing-derived quantity -- completion times,
deadline misses, measured rates, busy/utilisation/energy accounting,
buffer high-water marks -- is *exactly* equal to a naive simulation in
either mode.  Data values come in two flavours:

* **timing-exact** (legacy, ``fast_forward=True``): the key covers timing
  state only; values are replayed from the canonical period, so streams
  are periodic-stale (exact for constant/periodic stimuli, approximate
  otherwise).  Finite sources that would exhaust mid-skip break the
  equivalence -- this mode stays explicitly opt-in.
* **value-exact** (``value_exact=True``, the ``fast_forward="auto"``
  path): the key additionally folds in every buffer's stored values
  (rotation-anchored, so the fold is shift-invariant), every source
  stimulus's ``state()``, the ``get_state()`` of every declared stateful
  function, and the in-flight input values of busy tasks.  A repeat of
  this key proves the skipped periods are exact copies *including data*,
  so the existing replay machinery (buffer pattern replication, sink-value
  replay, trace replay) reproduces a naive run bit-for-bit; at the jump
  each stimulus is advanced by ``K * per-period draws`` (an exact O(1)
  index move for declared-periodic stimuli -- a semantic no-op modulo
  their period, which the key repeat guarantees).  Declared function
  state needs no touching at all: the fold guarantees the live state *is*
  the canonical state on both sides of the jump.  Value-exact keys are
  folded down to a single :func:`~repro.util.digests.value_digest` (buffer
  contents would make exact tuples large), and the caller grants a larger
  ``max_states`` budget because value periods are multiples of timing
  periods.

Incremental key maintenance
---------------------------
Sampling happens at *every* anchor completion during the transient, so the
key must not re-walk the world each time (the rebuild-from-scratch fold
made the sampling phase ~7x slower than naive simulation on the PAL
decoder).  Instead, mutation sites push deltas into per-component digests
and :meth:`SteadyState.state_key` only combines what changed since the
previous sample:

* buffers maintain a per-slot :func:`~repro.util.digests.value_digest` on
  write (:meth:`~repro.graph.circular_buffer.CircularBuffer.enable_value_digests`,
  armed by the detector); the rotation anchoring that keeps the fold
  shift-invariant is applied at sample time via the producer-floor offset,
  and a per-buffer ``mutation_version`` lets untouched buffers reuse their
  combined layout+value entry verbatim,
* stimuli expose :meth:`~repro.runtime.sources.Stimulus.state_token` (for
  closed-form stimuli the integer index *is* the token) and stateful
  functions may declare ``FunctionSpec.state_version``, a monotone change
  counter that gates a cached state digest -- unchanged state is never
  re-serialised,
* the pending-event fold first settles the queue's lazy cancelled-prune
  debt (:meth:`~repro.runtime.events.EventQueue.prune_cancelled`) so only
  live events are sorted, in both key modes.

:meth:`SteadyState.state_key_slow` recomputes the identical key from
scratch -- same digest functions, none of the incremental caches -- and is
the oracle the tests cross-check after randomized operation sequences: the
incremental key must be *equal*, not merely collision-safe.

Refusals
--------
:func:`fast_forward_refusal` reports (as a :class:`RunWarning` with a
stable ``warning_code``, recorded like ``SweepReport.warnings``) why a
configuration cannot fast-forward: speed-migrating preemptive platform
policies (rescaled remainders are not closed under a tick grid -- the same
reason their ``time_base="auto"`` falls back to fractions), fraction-mode
queues, and policies that do not expose ``steady_state_key()``.  Refused
runs fall back to naive simulation.  The *value-exact qualification*
(every stimulus ``value_periodic``, every used function ``jump_exact``) is
checked by the callers (:mod:`repro.engine.dispatcher`,
:mod:`repro.runtime.simulator`), which emit ``undeclared-source`` /
``undeclared-function`` warnings on the fallback paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.dataflow.statespace import canonical_state_key
from repro.util.digests import value_digest
from repro.util.runwarnings import RunWarning

if TYPE_CHECKING:  # annotations only
    from repro.engine.dispatcher import ExecutionEngine
    from repro.graph.circular_buffer import CircularBuffer
    from repro.runtime.functions import FunctionSpec
    from repro.runtime.sources import SinkDriver, SourceDriver
    from repro.runtime.tasks import RuntimeTask


#: A jump that replays more than this many draws through an O(k)
#: ``Stimulus.advance`` (generator-backed streams) emits a structured
#: ``generator-advance`` warning: the jump still happens, but its cost is
#: linear in the skipped horizon, which defeats the point of fast-forward.
GENERATOR_ADVANCE_THRESHOLD = 10_000


def fast_forward_refusal(policy, timebase) -> Optional[str]:
    """Why steady-state fast-forward cannot run this configuration (None
    when it can).  Returned values are :class:`RunWarning` strings carrying
    a stable ``warning_code``."""
    if getattr(policy, "migrates_across_speeds", False):
        return RunWarning(
            f"fast-forward refused: {type(policy).__name__} resumes preempted "
            "firings across processor speeds, and rescaled remainders are not "
            "closed under a tick grid; running naively",
            "speed-migrating-policy",
        )
    if timebase is None:
        return RunWarning(
            "fast-forward refused: the event queue runs on exact fractions; "
            "steady-state detection requires an integer-tick time base; "
            "running naively",
            "fraction-time-base",
        )
    if not callable(getattr(policy, "steady_state_key", None)):
        return RunWarning(
            f"fast-forward refused: policy {type(policy).__name__} exposes no "
            "steady_state_key(); its hidden scheduling state cannot be folded "
            "into the periodicity key; running naively",
            "no-steady-state-key",
        )
    return None


@dataclass
class _Snapshot:
    """Absolute counter values at one anchor completion (one per distinct
    state key; differences between two occurrences of a key are exact
    per-period deltas)."""

    now: int
    processed: int
    started: int
    completed: int
    preemptions: int
    resumes: int
    #: (completed_firings, preemptions) per task, aligned with engine.tasks
    task_stats: Tuple[Tuple[int, int], ...]
    #: least released window position per buffer, aligned with the detector's
    #: buffer list; all windows of a buffer advance by the same per-period
    #: amount (key equality pins their relative layout), so one base per
    #: buffer captures every window's motion
    buffer_bases: Tuple[int, ...]
    busy: Dict[str, object]
    #: (produced, dropped) per source driver
    source_stats: Tuple[Tuple[int, int], ...]
    #: (consumed_count, misses, stored-consumed-length) per sink driver
    sink_stats: Tuple[Tuple[int, int, int], ...]
    trace_snapshot: Dict[str, object]


class SteadyState:
    """Online periodicity detector and fast-forwarder for one engine run.

    Installed by :meth:`ExecutionEngine.enable_fast_forward`; the engine
    calls :meth:`on_anchor_completion` at the end of every completion of the
    anchor task.
    """

    def __init__(
        self,
        engine: "ExecutionEngine",
        *,
        horizon: int,
        extra_state: Optional[Callable[[], tuple]] = None,
        sources: Sequence["SourceDriver"] = (),
        sinks: Sequence["SinkDriver"] = (),
        firing_target: Optional[int] = None,
        max_states: int = 10_000,
        value_exact: bool = False,
        functions: Optional[Mapping[str, "FunctionSpec"]] = None,
    ) -> None:
        self.engine = engine
        self.queue = engine.queue
        self.trace = engine.trace
        self.horizon = horizon
        self.extra_state = extra_state
        self.sources = tuple(sources)
        self.sinks = tuple(sinks)
        self.firing_target = firing_target
        self.max_states = max_states
        #: fold values, stimulus state and declared function state into the
        #: key so a repeat proves skipped periods are exact copies (see
        #: module doc).  The callers only enable this after qualification.
        self.value_exact = value_exact
        self._stateful_functions: Tuple[Tuple[str, "FunctionSpec"], ...] = tuple(
            sorted(
                ((name, spec) for name, spec in (functions or {}).items()
                 if spec.get_state is not None),
                key=lambda item: item[0],
            )
        )
        #: (sink index, count): cap jumps strictly short of a
        #: run_until_sink_count target, mirroring ``firing_target``
        self.sink_target: Optional[Tuple[int, int]] = None
        #: replay stored trace records / sink values through skipped periods
        #: only while retention is unbounded -- a capped trace would drop
        #: them again anyway, and the streaming counters stay exact either way
        self._replay = self.trace.retention is None
        self.anchor: Optional["RuntimeTask"] = next(
            (task for task in engine.tasks if not task.one_shot), None
        )
        #: give up: no anchor, state budget exhausted
        self.done = self.anchor is None
        self._seen: Dict[tuple, _Snapshot] = {}
        self._buffers = self._collect_buffers()
        # Incremental-key caches (see module doc).  Per buffer: the
        # (mutation_version, key item) computed at the previous sample --
        # valid until the buffer's windows or contents change.  Per stateful
        # function: the (state_version, digest) of its last serialised
        # state.  A steady-state jump deliberately bypasses both versions:
        # it preserves the key by construction (shift-invariant layouts,
        # ring rotation matching the anchor move), so the caches stay valid
        # across it.
        self._buffer_key_cache: List[Optional[Tuple[int, tuple]]] = [None] * len(
            self._buffers
        )
        self._function_digest_cache: Dict[str, Tuple[int, int]] = {}
        if value_exact:
            for buffer in self._buffers:
                buffer.enable_value_digests()
        #: producer keys of one-shot (initialisation) tasks: their windows,
        #: once retired (``active=False``), are frozen forever and must be
        #: ignored by the periodicity key and the jump -- a window pinned at
        #: the end of its prefix would otherwise stretch the relative layout
        #: without bound.  Inactive windows of *loop* tasks (deactivated mode
        #: schedules) are real state and stay in the key: their positions
        #: repeat once the schedule cycles.
        self._one_shot_keys = frozenset(
            task.producer_key() for task in engine.tasks if task.one_shot
        )
        self.warnings: List[str] = []
        # Detection / jump statistics (reported by EngineRun / RunResult).
        self.jumps = 0
        self.skipped_ticks = 0
        self.skipped_events = 0
        self.period_ticks: Optional[int] = None
        self.transient_ticks: Optional[int] = None
        self.period_firings: Optional[int] = None

    def _collect_buffers(self) -> Tuple["CircularBuffer", ...]:
        buffers: Dict[int, "CircularBuffer"] = {}
        for task in self.engine.tasks:
            for _, _, buffer in task._reads:
                buffers[id(buffer)] = buffer
            for _, _, buffer in task._writes:
                buffers[id(buffer)] = buffer
        for driver in self.sources + self.sinks:
            buffers[id(driver.buffer)] = driver.buffer
        return tuple(sorted(buffers.values(), key=lambda b: b.name))

    # -------------------------------------------------------------- state key
    def _retired(self, window) -> bool:
        """A permanently frozen window: the retired window of a completed
        one-shot task (see ``_one_shot_keys``)."""
        return not window.active and window.name in self._one_shot_keys

    def _buffer_bases(self) -> Tuple[int, ...]:
        bases = []
        for buffer in self._buffers:
            base = None
            for windows in (buffer._producers, buffer._consumers):
                for window in windows.values():
                    if self._retired(window):
                        continue
                    if base is None or window.released < base:
                        base = window.released
            bases.append(base if base is not None else 0)
        return tuple(bases)

    def state_key(self) -> tuple:
        """The canonical, shift-invariant execution state (see module doc).

        Incrementally maintained: combines the digests pushed by mutation
        sites since the previous sample (per-slot buffer digests, stimulus
        tokens, version-gated function-state digests), so the per-sample
        cost is O(changed-since-last-sample), not O(system-size)."""
        return self._state_key(incremental=True)

    def state_key_slow(self) -> tuple:
        """From-scratch oracle for :meth:`state_key`.

        Recomputes every component digest directly from the live structures
        -- the same digest functions, none of the incrementally maintained
        slot digests or version caches -- and never mutates anything (the
        cancelled events are filtered, not pruned).  Tests cross-check
        ``state_key() == state_key_slow()`` after randomized operation
        sequences: equality, not mere collision-freedom, is the contract,
        so any write path that bypasses the digest maintenance shows up as
        a key mismatch."""
        return self._state_key(incremental=False)

    def _state_key(self, incremental: bool) -> tuple:
        queue = self.queue
        engine = self.engine
        now = queue.now
        value_exact = self.value_exact
        buffer_items = []
        for index, buffer in enumerate(self._buffers):
            version = buffer.mutation_version
            if incremental:
                cached = self._buffer_key_cache[index]
                if cached is not None and cached[0] == version:
                    buffer_items.append(cached[1])
                    continue
            base = None
            windows = []
            for kind, table in ((0, buffer._producers), (1, buffer._consumers)):
                for window in table.values():
                    if self._retired(window):
                        continue
                    windows.append((kind, window))
                    if base is None or window.released < base:
                        base = window.released
            base = base if base is not None else 0
            layout = tuple(
                sorted(
                    (kind, w.name, w.released - base, w.acquired - base, w.active)
                    for kind, w in windows
                )
            )
            if value_exact:
                # Stored values, rotation-anchored at the producer floor so
                # the fold is shift-invariant like the window layout: token
                # index i lives in slot i % capacity, and the floor advances
                # with the windows, so two period-equivalent states read the
                # same sequence regardless of absolute position.  The values
                # themselves were digested at write time; here only the
                # integer digest ring is rotated and hashed.
                capacity = buffer.capacity
                anchor = buffer._producer_floor() if buffer._producers else base
                rotation = anchor % capacity
                if incremental:
                    digests = buffer._slot_digests
                else:
                    digests = [value_digest(value) for value in buffer._storage]
                folded = hash(tuple(digests[rotation:] + digests[:rotation]))
                item = (buffer.name, layout, folded)
            else:
                item = (buffer.name, layout)
            if incremental:
                self._buffer_key_cache[index] = (version, item)
            buffer_items.append(item)
        # Pending events in execution order; the rank keeps same-instant ties
        # in sequence order (their execution order) through the sort.  The
        # incremental path settles the queue's lazy cancelled-prune debt
        # once, so only live events are sorted -- preemptive policies would
        # otherwise drag every dead entry through this sort forever.
        if incremental:
            queue.prune_cancelled()
            live = sorted(
                (event.time, event.sequence, event.label) for event in queue._heap
            )
        else:
            live = sorted(
                (event.time, event.sequence, event.label)
                for event in queue._heap
                if not event.cancelled
            )
        pendings = [
            (time - now, rank, label) for rank, (time, _, label) in enumerate(live)
        ]
        active = engine._active
        suspended = engine._suspended
        task_items = []
        for index, task in enumerate(engine.tasks):
            firing = active.get(task)
            if firing is not None:
                processor, elapsed = firing.processor.name, now - firing.segment_start
            else:
                processor, elapsed = "", -1
            parked = suspended.get(task)
            if parked is not None:
                remaining, speed = parked.remaining, str(parked.suspended_speed)
            else:
                remaining, speed = -1, ""
            # ``phase_firings`` is deliberately absent: it grows without
            # bound on unphased tasks (it only resets under a mode
            # schedule).  Mode-schedule progress -- including the bounded
            # phase_firings of phased instances -- arrives via the
            # simulator's ``extra_state`` instead.
            task_items.append(
                (
                    index,
                    task.busy,
                    task.suspended,
                    task.active,
                    task.fired_once,
                    processor,
                    elapsed,
                    remaining,
                    speed,
                )
            )
        key = canonical_state_key(buffer_items, pendings, task_items)
        ready = tuple(sorted(engine._ready._queued))
        policy_key = self.engine.policy.steady_state_key()
        extra = self.extra_state() if self.extra_state is not None else ()
        full = key + (ready, policy_key, extra)
        if not value_exact:
            return full
        # Value-exact mode additionally folds every mutable value state in
        # the system; the fat tuple is collapsed to a single digest so the
        # state table stays small even with large buffer contents and long
        # value periods.  Every component is already an integer digest or a
        # small token, so the final fold is one C-level tuple hash (with
        # value_digest's repr fallback if a stimulus token is unhashable)
        # instead of repr + sha256 of the whole structure, which used to
        # dominate the per-sample cost.
        stimulus_states = tuple(
            source.values.state_token() for source in self.sources
        )
        function_states = []
        for name, spec in self._stateful_functions:
            if incremental and spec.state_version is not None:
                version = spec.state_version()
                cached = self._function_digest_cache.get(name)
                if cached is not None and cached[0] == version:
                    function_states.append((name, cached[1]))
                    continue
                digest = value_digest(spec.get_state())
                self._function_digest_cache[name] = (version, digest)
            else:
                digest = value_digest(spec.get_state())
            function_states.append((name, digest))
        inflight = tuple(
            (index, value_digest(task.inflight_values))
            for index, task in enumerate(engine.tasks)
            if task.busy and task.inflight_values is not None
        )
        fat = full + (stimulus_states, tuple(function_states), inflight)
        return (value_digest(fat),)

    def _snapshot(self) -> _Snapshot:
        engine = self.engine
        return _Snapshot(
            now=self.queue.now,
            processed=self.queue.processed,
            started=engine.started_firings,
            completed=engine.completed_firings,
            preemptions=engine.preemptions,
            resumes=engine.resumes,
            task_stats=tuple(
                (task.completed_firings, task.preemptions) for task in engine.tasks
            ),
            buffer_bases=self._buffer_bases(),
            busy=dict(engine._busy_internal),
            source_stats=tuple((s.produced, s.dropped) for s in self.sources),
            sink_stats=tuple(
                (s.consumed_count, s.misses, len(s.consumed)) for s in self.sinks
            ),
            trace_snapshot=self.trace.stream_snapshot(),
        )

    # -------------------------------------------------------------- detection
    def on_anchor_completion(self) -> None:
        """Sample the state after an anchor completion; jump when it repeats."""
        if self.done:
            return
        key = self.state_key()
        snapshot = self._seen.get(key)
        if snapshot is None:
            if len(self._seen) >= self.max_states:
                self.done = True
                self.warnings.append(
                    RunWarning(
                        f"fast-forward gave up: no state repetition within "
                        f"{self.max_states} sampled anchor states; running naively",
                        "state-table-overflow",
                    )
                )
                return
            self._seen[key] = self._snapshot()
            return
        delta = self.queue.now - snapshot.now
        if delta <= 0:
            # Same-instant repeat (several anchor completions at one time,
            # e.g. zero-wcet tasks): keep the earlier snapshot.
            return
        if self.period_ticks is None:
            self.period_ticks = delta
            self.transient_ticks = snapshot.now
            self.period_firings = self.engine.completed_firings - snapshot.completed
        periods = (self.horizon - self.queue.now) // delta
        completed_delta = self.engine.completed_firings - snapshot.completed
        if self.firing_target is not None and completed_delta > 0:
            # Stop strictly short of the firing target: the final firings run
            # naively, so a stop=... run halts at the very same completion
            # (and instant) a naive run would.
            remaining = self.firing_target - 1 - self.engine.completed_firings
            periods = min(periods, remaining // completed_delta)
        if self.sink_target is not None:
            # Same stop-short rule for run_until_sink_count: leave at least
            # the final consumption to naive stepping so the run halts at
            # the exact instant a naive run would.
            sink_index, count = self.sink_target
            sink = self.sinks[sink_index]
            d_consumed = sink.consumed_count - snapshot.sink_stats[sink_index][0]
            if d_consumed > 0:
                remaining = count - 1 - sink.consumed_count
                periods = min(periods, remaining // d_consumed)
        if periods < 1:
            return
        self._jump(snapshot, periods, delta)

    # ------------------------------------------------------------------- jump
    def _jump(self, snapshot: _Snapshot, periods: int, delta: int) -> None:
        engine = self.engine
        queue = self.queue
        shift = periods * delta
        # Per-period deltas, all computed before any state is mutated.
        d_processed = queue.processed - snapshot.processed
        d_started = engine.started_firings - snapshot.started
        d_completed = engine.completed_firings - snapshot.completed
        d_preemptions = engine.preemptions - snapshot.preemptions
        d_resumes = engine.resumes - snapshot.resumes
        task_deltas = [
            (task.completed_firings - before[0], task.preemptions - before[1])
            for task, before in zip(engine.tasks, snapshot.task_stats)
        ]
        bases = self._buffer_bases()
        buffer_deltas = [
            now_base - before for now_base, before in zip(bases, snapshot.buffer_bases)
        ]
        busy_deltas = {
            name: value - snapshot.busy.get(name, 0)
            for name, value in engine._busy_internal.items()
        }
        source_deltas = [
            (s.produced - before[0], s.dropped - before[1])
            for s, before in zip(self.sources, snapshot.source_stats)
        ]
        sink_deltas = [
            (s.consumed_count - before[0], s.misses - before[1], before[2])
            for s, before in zip(self.sinks, snapshot.sink_stats)
        ]

        # 1. Translate the event queue (pending events + clock) rigidly.
        queue.shift_pending(shift)
        queue.processed += periods * d_processed

        # 2. Engine counters and in-flight firing anchors.
        engine.started_firings += periods * d_started
        engine.completed_firings += periods * d_completed
        engine.preemptions += periods * d_preemptions
        engine.resumes += periods * d_resumes
        if d_completed > 0:
            engine._last_completion += shift
        for firing in engine._active.values():
            firing.start += shift
            firing.segment_start += shift
        for firing in engine._suspended.values():
            firing.start += shift
        for name, d in busy_deltas.items():
            if d:
                engine._busy_internal[name] += periods * d

        # 3. Per-task counters.
        for task, (d_fired, d_preempted) in zip(engine.tasks, task_deltas):
            if d_fired:
                task.completed_firings += periods * d_fired
            if d_preempted:
                task.preemptions += periods * d_preempted

        # 4. Buffer windows: every window of a buffer advances by the same
        # per-period amount; caches translate with them, and no watcher runs
        # (the relative state is unchanged, nothing new is enabled).
        for buffer, d in zip(self._buffers, buffer_deltas):
            if d == 0:
                continue
            # Storage: token index i lives in slot i % capacity, and every
            # index below the producer floor has been written -- unless the
            # buffer is oversized and never wrapped, in which case the slots
            # ahead of the floor still hold their uninitialised None.  A
            # naive run would have filled them during the skipped periods;
            # replicate the canonical period's d-value pattern forward so
            # post-jump reads see period values (value-stale like every
            # replayed datum, but shape- and type-correct).
            move = periods * d
            if buffer._producers:
                storage = buffer._storage
                capacity = buffer.capacity
                if self.value_exact:
                    # Token index i lives in slot i % capacity, and every
                    # window advances by `move`: values resident across the
                    # jump must move to the slots their new indices map to.
                    # The canonical period guarantees value(i) == value(i -
                    # move), so rotating the whole ring forward by `move`
                    # realigns every live token (and touches only slots that
                    # are either rewritten before the next read or outside
                    # the readable window).  The slot digests rotate with
                    # the storage, which together with the equally moved
                    # producer floor keeps the rotation-anchored fold -- and
                    # therefore the detector's cached per-buffer entry --
                    # invariant across the jump.
                    buffer.rotate_storage(move)
                else:
                    # Value-stale mode: indices below the producer floor have
                    # been written -- unless the buffer is oversized and
                    # never wrapped, in which case the slots ahead of the
                    # floor still hold their uninitialised None.  A naive run
                    # would have filled them during the skipped periods;
                    # replicate the canonical period's d-value pattern
                    # forward so post-jump reads see period values
                    # (value-stale like every replayed datum, but shape- and
                    # type-correct).
                    floor = buffer._producer_floor()
                    if d <= floor < capacity:
                        pattern_start = floor - d
                        for k in range(capacity - floor):
                            storage[floor + k] = storage[(pattern_start + k % d) % capacity]
            for table in (buffer._producers, buffer._consumers):
                for window in table.values():
                    if self._retired(window):
                        continue
                    window.released += move
                    window.acquired += move
            if buffer._producer_floor_cache is not None:
                buffer._producer_floor_cache += move
            if buffer._consumer_floor_cache is not None:
                buffer._consumer_floor_cache += move
            if buffer._producer_ceiling_cache is not None:
                buffer._producer_ceiling_cache += move

        # 5. Driver counters and (with unbounded retention) sink values.
        for source, (d_produced, d_dropped) in zip(self.sources, source_deltas):
            source.produced += periods * d_produced
            source.dropped += periods * d_dropped
            if self.value_exact:
                # One draw per tick, hit or dropped.  For the declared
                # periodic stimuli that qualify for value-exact mode this is
                # an O(1) index move -- and a provable no-op modulo the
                # stimulus period, since the key repeat folded its state.
                stimulus = source.values
                draws = periods * (d_produced + d_dropped)
                if (
                    draws > GENERATOR_ADVANCE_THRESHOLD
                    and getattr(stimulus, "advance_linear", True)
                ):
                    self.warnings.append(
                        RunWarning(
                            f"fast-forward jump replayed {draws} draws of source "
                            f"{source.name!r}'s {type(stimulus).__name__} one by "
                            "one (its advance() is O(k)); declare a closed-form "
                            "stimulus for O(1) jumps",
                            "generator-advance",
                        )
                    )
                stimulus.advance(draws)
        for sink, (d_consumed, d_misses, stored_before) in zip(self.sinks, sink_deltas):
            sink.consumed_count += periods * d_consumed
            sink.misses += periods * d_misses
            if self._replay and d_consumed > 0:
                period_values = sink.consumed[stored_before:]
                for _ in range(periods):
                    sink.consumed.extend(period_values)

        # 6. Trace: streaming counters always; stored records only when the
        # retention is unbounded (a capped trace would drop them again).
        shift_seconds = queue.to_time(shift)
        self.trace.extrapolate_periodic(snapshot.trace_snapshot, periods, shift_seconds)
        if self._replay:
            self.trace.replay_periodic(
                snapshot.trace_snapshot["lengths"], periods, queue.to_time(delta)
            )

        self.jumps += 1
        self.skipped_ticks += shift
        self.skipped_events += periods * d_processed
