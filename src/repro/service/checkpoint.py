"""Incremental sweep checkpoints: an append-only JSONL journal of rows.

A checkpoint makes a sweep killable: every completed point is appended to
the journal *as it finishes* (and flushed, so it survives a SIGKILL the
same instant), and a re-run with the same checkpoint path restores those
rows instead of re-executing them.  Because sweep reports aggregate by
point index -- never by completion order -- the resumed report is
bit-identical to the one an uninterrupted run would have produced.

File format (one JSON object per line)::

    {"kind": "repro-sweep-checkpoint", "schema": 1, "version": ...,
     "name": ..., "grid": <grid digest>, "points": N,
     "shard": null | {"shard": i, "of": n, "start": a, "stop": b}}
    {"point": 3, "ok": true, "error": null, "params": {...}, "metrics": {...}}
    {"point": 0, "ok": true, ...}
    ...

The header pins the checkpoint to one exact grid via
:func:`repro.service.store.grid_digest`; resuming against a sweep whose
expanded grid (or code/schema version) differs raises
:class:`CheckpointMismatchError` instead of silently mixing rows from two
different experiments.  Point lines are
:meth:`~repro.api.sweep.SweepResult.payload` mappings, the same encoding
``SweepReport.to_json`` uses, in *completion* order -- which is why a
torn final line (the writer was killed mid-append) can simply be
dropped: the point it described never counted as completed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro import __version__
from repro.service.store import STORE_SCHEMA

CHECKPOINT_KIND = "repro-sweep-checkpoint"


class CheckpointMismatchError(ValueError):
    """A checkpoint file that does not belong to the sweep resuming it."""


def _decode_lines(path: Path) -> List[Dict[str, Any]]:
    """Every intact JSON line of *path* (a torn tail is dropped)."""
    entries: List[Dict[str, Any]] = []
    with open(path, "rb") as handle:
        for raw in handle:
            try:
                entries.append(json.loads(raw.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue  # killed mid-append: the row never completed
    return entries


def read_checkpoint(path: Any) -> Tuple[Dict[str, Any], Dict[int, Dict[str, Any]]]:
    """The header and ``{grid index: payload}`` rows of a checkpoint file.

    Validation against a particular sweep is the caller's job (via the
    header's ``grid`` digest); this only requires the file to *be* a
    checkpoint.  Duplicate point lines keep the first occurrence -- a
    resumed run may legitimately re-append rows it restored.
    """
    entries = _decode_lines(Path(path))
    if not entries or entries[0].get("kind") != CHECKPOINT_KIND:
        raise CheckpointMismatchError(
            f"{path}: not a sweep checkpoint (missing header line)"
        )
    header = entries[0]
    if header.get("schema") != STORE_SCHEMA:
        raise CheckpointMismatchError(
            f"{path}: checkpoint schema {header.get('schema')!r} does not "
            f"match this code's schema {STORE_SCHEMA}"
        )
    completed: Dict[int, Dict[str, Any]] = {}
    for entry in entries[1:]:
        if "point" in entry:
            completed.setdefault(int(entry["point"]), entry)
    return header, completed


class SweepCheckpoint:
    """The journal writer/resumer one service run holds open.

    Opening an existing file validates its header against this sweep's
    grid digest and loads the completed rows into :attr:`completed`;
    opening a fresh path writes the header.  Either way the file is then
    in append mode and :meth:`record` is durable per call.
    """

    def __init__(
        self,
        path: Any,
        *,
        name: str,
        grid: str,
        points: int,
        shard: Optional[Dict[str, int]] = None,
    ) -> None:
        self.path = Path(path)
        self.grid = grid
        #: rows restored from a previous run, by grid index
        self.completed: Dict[int, Dict[str, Any]] = {}
        if self.path.exists() and self.path.stat().st_size > 0:
            header, self.completed = read_checkpoint(self.path)
            for field, expected in (("grid", grid), ("points", points)):
                if header.get(field) != expected:
                    raise CheckpointMismatchError(
                        f"{self.path}: checkpoint was written for a different "
                        f"sweep ({field} {header.get(field)!r} != {expected!r}); "
                        f"delete it or point the run elsewhere"
                    )
            self._handle = open(self.path, "ab")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
            self._append(
                {
                    "kind": CHECKPOINT_KIND,
                    "schema": STORE_SCHEMA,
                    "version": __version__,
                    "name": name,
                    "grid": grid,
                    "points": points,
                    "shard": shard,
                }
            )

    def _append(self, entry: Dict[str, Any]) -> None:
        line = json.dumps(entry, separators=(",", ":")) + "\n"
        self._handle.write(line.encode("utf-8"))
        self._handle.flush()  # durable before the next point starts

    def record(self, payload: Dict[str, Any]) -> None:
        """Append one completed point (a ``SweepResult.payload()`` mapping)."""
        index = int(payload["point"])
        if index in self.completed:
            return
        self._append(payload)
        self.completed[index] = payload

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SweepCheckpoint({str(self.path)!r}, completed={len(self.completed)})"
