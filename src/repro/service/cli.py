"""``python -m repro sweep`` -- the sweep service's command-line surface.

Subcommands (all rooted at a spool directory, default ``./repro-spool``)::

    submit SPEC.json          enqueue a sweep, print its job id
    status [JOB_ID]           one job's state+progress, or the whole spool
    run JOB_ID                execute a queued job to completion
    resume JOB_ID             pick a killed/failed job up from its checkpoint
    shard SPEC.json -n N      write N self-contained shard files
    run-shard SHARD.pkl       execute one shard file (own checkpoint)
    merge SPEC.json CKPT...   recombine shard checkpoints into report JSON

Sweep specs are JSON (keeping the CLI scriptable from anything)::

    {"app": "pal_decoder",
     "duration": {"$fraction": [2, 1]},
     "axes": {"scheduler": [{"$bounded": 1}, {"$bounded": 2}, "$selftimed"]}}

Values that JSON cannot spell are tagged: ``{"$fraction": [num, den]}``
builds a :class:`fractions.Fraction`, ``{"$bounded": n}`` a
``BoundedProcessors(n)`` scheduler, ``"$selftimed"`` a
``SelfTimedUnbounded()``.  Richer axes (platforms, custom policies) belong
in the Python API -- submit those programmatically via
:class:`repro.service.jobs.JobQueue`.
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.api.sweep import Sweep
from repro.service.jobs import JobQueue
from repro.service.shard import run_shard, shard


def _decode_value(value: Any) -> Any:
    """One spec value, with the documented ``$``-tags expanded."""
    if value == "$selftimed":
        from repro.engine.policies import SelfTimedUnbounded

        return SelfTimedUnbounded()
    if isinstance(value, dict):
        if "$fraction" in value:
            numerator, denominator = value["$fraction"]
            return Fraction(numerator, denominator)
        if "$bounded" in value:
            from repro.engine.policies import BoundedProcessors

            return BoundedProcessors(int(value["$bounded"]))
        return {key: _decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def load_sweep_spec(path: Any) -> Sweep:
    """Build a :class:`Sweep` from a JSON spec file (see module docstring)."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if "app" not in data:
        raise SystemExit(f"{path}: sweep spec needs an \"app\" field")
    kwargs: Dict[str, Any] = {}
    if "duration" in data:
        raw = _decode_value(data["duration"])
        kwargs["duration"] = Fraction(raw) if isinstance(raw, str) else raw
    sweep = Sweep(
        data["app"], name=data.get("name"), base=_decode_value(data.get("base", {})), **kwargs
    )
    for axis, values in data.get("axes", {}).items():
        sweep.add_axis(axis, [_decode_value(value) for value in values])
    return sweep


def _print_status(state: Dict[str, Any]) -> None:
    progress = f"{state.get('completed', 0)}/{state['points']}"
    print(
        f"{state['id']}  {state['state']:<8}  {progress:>9}  "
        f"{state['executor']}x{state['workers']}  {state['name']}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="submit, execute, resume, shard and merge parameter sweeps",
    )
    parser.add_argument(
        "--root",
        default="repro-spool",
        help="spool directory (jobs + shared result store); default ./repro-spool",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser("submit", help="enqueue a sweep from a JSON spec")
    submit.add_argument("spec", help="sweep spec JSON file")
    submit.add_argument("--executor", default="serial", choices=("serial", "thread", "process"))
    submit.add_argument("--workers", type=int, default=1)

    status = commands.add_parser("status", help="show job state and progress")
    status.add_argument("job", nargs="?", help="job id; omit for all jobs")

    run = commands.add_parser("run", help="execute a queued job")
    run.add_argument("job")

    resume = commands.add_parser("resume", help="resume a killed/failed job")
    resume.add_argument("job")

    shard_cmd = commands.add_parser("shard", help="split a sweep into shard files")
    shard_cmd.add_argument("spec", help="sweep spec JSON file")
    shard_cmd.add_argument("-n", "--shards", type=int, required=True)
    shard_cmd.add_argument("--out", default=".", help="directory for shard files")

    run_shard_cmd = commands.add_parser("run-shard", help="execute one shard file")
    run_shard_cmd.add_argument("shard", help="shard file written by `shard`")
    run_shard_cmd.add_argument("--checkpoint", required=True, help="shard checkpoint path")
    run_shard_cmd.add_argument("--store", default=None, help="optional shared store dir")
    run_shard_cmd.add_argument("--executor", default="serial", choices=("serial", "thread", "process"))
    run_shard_cmd.add_argument("--workers", type=int, default=1)

    merge_cmd = commands.add_parser("merge", help="recombine shard checkpoints")
    merge_cmd.add_argument("spec", help="sweep spec JSON file")
    merge_cmd.add_argument("checkpoints", nargs="+", help="shard checkpoint files")
    merge_cmd.add_argument("--out", default=None, help="write report JSON here (default stdout)")

    options = parser.parse_args(argv)

    if options.command == "submit":
        queue = JobQueue(options.root)
        job_id = queue.submit(
            load_sweep_spec(options.spec),
            executor=options.executor,
            workers=options.workers,
        )
        print(job_id)
        return 0

    if options.command == "status":
        queue = JobQueue(options.root)
        states = [queue.status(options.job)] if options.job else queue.jobs()
        if not states:
            print(f"(no jobs in {options.root})")
        for state in states:
            _print_status(state)
        return 0

    if options.command in ("run", "resume"):
        queue = JobQueue(options.root)
        report = (
            queue.resume(options.job)
            if options.command == "resume"
            else queue.run(options.job)
        )
        stats = report.service_stats or {}
        print(
            f"{options.job}: {len(report)} points "
            f"(executed {stats.get('executed', '?')}, "
            f"store hits {stats.get('store_hits', '?')}, "
            f"resumed {stats.get('resumed', '?')})"
        )
        return 0 if report.ok else 1

    if options.command == "shard":
        sweep = load_sweep_spec(options.spec)
        out = Path(options.out)
        out.mkdir(parents=True, exist_ok=True)
        for spec in shard(sweep, options.shards):
            path = out / f"shard-{spec.shard:03d}-of-{spec.of:03d}.pkl"
            with open(path, "wb") as handle:
                pickle.dump(spec, handle)
            print(f"{path}  points [{spec.start}, {spec.stop})")
        return 0

    if options.command == "run-shard":
        with open(options.shard, "rb") as handle:
            spec = pickle.load(handle)
        report = run_shard(
            spec,
            checkpoint=options.checkpoint,
            store=options.store,
            executor=options.executor,
            workers=options.workers,
        )
        stats = report.service_stats or {}
        print(
            f"shard {spec.shard}/{spec.of}: {len(report)} points "
            f"(executed {stats.get('executed', '?')})"
        )
        return 0 if report.ok else 1

    if options.command == "merge":
        from repro.service.shard import merge

        report = merge(load_sweep_spec(options.spec), options.checkpoints)
        rendered = report.to_json()
        if options.out:
            with open(options.out, "w", encoding="utf-8") as handle:
                handle.write(rendered)
            print(f"{options.out}: {len(report)} points merged")
        else:
            print(rendered)
        return 0

    parser.error(f"unknown command {options.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
