"""Content-addressed result store: stable digests -> persisted metric rows.

Every sweep point is a pure function of its content: the program recipe
(app name + parameter bindings, or a :class:`~repro.api.spec.ProgramSpec`
digest, or a callable runner's qualified name), the run-axis parameter
values, and the code/schema version that computed the row.  This module
digests that content into a stable key (:func:`point_key`) and persists the
resulting metric row on disk (:class:`ResultStore`), so a repeated or
overlapping grid only ever *executes* points it has never seen -- cached
points are answered from the store without compiling anything.

Digest definition
-----------------
``point_key`` = sha256 over the canonical encoding
(:func:`repro.api.spec.stable_digest`) of::

    ("repro-sweep-point", STORE_SCHEMA, repro.__version__,
     program identity,             # ("app", name) | ("spec", spec digest)
                                   # | ("runner", module, qualname)
     program-axis params, run-axis params, default duration)

The canonical encoding sorts sets and mapping items by value, so the key is
identical in every process and across runs -- the property pickle bytes (the
in-sweep dedup key) do not have.  Bumping ``repro.__version__`` or
``STORE_SCHEMA`` invalidates the whole store by construction: rows computed
by different code are never served as cache hits.

On-disk layout
--------------
::

    <root>/
      segments/segment-000001-<pid>.jsonl   # append-only: one JSON line per
      segments/segment-000002-<pid>.jsonl   #   stored row {schema, key, payload}
      index.json                            # key -> (segment, byte offset, length)

Segments extend the JSONL convention of ``benchmarks/_reporting.py``: every
record is one self-contained JSON line, so a reader never needs more than a
line scan and a torn final line (a writer killed mid-append) is simply
skipped -- losing an interrupted write is the safe direction.  The index
maps each key to the byte range of its row so ``get`` is one ``seek`` +
``read``; it is rebuilt from the segments when missing or stale (segments
are the source of truth, the index is only an accelerator).
"""

from __future__ import annotations

import copy
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro import __version__
from repro.api.spec import SweepConfigError, stable_digest

#: Bump when the stored payload shape or the key recipe changes; every
#: existing row then stops matching and the store refills itself.
STORE_SCHEMA = 1


def program_identity(sweep: Any) -> Tuple[Any, ...]:
    """The stable identity of what a sweep executes, for digest purposes.

    App sweeps identify by the canonical app name, ready-made-program sweeps
    by their :meth:`~repro.api.spec.ProgramSpec.digest` (raises
    :class:`~repro.api.spec.SweepConfigError` for recipe-less precompiled
    programs -- those cannot be content-addressed), callable sweeps by the
    runner's module + qualname (the code-version caveat is covered by
    ``repro.__version__`` in the key for packaged runners, and is the
    caller's responsibility for their own functions).
    """
    if sweep._runner is not None:
        runner = sweep._runner
        module = getattr(runner, "__module__", None)
        qualname = getattr(runner, "__qualname__", None)
        if module is None or qualname is None or "<locals>" in qualname:
            raise SweepConfigError(
                f"sweep runner {runner!r} has no stable identity (it is not "
                f"an importable module-level callable): its results cannot "
                f"be content-addressed"
            )
        return ("runner", module, qualname)
    if sweep._program is not None:
        return ("spec", sweep._program.spec().digest())
    if sweep._app is None:
        raise ValueError(
            "this sweep has no program: construct it with app=, "
            "program= or Sweep.from_callable(...)"
        )
    return ("app", sweep._app)


def point_keys(sweep: Any, points: Iterable[Dict[str, Any]]) -> List[str]:
    """The content digest of each grid point (see the module docstring)."""
    identity = program_identity(sweep)
    keys = []
    for params in points:
        if sweep._runner is not None:
            content: Tuple[Any, ...] = ("runner-point", params)
        else:
            program_params, run_params = sweep._split(params)
            content = ("program-point", program_params, run_params, sweep.duration)
        keys.append(
            stable_digest(
                ("repro-sweep-point", STORE_SCHEMA, __version__, identity, content)
            )
        )
    return keys


def point_key(sweep: Any, params: Dict[str, Any]) -> str:
    """The content digest of one grid point."""
    return point_keys(sweep, [params])[0]


def grid_digest(sweep: Any, points: List[Dict[str, Any]]) -> str:
    """The identity of a whole expanded grid, for checkpoint/shard matching.

    Two sweeps share a grid digest exactly when they execute the same
    program over the same points with the same defaults under the same
    code/schema version -- the precondition for resuming one's checkpoint
    from the other, or for merging their shard checkpoints.
    """
    return stable_digest(
        (
            "repro-sweep-grid",
            STORE_SCHEMA,
            __version__,
            program_identity(sweep),
            sweep.duration,
            points,
        )
    )


class ResultStore:
    """The content-addressed on-disk store (see the module docstring).

    ``get``/``put`` speak *payloads*: small JSON-safe mappings (in practice
    ``{"metrics": {...}}``, the serialisable half of a
    :class:`~repro.api.sweep.SweepResult`).  Writes are first-wins -- rows
    are deterministic functions of their key, so a second write of the same
    key can only be the identical row.  Failed points are never stored (a
    failure may be environmental; re-running it next time is the safe
    direction), which the sweep service enforces at its call site.

    The instance keeps ``hits`` / ``misses`` / ``writes`` counters so
    benchmarks and the CI smoke job can assert cache behaviour, and is a
    context manager (``close`` persists the index).
    """

    def __init__(self, root: Any) -> None:
        self.root = Path(root)
        self.segments_dir = self.root / "segments"
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        self.index_path = self.root / "index.json"
        #: key -> (segment name, byte offset, byte length)
        self._locations: Dict[str, Tuple[str, int, int]] = {}
        self._cache: Dict[str, Dict[str, Any]] = {}
        self._handle = None
        self._segment_name: Optional[str] = None
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self._load()

    # ----------------------------------------------------------------- load
    def _load(self) -> None:
        """Read the index, then scan whatever it does not cover.

        The index records how many bytes of each segment it has absorbed;
        segments that grew (another writer appended) or are unknown are
        scanned from that watermark, so opening a warm store re-reads
        nothing and opening after a crash recovers every intact line.
        """
        scanned: Dict[str, int] = {}
        if self.index_path.exists():
            try:
                with open(self.index_path, encoding="utf-8") as handle:
                    data = json.load(handle)
            except (OSError, json.JSONDecodeError):
                data = None  # a torn index rebuilds from the segments
            if data is not None and data.get("schema") == STORE_SCHEMA:
                scanned = dict(data.get("segments", {}))
                for key, location in data.get("keys", {}).items():
                    name, offset, length = location
                    self._locations[key] = (name, int(offset), int(length))
        for path in sorted(self.segments_dir.glob("segment-*.jsonl")):
            start = scanned.get(path.name, 0)
            size = path.stat().st_size
            if size > start:
                self._scan_segment(path, start)
                self._dirty = True

    def _scan_segment(self, path: Path, start: int) -> None:
        with open(path, "rb") as handle:
            handle.seek(start)
            offset = start
            for raw in handle:
                length = len(raw)
                try:
                    entry = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    offset += length  # torn line of a killed writer: skip
                    continue
                if entry.get("schema") == STORE_SCHEMA and "key" in entry:
                    self._locations.setdefault(
                        entry["key"], (path.name, offset, length)
                    )
                offset += length

    # --------------------------------------------------------------- lookup
    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, key: str) -> bool:
        return key in self._locations

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for *key*, or None (counted as hit/miss)."""
        location = self._locations.get(key)
        if location is None:
            self.misses += 1
            return None
        self.hits += 1
        if key not in self._cache:
            name, offset, length = location
            with open(self.segments_dir / name, "rb") as handle:
                handle.seek(offset)
                entry = json.loads(handle.read(length).decode("utf-8"))
            self._cache[key] = entry["payload"]
        return copy.deepcopy(self._cache[key])

    # ---------------------------------------------------------------- write
    def put(self, key: str, payload: Dict[str, Any]) -> bool:
        """Store *payload* under *key*; False when the key already exists."""
        if key in self._locations:
            return False
        line = (
            json.dumps(
                {"schema": STORE_SCHEMA, "key": key, "payload": payload},
                separators=(",", ":"),
            )
            + "\n"
        ).encode("utf-8")
        if self._handle is None:
            self._segment_name = self._fresh_segment_name()
            self._handle = open(self.segments_dir / self._segment_name, "ab")
        offset = self._handle.tell()
        self._handle.write(line)
        self._handle.flush()  # every row is durable the moment put returns
        self._locations[key] = (self._segment_name, offset, len(line))
        self._cache[key] = copy.deepcopy(payload)
        self.writes += 1
        self._dirty = True
        return True

    def _fresh_segment_name(self) -> str:
        """A new segment for this writer: next sequence number + pid, so
        concurrent writers (independent shard processes) never interleave
        within one file."""
        highest = 0
        for path in self.segments_dir.glob("segment-*.jsonl"):
            parts = path.name.split("-")
            try:
                highest = max(highest, int(parts[1]))
            except (IndexError, ValueError):
                continue
        return f"segment-{highest + 1:06d}-{os.getpid()}.jsonl"

    # ------------------------------------------------------------ lifecycle
    def flush(self) -> None:
        """Persist the index (atomically: write-then-rename)."""
        if not self._dirty:
            return
        sizes = {
            path.name: path.stat().st_size
            for path in self.segments_dir.glob("segment-*.jsonl")
        }
        data = {
            "schema": STORE_SCHEMA,
            "version": __version__,
            "segments": sizes,
            "keys": {key: list(loc) for key, loc in self._locations.items()},
        }
        temporary = self.index_path.with_suffix(".json.tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        os.replace(temporary, self.index_path)
        self._dirty = False

    def close(self) -> None:
        self.flush()
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.root)!r}, rows={len(self)})"
