"""The sweep service: cached, resumable, shardable parameter-grid serving.

Layered on :class:`repro.api.Sweep` (which stays usable without it), this
package turns sweep execution into a serving problem:

``store``
    content-addressed result store -- a stable sha256 digest of
    *(program identity, point parameters, code/schema version)* maps to a
    persisted metric row, so repeated or overlapping grids only execute
    points never seen before, and cache hits skip compilation entirely.
``checkpoint``
    append-only JSONL journal of completed rows; a killed sweep resumes
    from it, bit-identical to an uninterrupted run.
``runner``
    the orchestration behind ``Sweep.run(store=..., checkpoint=...)``.
``shard``
    split a grid into self-contained shard specs for independent
    processes/hosts, and merge their checkpoints back bit-identically.
``jobs``
    a directory-spool job facade (submit / status / run / resume /
    result) with one shared store across jobs.
``cli``
    ``python -m repro sweep`` over all of the above.
"""

from repro.service.checkpoint import (
    CheckpointMismatchError,
    SweepCheckpoint,
    read_checkpoint,
)
from repro.service.jobs import JobError, JobQueue
from repro.service.runner import run_service_sweep
from repro.service.shard import ShardSpec, merge, run_shard, shard
from repro.service.store import (
    STORE_SCHEMA,
    ResultStore,
    grid_digest,
    point_key,
    point_keys,
)

__all__ = [
    "STORE_SCHEMA",
    "CheckpointMismatchError",
    "JobError",
    "JobQueue",
    "ResultStore",
    "ShardSpec",
    "SweepCheckpoint",
    "grid_digest",
    "merge",
    "point_key",
    "point_keys",
    "read_checkpoint",
    "run_service_sweep",
    "run_shard",
    "shard",
]
