"""The service sweep runner: store lookups, checkpoint journal, execution.

:func:`run_service_sweep` is what ``Sweep.run(store=..., checkpoint=...)``
delegates to.  It decides, per grid point, the cheapest way to produce its
row:

1. **checkpoint** -- the row is already in this run's journal (a previous
   interrupted run completed it): restore it.
2. **store** -- the point's content digest is in the result store (some
   earlier sweep, possibly over a different grid, computed it): serve it.
3. **execute** -- genuinely new: run it on the requested backend.

Only bucket 3 touches the compiler: the cache-missed subset is handed to
``Sweep._execute_points``, whose program analysis pass sees *only* those
points -- a fully cached re-run therefore compiles and executes nothing.

Rows from every bucket cross-pollinate: executed and store-served rows are
appended to the checkpoint (so the journal alone reconstructs the run,
which is what ``merge`` reads), and executed and checkpoint-restored *ok*
rows are written to the store (so the next overlapping grid hits).  Failed
points are checkpointed (resuming skips them, keeping the report identical)
but never stored (a failure may be environmental -- a re-run elsewhere
should retry it).

Bit-identity
------------
The report this returns renders identically (``to_json``, ``rows``,
``table``, ``speedup_table``) to the report of a plain uninterrupted
``Sweep.run``: restored rows carry JSON-safe params/metrics and the
encoder ``_json_safe`` is idempotent, so re-encoding them is a no-op; and
reports aggregate by grid index, so *which* bucket produced a row leaves
no trace.  The only difference is :attr:`SweepReport.service_stats` --
deliberately unserialised -- which records the bucket counts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from repro.api.sweep import Sweep, SweepReport, SweepResult
from repro.service.checkpoint import SweepCheckpoint
from repro.service.store import ResultStore, grid_digest, point_keys


def _store_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The index-independent part of a result payload.

    The store is keyed by point *content*; the grid position is a property
    of whichever grid is asking, so it is stripped before storing and
    re-attached on retrieval -- that is what lets overlapping grids share
    rows."""
    return {"params": payload["params"], "metrics": payload["metrics"]}


def _restore(index: int, payload: Dict[str, Any]) -> SweepResult:
    """A SweepResult for grid position *index* from a stored payload."""
    return SweepResult(
        index=index,
        params=dict(payload["params"]),
        ok=payload.get("ok", True),
        error=payload.get("error"),
        metrics=dict(payload["metrics"]),
    )


def run_service_sweep(
    sweep: Sweep,
    points: List[Dict[str, Any]],
    *,
    store: Any = None,
    checkpoint: Any = None,
    executor: str = "thread",
    workers: int = 1,
    keep_runs: bool = True,
    strict: bool = False,
    subset: Optional[Iterable[int]] = None,
    shard: Optional[Dict[str, int]] = None,
) -> SweepReport:
    """Run *sweep* over *points* with store/checkpoint service (see module).

    *subset* restricts this invocation to the given grid indices (sharding:
    the report then contains only those rows, in index order); *shard*
    metadata is stamped into the checkpoint header for ``merge`` to audit.
    The grid digest is always computed over the *full* expanded grid, so a
    shard checkpoint and a whole-grid checkpoint of the same sweep agree.
    """
    indices = sorted(subset) if subset is not None else list(range(len(points)))
    for index in indices:
        if not 0 <= index < len(points):
            raise ValueError(
                f"shard subset index {index} outside grid of {len(points)} points"
            )

    owned_store = store is not None and not isinstance(store, ResultStore)
    result_store: Optional[ResultStore] = None
    if store is not None:
        result_store = store if isinstance(store, ResultStore) else ResultStore(store)
    journal: Optional[SweepCheckpoint] = None

    try:
        keys = point_keys(sweep, points) if result_store is not None else None
        if checkpoint is not None:
            journal = SweepCheckpoint(
                Path(checkpoint),
                name=sweep.name,
                grid=grid_digest(sweep, points),
                points=len(points),
                shard=shard,
            )

        outcomes: Dict[int, SweepResult] = {}
        resumed = store_hits = 0
        missing: List[int] = []
        for index in indices:
            if journal is not None and index in journal.completed:
                payload = journal.completed[index]
                outcomes[index] = _restore(index, payload)
                resumed += 1
                # a row computed before the store existed still deserves
                # to serve future grids
                if result_store is not None and outcomes[index].ok:
                    result_store.put(keys[index], _store_payload(payload))
                continue
            if result_store is not None:
                payload = result_store.get(keys[index])
                if payload is not None:
                    outcomes[index] = _restore(index, payload)
                    store_hits += 1
                    if journal is not None:
                        journal.record(outcomes[index].payload())
                    continue
            missing.append(index)

        def on_result(result: SweepResult) -> None:
            payload = result.payload()
            if journal is not None:
                journal.record(payload)
            if result_store is not None and result.ok:
                result_store.put(keys[result.index], _store_payload(payload))

        warnings: List[str] = []
        if missing:
            executed, warnings = sweep._execute_points(
                [(index, points[index]) for index in missing],
                executor=executor,
                workers=workers,
                keep_runs=keep_runs,
                strict=strict,
                on_result=on_result,
            )
            for result in executed:
                outcomes[result.index] = result

        report = SweepReport(
            [outcomes[index] for index in indices],
            name=sweep.name,
            warnings=warnings,
        )
        report.service_stats = {
            "points": len(indices),
            "executed": len(missing),
            "store_hits": store_hits,
            "resumed": resumed,
        }
        return report
    finally:
        if journal is not None:
            journal.close()
        if result_store is not None:
            if owned_store:
                result_store.close()
            else:
                result_store.flush()
