"""Grid sharding: split a sweep into self-contained slices, merge the rows.

:func:`shard` cuts the expanded grid into N contiguous, balanced index
ranges and wraps each in a :class:`ShardSpec` -- a frozen, picklable value
that carries the *whole* sweep recipe (app name / program spec / runner
reference, defaults, base bindings, axes) plus its slice, so an
independent process or host needs nothing but the spec and a checkpoint
path to execute its share.  :func:`run_shard` executes one spec, journaling
into the shard's checkpoint (resumable like any service run), and
:func:`merge` recombines the shard checkpoints into one
:class:`~repro.api.sweep.SweepReport` that is bit-identical to a
single-shot serial run -- the report aggregates by grid index, so it
cannot tell which shard (or which attempt of which shard) produced a row.

Every shard checkpoint header carries the digest of the *full* grid
(:func:`repro.service.store.grid_digest`), which is how ``merge`` refuses
checkpoints from a different sweep, a different code version, or a
different grid -- mixing those would produce a plausible-looking but
meaningless report.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.spec import ProgramSpec
from repro.api.sweep import Sweep, SweepReport, SweepResult
from repro.service.checkpoint import CheckpointMismatchError, read_checkpoint
from repro.service.runner import run_service_sweep
from repro.service.store import grid_digest


@dataclass(frozen=True)
class ShardSpec:
    """One self-contained slice of a sweep grid.

    ``start``/``stop`` delimit the slice in full-grid index space (the
    balanced partition ``k*N//n .. (k+1)*N//n``), and ``grid`` is the full
    grid's digest -- executing the spec re-derives the grid locally and
    refuses to run if it no longer matches (the code changed under the
    spec).  Exactly one of ``app`` / ``program`` / ``runner`` is set.
    """

    shard: int
    of: int
    start: int
    stop: int
    grid: str
    name: str
    duration: Fraction
    app: Optional[str] = None
    program: Optional[ProgramSpec] = None
    runner: Any = None
    base: Tuple[Tuple[str, Any], ...] = ()
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    def sweep(self) -> Sweep:
        """Rebuild the sweep this spec slices (fresh, locally compiled)."""
        base = dict(self.base)
        grid = {name: list(values) for name, values in self.axes}
        if self.runner is not None:
            return Sweep.from_callable(
                self.runner, base=base, grid=grid, name=self.name
            )
        if self.program is not None:
            rebuilt = Sweep(
                program=self.program.build(),
                duration=self.duration,
                base=base,
                name=self.name,
            )
        else:
            rebuilt = Sweep(
                self.app, duration=self.duration, base=base, name=self.name
            )
        for name, values in grid.items():
            rebuilt.add_axis(name, values)
        return rebuilt


def shard(sweep: Sweep, shards: int) -> List[ShardSpec]:
    """Split *sweep* into *shards* contiguous, balanced shard specs.

    Slice sizes differ by at most one point; every grid index lands in
    exactly one spec, so the merged coverage is total by construction.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    points = sweep.points()
    total = len(points)
    digest = grid_digest(sweep, points)
    program = sweep._program.spec() if sweep._program is not None else None
    specs = []
    for k in range(shards):
        specs.append(
            ShardSpec(
                shard=k,
                of=shards,
                start=k * total // shards,
                stop=(k + 1) * total // shards,
                grid=digest,
                name=sweep.name,
                duration=sweep.duration,
                app=sweep._app,
                program=program,
                runner=sweep._runner,
                base=tuple(sweep.base.items()),
                axes=tuple(
                    (name, tuple(values)) for name, values in sweep.axes.items()
                ),
            )
        )
    return specs


def run_shard(
    spec: ShardSpec,
    *,
    checkpoint: Any,
    store: Any = None,
    executor: str = "serial",
    workers: int = 1,
    strict: bool = False,
) -> SweepReport:
    """Execute one shard, journaling into *checkpoint* (resumable).

    The returned report holds only this shard's rows; the full report comes
    from :func:`merge` over all shard checkpoints.
    """
    sweep = spec.sweep()
    points = sweep.points()
    if grid_digest(sweep, points) != spec.grid:
        raise CheckpointMismatchError(
            f"shard {spec.shard}/{spec.of} of {spec.name!r}: the locally "
            f"rebuilt grid does not match the spec's grid digest (the sweep "
            f"definition or code version changed since sharding)"
        )
    return run_service_sweep(
        sweep,
        points,
        store=store,
        checkpoint=checkpoint,
        executor=executor,
        workers=workers,
        keep_runs=False,
        strict=strict,
        subset=range(spec.start, spec.stop),
        shard={
            "shard": spec.shard,
            "of": spec.of,
            "start": spec.start,
            "stop": spec.stop,
        },
    )


def merge(sweep: Sweep, checkpoints: Sequence[Any]) -> SweepReport:
    """Recombine shard checkpoints into the full-grid report.

    Validates every checkpoint against *sweep*'s grid digest, requires the
    union of their rows to cover every grid index exactly, and aggregates
    in index order -- bit-identical (in every rendering) to a single-shot
    serial run of the same sweep.
    """
    points = sweep.points()
    digest = grid_digest(sweep, points)
    rows: Dict[int, Dict[str, Any]] = {}
    for path in checkpoints:
        header, completed = read_checkpoint(Path(path))
        if header.get("grid") != digest:
            raise CheckpointMismatchError(
                f"{path}: checkpoint belongs to a different sweep/grid than "
                f"{sweep.name!r} (digest mismatch)"
            )
        for index, payload in completed.items():
            rows.setdefault(index, payload)
    missing = [index for index in range(len(points)) if index not in rows]
    if missing:
        preview = ", ".join(map(str, missing[:8]))
        raise CheckpointMismatchError(
            f"merge of {sweep.name!r} is incomplete: {len(missing)} of "
            f"{len(points)} points missing (first: {preview}) -- run or "
            f"resume the shards covering them first"
        )
    results = [
        SweepResult.from_payload(rows[index]) for index in range(len(points))
    ]
    # The constructor re-hoists per-point run warnings out of the metric
    # rows, exactly as a live run's constructor did -- which is what makes
    # the merged report's warnings (and to_json) match the serial run.
    return SweepReport(results, name=sweep.name)
