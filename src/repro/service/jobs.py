"""A local job spool: submit / status / run / result over a directory.

This is the thin service facade the ROADMAP's "millions of users" shape
attaches to: a :class:`JobQueue` rooted at a spool directory, where every
submitted sweep becomes a job directory and all jobs share one
content-addressed result store -- so the traffic pattern the paper's
experiments generate (heavily overlapping parameter grids) mostly resolves
to cache hits, and the remainder executes with checkpoint protection.

Spool layout::

    <root>/
      store/                      # shared ResultStore (all jobs)
      jobs/job-000001/
        job.json                  # state machine: queued|running|done|failed
        sweep.pkl                 # the pickled Sweep (the work itself)
        checkpoint.jsonl          # appears while running; resume reads it
        report.json               # appears when done (SweepReport.to_json)

The state file is tiny and rewritten atomically; the expensive artefacts
(checkpoint rows, store segments) are append-only.  A job whose process was
killed simply stays ``running`` with a partial checkpoint -- ``resume``
picks it up from there; ``result`` of a done job is served straight from
``report.json`` (via :meth:`SweepReport.from_json`) without touching the
compiler.  Everything here is deliberately filesystem-only: a real queue or
HTTP frontend replaces :class:`JobQueue`'s directory walk, not the
store/checkpoint machinery underneath.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.api.sweep import Sweep, SweepReport

JOB_STATES = ("queued", "running", "done", "failed")


class JobError(RuntimeError):
    """A job operation that cannot proceed (unknown id, wrong state)."""


class JobQueue:
    """The directory-backed job facade (see the module docstring)."""

    def __init__(self, root: Any) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.store_root = self.root / "store"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)

    # -------------------------------------------------------------- helpers
    def _job_dir(self, job_id: str) -> Path:
        path = self.jobs_dir / job_id
        if not (path / "job.json").exists():
            raise JobError(f"unknown job {job_id!r} in spool {self.root}")
        return path

    def _read_state(self, path: Path) -> Dict[str, Any]:
        with open(path / "job.json", encoding="utf-8") as handle:
            return json.load(handle)

    def _write_state(self, path: Path, state: Dict[str, Any]) -> None:
        temporary = path / "job.json.tmp"
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(state, handle, indent=2)
        os.replace(temporary, path / "job.json")

    def _fresh_id(self) -> str:
        highest = 0
        for path in self.jobs_dir.glob("job-*"):
            try:
                highest = max(highest, int(path.name.split("-")[1]))
            except (IndexError, ValueError):
                continue
        return f"job-{highest + 1:06d}"

    # ----------------------------------------------------------------- api
    def submit(
        self,
        sweep: Sweep,
        *,
        executor: str = "serial",
        workers: int = 1,
    ) -> str:
        """Enqueue *sweep*; returns the job id (the work runs via :meth:`run`)."""
        job_id = self._fresh_id()
        path = self.jobs_dir / job_id
        path.mkdir()
        with open(path / "sweep.pkl", "wb") as handle:
            pickle.dump(sweep, handle)
        self._write_state(
            path,
            {
                "id": job_id,
                "name": sweep.name,
                "state": "queued",
                "points": len(sweep.points()),
                "executor": executor,
                "workers": workers,
                "submitted": time.time(),
                "error": None,
            },
        )
        return job_id

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job's state plus live progress from its checkpoint."""
        path = self._job_dir(job_id)
        state = self._read_state(path)
        checkpoint = path / "checkpoint.jsonl"
        completed = 0
        if checkpoint.exists():
            from repro.service.checkpoint import read_checkpoint

            try:
                _, rows = read_checkpoint(checkpoint)
                completed = len(rows)
            except Exception:
                completed = 0
        state["completed"] = completed
        return state

    def jobs(self) -> List[Dict[str, Any]]:
        """Status of every job in the spool, oldest first."""
        return [
            self.status(path.name)
            for path in sorted(self.jobs_dir.glob("job-*"))
            if (path / "job.json").exists()
        ]

    def run(self, job_id: str, *, resume: bool = False) -> SweepReport:
        """Execute (or resume) a job to completion and persist its report.

        Every job runs through the shared store and its own checkpoint, so
        overlapping jobs pay only for points no job has computed before,
        and a killed job's ``resume`` restarts from its journal.  A plain
        ``run`` refuses non-queued jobs (double execution is almost always
        a mistake); ``resume=True`` accepts ``running`` (killed mid-flight)
        and ``failed`` jobs too.
        """
        path = self._job_dir(job_id)
        state = self._read_state(path)
        acceptable = ("queued", "running", "failed") if resume else ("queued",)
        if state["state"] not in acceptable:
            raise JobError(
                f"job {job_id} is {state['state']!r}; "
                + ("resume" if resume else "run")
                + f" accepts only {acceptable}"
            )
        with open(path / "sweep.pkl", "rb") as handle:
            sweep = pickle.load(handle)
        state.update(state="running", error=None)
        self._write_state(path, state)
        try:
            report = sweep.run(
                executor=state["executor"],
                workers=state["workers"],
                keep_runs=False,
                store=self.store_root,  # path form: the runner opens+closes it
                checkpoint=path / "checkpoint.jsonl",
            )
        except Exception as error:
            state.update(state="failed", error=f"{type(error).__name__}: {error}")
            self._write_state(path, state)
            raise
        with open(path / "report.json", "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        state.update(state="done", service=report.service_stats)
        self._write_state(path, state)
        return report

    def resume(self, job_id: str) -> SweepReport:
        """Resume a killed or failed job from its checkpoint."""
        return self.run(job_id, resume=True)

    def result(self, job_id: str) -> SweepReport:
        """The finished job's report, restored from disk (no recompute)."""
        path = self._job_dir(job_id)
        report_path = path / "report.json"
        if not report_path.exists():
            state = self._read_state(path)
            raise JobError(
                f"job {job_id} has no report yet (state: {state['state']!r})"
            )
        with open(report_path, encoding="utf-8") as handle:
            return SweepReport.from_json(handle.read())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobQueue({str(self.root)!r})"
