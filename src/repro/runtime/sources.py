"""Time-triggered sources and sinks of the runtime.

Sources and sinks are a special case of modules (Sec. IV-B): they execute
time-triggered with the period the programmer declared (``@ 6.4 MHz``) and
communicate with the rest of the application through circular buffers with
FIFO semantics.  The runtime drivers implemented here:

* a :class:`SourceDriver` produces one sample per period, taking the values
  from a user-supplied generator (e.g. the synthetic PAL RF signal); when the
  buffer is full at a trigger instant the sample is *dropped* and a
  ``source-overflow`` violation is recorded -- this is exactly the real-time
  failure the buffer-sizing analysis must exclude,
* a :class:`SinkDriver` consumes one sample per period once it has started;
  when the buffer is empty at a trigger instant a ``sink-underflow`` violation
  is recorded.  A sink starts either at a configured offset or, by default, at
  the first instant data is available (the measured value of that instant is
  the pipeline-fill latency reported by the trace).

Both drivers convert their period (and offsets) into the event queue's native
time units once, at :meth:`start`: on a tick-based queue the per-period hot
path then only adds integers.  Trace timestamps are recorded as exact
rational seconds regardless of the queue's representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Iterator, List, Optional

from repro.graph.circular_buffer import CircularBuffer
from repro.runtime.events import EventQueue
from repro.runtime.trace import TraceRecorder
from repro.util.rational import Rat, as_rational


@dataclass
class SourceDriver:
    """Periodic producer writing one value per period into its buffer."""

    name: str
    buffer: CircularBuffer
    period: Rat
    values: Iterator[Any]
    trace: TraceRecorder
    queue: EventQueue
    start_offset: Rat = Fraction(0)
    produced: int = 0
    dropped: int = 0
    #: callback invoked whenever the buffer content changed (wakes the scheduler)
    on_change: Optional[Callable[[], None]] = None
    #: True once the periodic tick chain has been scheduled
    launched: bool = False

    def start(self) -> None:
        """Register the producer window and schedule the periodic ticks.

        Idempotent: each simulation run method calls it, and starting twice
        must not register a second window or schedule a duplicate tick chain
        (every tick re-schedules itself, so a duplicate would double the
        produced rate forever).
        """
        if self.launched:
            return
        self.launched = True
        self.buffer.register_producer(self.name)
        queue = self.queue
        self._period_i = queue.to_internal(self.period)
        self._label = f"source:{self.name}"
        queue.schedule(queue.to_internal(self.start_offset), self._tick, label=self._label)

    def _tick(self) -> None:
        queue = self.queue
        try:
            value = next(self.values)
        except StopIteration:
            return  # finite stimulus exhausted: stop producing
        trace = self.trace
        if self.buffer.can_produce(self.name, 1):
            self.buffer.produce(self.name, [value], 1)
            self.produced += 1
            if trace.endpoints_enabled:
                trace.record_endpoint(self.name, "source", queue.now_time, value)
            if trace.occupancy_enabled:
                trace.record_occupancy(self.buffer.name, self.buffer.occupancy())
            if self.on_change is not None:
                self.on_change()
        else:
            self.dropped += 1
            if trace.violations_enabled:
                trace.record_violation(
                    self.name,
                    "source-overflow",
                    queue.now_time,
                    detail=f"buffer {self.buffer.name!r} full ({self.buffer.occupancy()} tokens)",
                )
        queue.schedule(queue.now + self._period_i, self._tick, label=self._label)


@dataclass
class SinkDriver:
    """Periodic consumer reading one value per period from its buffer."""

    name: str
    buffer: CircularBuffer
    period: Rat
    trace: TraceRecorder
    queue: EventQueue
    #: absolute start time; None = start when data first becomes available
    start_time: Optional[Rat] = None
    started: bool = False
    consumed: List[Any] = field(default_factory=list)
    #: streaming count of consumed samples; stays exact when the stored
    #: ``consumed`` list is extrapolated (or skipped) under fast-forward
    consumed_count: int = 0
    misses: int = 0
    on_change: Optional[Callable[[], None]] = None
    #: True once the consumer window is registered (distinct from ``started``,
    #: which records that periodic consumption has begun)
    launched: bool = False

    def start(self) -> None:
        """Register the consumer window and, for explicitly timed sinks,
        schedule the tick chain.  Idempotent (see :meth:`SourceDriver.start`)."""
        if self.launched:
            return
        self.launched = True
        self.buffer.register_consumer(self.name)
        queue = self.queue
        self._period_i = queue.to_internal(self.period)
        self._label = f"sink:{self.name}"
        if self.start_time is not None:
            self.started = True
            queue.schedule(queue.to_internal(self.start_time), self._tick, label=self._label)
        else:
            # Delayed-start sinks phase in half a period after data arrives;
            # converted here so the time base must cover the half period too.
            self._half_period_i = queue.to_internal(self.period / 2)

    def notify_data_available(self) -> None:
        """Called by the scheduler when the sink's buffer received data; used
        to start sinks that wait for the pipeline to fill.

        The first consumption happens half a period after the data became
        available: the sink phase is then interleaved with the (equally
        periodic) production instants, which avoids start-time races on exact
        ties.  An explicit ``start_time`` overrides this behaviour.
        """
        if self.started:
            return
        if self.buffer.can_consume(self.name, 1):
            self.started = True
            queue = self.queue
            queue.schedule(queue.now + self._half_period_i, self._tick, label=self._label)

    def _tick(self) -> None:
        queue = self.queue
        trace = self.trace
        if self.buffer.can_consume(self.name, 1):
            value = self.buffer.consume(self.name, 1)[0]
            self.consumed.append(value)
            self.consumed_count += 1
            if trace.endpoints_enabled:
                trace.record_endpoint(self.name, "sink", queue.now_time, value)
            if self.on_change is not None:
                self.on_change()
        else:
            self.misses += 1
            if trace.violations_enabled:
                trace.record_violation(
                    self.name,
                    "sink-underflow",
                    queue.now_time,
                    detail=f"buffer {self.buffer.name!r} empty",
                )
        queue.schedule(queue.now + self._period_i, self._tick, label=self._label)
