"""Time-triggered sources and sinks of the runtime.

Sources and sinks are a special case of modules (Sec. IV-B): they execute
time-triggered with the period the programmer declared (``@ 6.4 MHz``) and
communicate with the rest of the application through circular buffers with
FIFO semantics.  The runtime drivers implemented here:

* a :class:`SourceDriver` produces one sample per period, taking the values
  from a :class:`Stimulus` (e.g. the synthetic PAL RF signal); when the
  buffer is full at a trigger instant the sample is *dropped* and a
  ``source-overflow`` violation is recorded -- this is exactly the real-time
  failure the buffer-sizing analysis must exclude,
* a :class:`SinkDriver` consumes one sample per period once it has started;
  when the buffer is empty at a trigger instant a ``sink-underflow`` violation
  is recorded.  A sink starts either at a configured offset or, by default, at
  the first instant data is available (the measured value of that instant is
  the pipeline-fill latency reported by the trace).

Both drivers convert their period (and offsets) into the event queue's native
time units once, at :meth:`start`: on a tick-based queue the per-period hot
path then only adds integers.  Trace timestamps are recorded as exact
rational seconds regardless of the queue's representation.

The stimulus model
------------------
A source's value stream is a :class:`Stimulus`: ``next()`` draws the next
sample, ``advance(k)`` skips ``k`` draws -- in O(1) for the closed-form
stimuli (:class:`ConstantStimulus`, :class:`PeriodicStimulus`,
:class:`RampStimulus`), by replaying ``k`` draws for generator-backed ones
(:class:`GeneratorStimulus`) -- and ``state()`` / ``restore()`` round-trip
the stream position through a serialisable value.  The declaration is what
lets the steady-state fast-forwarder (:mod:`repro.engine.steady_state`)
fold the stream position into its periodicity key and advance the stream
exactly through a jump, making jumps *value*-exact and not just
timing-exact.  :func:`as_stimulus` adapts the legacy signal spellings
(``None``, lists, factories); bare iterators still work behind a
deprecation shim.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Union

from repro.graph.circular_buffer import CircularBuffer
from repro.runtime.events import EventQueue
from repro.runtime.trace import TraceRecorder
from repro.util.deprecation import warn_deprecated
from repro.util.rational import Rat, as_rational


# --------------------------------------------------------------------------
# Stimuli
# --------------------------------------------------------------------------

class Stimulus:
    """A declared source value stream.

    Subclasses implement ``next()`` (draw one sample) and the jump support:
    ``advance(k)`` must leave the stream in exactly the state ``k``
    sequential ``next()`` calls would -- the closed-form stimuli do this in
    O(1) -- and ``state()`` / ``restore(state)`` round-trip the stream
    position through a serialisable value.

    ``value_periodic`` declares that the stream's *state space* is finite
    and the values exactly periodic in it: only then can the steady-state
    detector fold ``state()`` into its periodicity key and prove a jump
    value-exact.  Aperiodic stimuli (ramps, generators) keep working --
    they simply disqualify the value-exact path and the run falls back to
    naive stepping under ``fast_forward="auto"``.
    """

    #: True when the stream is exactly periodic in value (finite state
    #: space folded into the fast-forward periodicity key)
    value_periodic: bool = False

    #: True when ``advance(k)`` costs O(k) (the default replay below).
    #: Closed-form stimuli override ``advance`` with an O(1) index move and
    #: set this False; the steady-state fast-forwarder warns
    #: (``generator-advance``) when a jump replays a large linear advance.
    advance_linear: bool = True

    def next(self) -> Any:
        """Draw the next sample.  Raises :class:`StopIteration` when a
        finite stream is exhausted (the driver then stops producing)."""
        raise NotImplementedError

    def advance(self, k: int) -> None:
        """Skip *k* draws, exactly as if ``next()`` had been called *k*
        times (values discarded).  Closed-form subclasses override this
        with an O(1) computation."""
        for _ in range(k):
            self.next()

    def state(self) -> Any:
        """The serialisable stream position (see :meth:`restore`)."""
        raise NotImplementedError

    def restore(self, state: Any) -> None:
        """Reset the stream to a position captured by :meth:`state`."""
        raise NotImplementedError

    def state_token(self) -> Any:
        """A cheap hashable token that changes whenever :meth:`state` does.

        The steady-state detector folds this token into its periodicity key
        directly -- no serialisation, no ``repr`` -- at every anchor
        sample, so it must be O(1) to read.  For the closed-form stimuli
        the integer position *is* the token (the default below); subclasses
        whose ``state()`` is expensive should override this with a monotone
        version counter instead.
        """
        return self.state()

    def fresh(self) -> "Stimulus":
        """An independent, rewound copy for a new run.  Stimuli that cannot
        rewind (bare-iterator adapters) return themselves -- the legacy
        shared-iterator semantics."""
        return self


class ConstantStimulus(Stimulus):
    """The same value on every draw (``itertools.repeat`` declared)."""

    value_periodic = True
    advance_linear = False

    def __init__(self, value: Any) -> None:
        self.value = value

    def next(self) -> Any:
        return self.value

    def advance(self, k: int) -> None:
        pass

    def state(self) -> Any:
        return None

    def restore(self, state: Any) -> None:
        pass

    def fresh(self) -> "ConstantStimulus":
        return self  # stateless: safe to share between runs


class PeriodicStimulus(Stimulus):
    """An endless cycle over a finite block of values (``itertools.cycle``
    declared): draw ``n`` is ``values[n % len(values)]``."""

    value_periodic = True
    advance_linear = False

    def __init__(self, values: Iterable[Any], *, index: int = 0) -> None:
        self.values = list(values)
        if not self.values:
            raise ValueError("PeriodicStimulus needs at least one value")
        #: draws per value period
        self.period = len(self.values)
        self._start_index = index % self.period
        self._index = self._start_index

    def next(self) -> Any:
        value = self.values[self._index]
        self._index = (self._index + 1) % self.period
        return value

    def advance(self, k: int) -> None:
        self._index = (self._index + k) % self.period

    def state(self) -> int:
        return self._index

    def restore(self, state: Any) -> None:
        self._index = int(state) % self.period

    def fresh(self) -> "PeriodicStimulus":
        clone = _copy.copy(self)
        clone._index = clone._start_index
        return clone


class RampStimulus(Stimulus):
    """The affine stream ``start + n * step`` (draw index ``n``).

    The value of draw ``n`` is *defined* as ``start + n * step`` -- computed
    by multiplication, so ``advance(k)`` and ``k`` sequential ``next()``
    calls are bit-identical even for float steps.  With the default
    ``RampStimulus(0, 1)`` this reproduces the legacy ``itertools.count()``
    source.  Never ``value_periodic``: the values do not repeat, so ramps
    disqualify value-exact fast-forward (the run steps naively).
    """

    value_periodic = False
    advance_linear = False

    def __init__(self, start: Any = 0, step: Any = 1) -> None:
        self.start = start
        self.step = step
        self._index = 0

    def next(self) -> Any:
        value = self.start + self._index * self.step
        self._index += 1
        return value

    def advance(self, k: int) -> None:
        self._index += k

    def state(self) -> int:
        return self._index

    def restore(self, state: Any) -> None:
        self._index = int(state)

    def fresh(self) -> "RampStimulus":
        return RampStimulus(self.start, self.step)


class GeneratorStimulus(Stimulus):
    """Adapter for iterator- or factory-backed streams.

    Construct it from a zero-argument *factory* (``lambda: iter(...)`` or a
    generator function) to get the full protocol: ``advance(k)`` replays
    ``k`` draws and ``state()`` / ``restore()`` record and re-derive the
    draw count from a fresh iterator.  Construct it from a bare iterator
    and the stream still drains normally, but ``state()`` / ``restore()``
    raise (the iterator cannot be rewound) -- this is the adapter
    :func:`as_stimulus` auto-wraps deprecated bare-iterator signals in.
    """

    value_periodic = False

    def __init__(self, source: Union[Iterator[Any], Callable[[], Iterable[Any]]],
                 *, auto_wrapped: bool = False) -> None:
        if callable(source) and not hasattr(source, "__next__") and not hasattr(source, "__iter__"):
            self._factory: Optional[Callable[[], Iterable[Any]]] = source
            self._iterator = iter(source())
        else:
            self._factory = None
            self._iterator = iter(source)  # type: ignore[arg-type]
        #: draws taken so far (the serialisable position of factory streams)
        self.draws = 0
        #: True when :func:`as_stimulus` wrapped a deprecated bare iterator;
        #: the auto fast-forward path reports these as ``undeclared-source``
        self.auto_wrapped = auto_wrapped

    def next(self) -> Any:
        value = next(self._iterator)  # StopIteration propagates: finite stream
        self.draws += 1
        return value

    def advance(self, k: int) -> None:
        iterator = self._iterator
        for _ in range(k):
            next(iterator)
        self.draws += k

    def _require_factory(self) -> None:
        if self._factory is None:
            raise ValueError(
                "a GeneratorStimulus wrapped around a bare iterator cannot "
                "serialise its position; construct it from a zero-argument "
                "factory to enable state()/restore()"
            )

    def state(self) -> int:
        self._require_factory()
        return self.draws

    def restore(self, state: Any) -> None:
        self._require_factory()
        self._iterator = iter(self._factory())  # type: ignore[misc]
        self.draws = 0
        self.advance(int(state))

    def fresh(self) -> "GeneratorStimulus":
        if self._factory is None:
            return self  # cannot rewind: legacy shared-iterator semantics
        return GeneratorStimulus(self._factory, auto_wrapped=self.auto_wrapped)


def as_stimulus(signal: Any) -> Stimulus:
    """Normalise a source signal argument into a :class:`Stimulus`.

    Resolution order:

    * ``None`` -- the counting default: ``RampStimulus(0, 1)``,
    * a :class:`Stimulus` -- used as given,
    * a zero-argument callable (no ``__next__`` / ``__iter__``) -- the
      factory spelling: wrapped in a :class:`GeneratorStimulus` that keeps
      the factory, enabling ``state()`` / ``restore()``; a factory
      returning a :class:`Stimulus` yields that stimulus directly,
    * an object with ``__next__`` (a bare iterator / generator) --
      **deprecated**: auto-wrapped in a :class:`GeneratorStimulus` with a
      :class:`DeprecationWarning`; declare a stimulus (or pass a factory)
      instead,
    * any other iterable (list, tuple, array) -- wrapped silently in a
      :class:`GeneratorStimulus` (finite ad-hoc data keeps its legacy
      run-to-exhaustion semantics).
    """
    if signal is None:
        return RampStimulus(0, 1)
    if isinstance(signal, Stimulus):
        return signal
    if callable(signal) and not hasattr(signal, "__next__") and not hasattr(signal, "__iter__"):
        probe = signal()
        if isinstance(probe, Stimulus):
            return probe
        return GeneratorStimulus(signal)
    if hasattr(signal, "__next__"):
        warn_deprecated(
            "a bare-Iterator source signal", "repro.runtime.sources.GeneratorStimulus"
        )
        return GeneratorStimulus(signal, auto_wrapped=True)
    return GeneratorStimulus(iter(signal))


@dataclass
class SourceDriver:
    """Periodic producer writing one value per period into its buffer."""

    name: str
    buffer: CircularBuffer
    period: Rat
    #: the value stream; any legacy spelling (iterator, list, factory,
    #: ``None``) is normalised through :func:`as_stimulus` at construction
    values: Any
    trace: TraceRecorder
    queue: EventQueue
    start_offset: Rat = Fraction(0)
    produced: int = 0
    dropped: int = 0
    #: callback invoked whenever the buffer content changed (wakes the scheduler)
    on_change: Optional[Callable[[], None]] = None
    #: True once the periodic tick chain has been scheduled
    launched: bool = False

    def __post_init__(self) -> None:
        self.values = as_stimulus(self.values)

    def start(self) -> None:
        """Register the producer window and schedule the periodic ticks.

        Idempotent: each simulation run method calls it, and starting twice
        must not register a second window or schedule a duplicate tick chain
        (every tick re-schedules itself, so a duplicate would double the
        produced rate forever).
        """
        if self.launched:
            return
        self.launched = True
        self.buffer.register_producer(self.name)
        queue = self.queue
        self._period_i = queue.to_internal(self.period)
        self._label = f"source:{self.name}"
        queue.schedule(queue.to_internal(self.start_offset), self._tick, label=self._label)

    def _tick(self) -> None:
        queue = self.queue
        try:
            value = self.values.next()
        except StopIteration:
            return  # finite stimulus exhausted: stop producing
        trace = self.trace
        if self.buffer.can_produce(self.name, 1):
            self.buffer.produce(self.name, [value], 1)
            self.produced += 1
            if trace.endpoints_enabled:
                trace.record_endpoint(self.name, "source", queue.now_time, value)
            if trace.occupancy_enabled:
                trace.record_occupancy(self.buffer.name, self.buffer.occupancy())
            if self.on_change is not None:
                self.on_change()
        else:
            self.dropped += 1
            if trace.violations_enabled:
                trace.record_violation(
                    self.name,
                    "source-overflow",
                    queue.now_time,
                    detail=f"buffer {self.buffer.name!r} full ({self.buffer.occupancy()} tokens)",
                )
        queue.schedule(queue.now + self._period_i, self._tick, label=self._label)


@dataclass
class SinkDriver:
    """Periodic consumer reading one value per period from its buffer."""

    name: str
    buffer: CircularBuffer
    period: Rat
    trace: TraceRecorder
    queue: EventQueue
    #: absolute start time; None = start when data first becomes available
    start_time: Optional[Rat] = None
    started: bool = False
    consumed: List[Any] = field(default_factory=list)
    #: streaming count of consumed samples; stays exact when the stored
    #: ``consumed`` list is extrapolated (or skipped) under fast-forward
    consumed_count: int = 0
    misses: int = 0
    on_change: Optional[Callable[[], None]] = None
    #: True once the consumer window is registered (distinct from ``started``,
    #: which records that periodic consumption has begun)
    launched: bool = False

    def start(self) -> None:
        """Register the consumer window and, for explicitly timed sinks,
        schedule the tick chain.  Idempotent (see :meth:`SourceDriver.start`)."""
        if self.launched:
            return
        self.launched = True
        self.buffer.register_consumer(self.name)
        queue = self.queue
        self._period_i = queue.to_internal(self.period)
        self._label = f"sink:{self.name}"
        if self.start_time is not None:
            self.started = True
            queue.schedule(queue.to_internal(self.start_time), self._tick, label=self._label)
        else:
            # Delayed-start sinks phase in half a period after data arrives;
            # converted here so the time base must cover the half period too.
            self._half_period_i = queue.to_internal(self.period / 2)

    def notify_data_available(self) -> None:
        """Called by the scheduler when the sink's buffer received data; used
        to start sinks that wait for the pipeline to fill.

        The first consumption happens half a period after the data became
        available: the sink phase is then interleaved with the (equally
        periodic) production instants, which avoids start-time races on exact
        ties.  An explicit ``start_time`` overrides this behaviour.
        """
        if self.started:
            return
        if self.buffer.can_consume(self.name, 1):
            self.started = True
            queue = self.queue
            queue.schedule(queue.now + self._half_period_i, self._tick, label=self._label)

    def _tick(self) -> None:
        queue = self.queue
        trace = self.trace
        if self.buffer.can_consume(self.name, 1):
            value = self.buffer.consume(self.name, 1)[0]
            self.consumed.append(value)
            self.consumed_count += 1
            if trace.endpoints_enabled:
                trace.record_endpoint(self.name, "sink", queue.now_time, value)
            if self.on_change is not None:
                self.on_change()
        else:
            self.misses += 1
            if trace.violations_enabled:
                trace.record_violation(
                    self.name,
                    "sink-underflow",
                    queue.now_time,
                    detail=f"buffer {self.buffer.name!r} empty",
                )
        queue.schedule(queue.now + self._period_i, self._tick, label=self._label)
