"""Time-triggered sources and sinks of the runtime.

Sources and sinks are a special case of modules (Sec. IV-B): they execute
time-triggered with the period the programmer declared (``@ 6.4 MHz``) and
communicate with the rest of the application through circular buffers with
FIFO semantics.  The runtime drivers implemented here:

* a :class:`SourceDriver` produces one sample per period, taking the values
  from a user-supplied generator (e.g. the synthetic PAL RF signal); when the
  buffer is full at a trigger instant the sample is *dropped* and a
  ``source-overflow`` violation is recorded -- this is exactly the real-time
  failure the buffer-sizing analysis must exclude,
* a :class:`SinkDriver` consumes one sample per period once it has started;
  when the buffer is empty at a trigger instant a ``sink-underflow`` violation
  is recorded.  A sink starts either at a configured offset or, by default, at
  the first instant data is available (the measured value of that instant is
  the pipeline-fill latency reported by the trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Iterator, List, Optional

from repro.graph.circular_buffer import CircularBuffer
from repro.runtime.events import EventQueue
from repro.runtime.trace import TraceRecorder
from repro.util.rational import Rat, as_rational


@dataclass
class SourceDriver:
    """Periodic producer writing one value per period into its buffer."""

    name: str
    buffer: CircularBuffer
    period: Rat
    values: Iterator[Any]
    trace: TraceRecorder
    queue: EventQueue
    start_offset: Rat = Fraction(0)
    produced: int = 0
    dropped: int = 0
    #: callback invoked whenever the buffer content changed (wakes the scheduler)
    on_change: Optional[Callable[[], None]] = None
    #: True once the periodic tick chain has been scheduled
    launched: bool = False

    def start(self) -> None:
        """Register the producer window and schedule the periodic ticks.

        Idempotent: each simulation run method calls it, and starting twice
        must not register a second window or schedule a duplicate tick chain
        (every tick re-schedules itself, so a duplicate would double the
        produced rate forever).
        """
        if self.launched:
            return
        self.launched = True
        self.buffer.register_producer(self.name)
        self.queue.schedule(self.start_offset, self._tick, label=f"source:{self.name}")

    def _tick(self) -> None:
        time = self.queue.now
        try:
            value = next(self.values)
        except StopIteration:
            return  # finite stimulus exhausted: stop producing
        if self.buffer.can_produce(self.name, 1):
            self.buffer.produce(self.name, [value], 1)
            self.produced += 1
            self.trace.record_endpoint(self.name, "source", time, value)
            if self.trace.occupancy_enabled:
                self.trace.record_occupancy(self.buffer.name, self.buffer.occupancy())
            if self.on_change is not None:
                self.on_change()
        else:
            self.dropped += 1
            self.trace.record_violation(
                self.name,
                "source-overflow",
                time,
                detail=f"buffer {self.buffer.name!r} full ({self.buffer.occupancy()} tokens)",
            )
        self.queue.schedule(time + self.period, self._tick, label=f"source:{self.name}")


@dataclass
class SinkDriver:
    """Periodic consumer reading one value per period from its buffer."""

    name: str
    buffer: CircularBuffer
    period: Rat
    trace: TraceRecorder
    queue: EventQueue
    #: absolute start time; None = start when data first becomes available
    start_time: Optional[Rat] = None
    started: bool = False
    consumed: List[Any] = field(default_factory=list)
    misses: int = 0
    on_change: Optional[Callable[[], None]] = None
    #: True once the consumer window is registered (distinct from ``started``,
    #: which records that periodic consumption has begun)
    launched: bool = False

    def start(self) -> None:
        """Register the consumer window and, for explicitly timed sinks,
        schedule the tick chain.  Idempotent (see :meth:`SourceDriver.start`)."""
        if self.launched:
            return
        self.launched = True
        self.buffer.register_consumer(self.name)
        if self.start_time is not None:
            self.started = True
            self.queue.schedule(self.start_time, self._tick, label=f"sink:{self.name}")

    def notify_data_available(self) -> None:
        """Called by the scheduler when the sink's buffer received data; used
        to start sinks that wait for the pipeline to fill.

        The first consumption happens half a period after the data became
        available: the sink phase is then interleaved with the (equally
        periodic) production instants, which avoids start-time races on exact
        ties.  An explicit ``start_time`` overrides this behaviour.
        """
        if self.started:
            return
        if self.buffer.can_consume(self.name, 1):
            self.started = True
            self.queue.schedule(
                self.queue.now + self.period / 2, self._tick, label=f"sink:{self.name}"
            )

    def _tick(self) -> None:
        time = self.queue.now
        if self.buffer.can_consume(self.name, 1):
            value = self.buffer.consume(self.name, 1)[0]
            self.consumed.append(value)
            self.trace.record_endpoint(self.name, "sink", time, value)
            if self.on_change is not None:
                self.on_change()
        else:
            self.misses += 1
            self.trace.record_violation(
                self.name, "sink-underflow", time, detail=f"buffer {self.buffer.name!r} empty"
            )
        self.queue.schedule(time + self.period, self._tick, label=f"sink:{self.name}")
