"""Discrete-event machinery of the runtime simulator.

The simulator is a classical discrete-event engine: an event queue ordered by
(time, sequence number) whose entries are callbacks.  Exact rational
timestamps are used so that periodic sources and sinks with incommensurable
frequencies (6.4 MHz vs 32 kHz) never suffer floating-point drift.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, List, Optional, Tuple

from repro.util.rational import Rat, as_rational

EventCallback = Callable[[], None]


@dataclass(order=True)
class Event:
    """A scheduled callback."""

    time: Rat
    sequence: int
    callback: EventCallback = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventQueue:
    """A time-ordered queue of events."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self.now: Rat = Fraction(0)
        self.processed = 0

    def schedule(self, time: Rat, callback: EventCallback, *, label: str = "") -> Event:
        """Schedule *callback* at absolute *time* (must not be in the past)."""
        time = as_rational(time)
        if time < self.now:
            raise ValueError(f"cannot schedule event at {time} before current time {self.now}")
        event = Event(time=time, sequence=next(self._counter), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay: Rat, callback: EventCallback, *, label: str = "") -> Event:
        """Schedule *callback* ``delay`` seconds after the current time."""
        return self.schedule(self.now + as_rational(delay), callback, label=label)

    def cancel(self, event: Event) -> None:
        event.cancelled = True

    def empty(self) -> bool:
        return not any(not e.cancelled for e in self._heap)

    def run_until(
        self,
        end_time: Rat,
        *,
        max_events: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> Rat:
        """Process events up to (and including) *end_time*; returns the final time.

        ``max_events`` bounds the *total* processed count (a safety valve for
        runaway simulations); ``stop`` is re-evaluated after every event and
        ends the run early when it returns true (used to run "until N firings
        completed").  Only an exhausted run -- queue drained or next event
        beyond *end_time* -- fast-forwards the clock to *end_time*; a run cut
        short by ``max_events`` or ``stop`` leaves ``now`` at the last
        processed event so execution can resume seamlessly.
        """
        end_time = as_rational(end_time)
        cut_short = False
        while self._heap:
            event = self._heap[0]
            if event.time > end_time:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            self.processed += 1
            if max_events is not None and self.processed >= max_events:
                cut_short = True
                break
            if stop is not None and stop():
                cut_short = True
                break
        if not cut_short and self.now < end_time:
            self.now = end_time
        return self.now

    def peek_time(self) -> Optional[Rat]:
        for event in sorted(self._heap):
            if not event.cancelled:
                return event.time
        return None
