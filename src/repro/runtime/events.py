"""Discrete-event machinery of the runtime simulator.

The simulator is a classical discrete-event engine: an event queue ordered by
(time, sequence number) whose entries are callbacks.  Timestamps are exact so
that periodic sources and sinks with incommensurable frequencies (6.4 MHz vs
32 kHz) never suffer floating-point drift, and the queue supports two exact
representations of time:

* **fraction mode** (no time base): timestamps are
  :class:`~fractions.Fraction` seconds -- the original representation, always
  applicable,
* **tick mode** (a :class:`~repro.util.rational.TimeBase` attached):
  timestamps are integer tick counts of the base's resolution.  The heap then
  orders plain ``(int, int)`` pairs, which is several times cheaper than
  ordering fractions -- the dominant per-event cost on dispatch-bound
  workloads -- while remaining exact: tick counts round-trip to the very same
  rationals via :meth:`EventQueue.to_time` / :attr:`EventQueue.now_time`.

``now`` and all values passed to :meth:`EventQueue.schedule` are in the
queue's *native units*: integer ticks in tick mode, rational seconds in
fraction mode.  Rational inputs are accepted in tick mode too and converted
exactly (:class:`~repro.util.rational.TimeBaseError` if off the grid); run
horizons are converted by flooring, which is lossless for event processing
because every event lies on the grid.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, List, Optional, Union

from repro.util.rational import Rat, TimeBase, as_rational

EventCallback = Callable[[], None]

#: A timestamp in the queue's native units: ticks (int) or seconds (Fraction).
InternalTime = Union[int, Rat]


@dataclass(order=True)
class Event:
    """A scheduled callback.  ``time`` is in the queue's native units."""

    time: InternalTime
    sequence: int
    callback: EventCallback = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventQueue:
    """A time-ordered queue of events (fraction- or tick-based, see module
    docstring)."""

    def __init__(self, timebase: Optional[TimeBase] = None) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self.timebase: Optional[TimeBase] = timebase
        self.now: InternalTime = 0 if timebase is not None else Fraction(0)
        self.processed = 0
        self._cancelled_pending = 0

    # -------------------------------------------------------------- time base
    def set_timebase(self, timebase: Optional[TimeBase]) -> None:
        """Attach (or detach) a time base.  Only allowed on a pristine queue:
        once events exist or time advanced their representation is fixed."""
        if self._heap or self.processed or self.now != 0:
            raise ValueError("the time base of a queue with history cannot change")
        self.timebase = timebase
        self.now = 0 if timebase is not None else Fraction(0)

    def to_internal(self, value) -> InternalTime:
        """Convert an absolute time or duration to native units (exact;
        raises :class:`~repro.util.rational.TimeBaseError` off the grid).
        Integers are already ticks in tick mode and pass through."""
        if self.timebase is not None:
            if isinstance(value, int):
                return value
            return self.timebase.to_ticks(as_rational(value))
        return as_rational(value)

    def to_time(self, internal: InternalTime) -> Rat:
        """The exact rational seconds of a native-unit timestamp."""
        tb = self.timebase
        return tb.to_time(internal) if tb is not None else internal

    @property
    def now_time(self) -> Rat:
        """The current time as exact rational seconds (both modes)."""
        tb = self.timebase
        return tb.to_time(self.now) if tb is not None else self.now

    # ------------------------------------------------------------- scheduling
    def schedule(self, time, callback: EventCallback, *, label: str = "") -> Event:
        """Schedule *callback* at absolute *time* (must not be in the past).

        *time* is in native units; rational values are converted exactly in
        tick mode.
        """
        if self.timebase is not None:
            if not isinstance(time, int):
                time = self.timebase.to_ticks(as_rational(time))
        else:
            time = as_rational(time)
        if time < self.now:
            raise ValueError(f"cannot schedule event at {time} before current time {self.now}")
        event = Event(time=time, sequence=next(self._counter), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay, callback: EventCallback, *, label: str = "") -> Event:
        """Schedule *callback* ``delay`` (native units) after the current
        time."""
        return self.schedule(self.now + self.to_internal(delay), callback, label=label)

    def shift_pending(self, shift: InternalTime) -> None:
        """Advance ``now`` *and* every pending event by ``shift`` native
        units.

        This is the O(pending) primitive behind steady-state fast-forward: a
        uniform translation preserves the heap order (times move rigidly,
        sequence numbers are untouched), so after the shift the queue behaves
        exactly as if the skipped periods had been simulated.  Cancelled
        entries are shifted too -- they only wait to be lazily dropped.
        """
        if shift < 0:
            raise ValueError(f"cannot shift the pending events backwards ({shift})")
        if shift == 0:
            return
        for event in self._heap:
            event.time += shift
        self.now = self.now + shift

    def cancel(self, event: Event) -> None:
        if not event.cancelled:
            event.cancelled = True
            self._cancelled_pending += 1

    @property
    def cancelled_pending(self) -> int:
        """Number of cancelled entries still sitting in the heap.

        Preemptive platform policies cancel and re-post completion events,
        so the count is an observable measure of preemption churn (and of
        the lazy-prune debt :meth:`_drop_cancelled_head` still owes).
        """
        return self._cancelled_pending

    def _drop_cancelled_head(self) -> None:
        """Lazily pop cancelled events off the heap top.  Each cancelled
        event is popped exactly once over the queue's lifetime, so
        :meth:`empty` and :meth:`peek_time` are O(1) amortised instead of
        scanning (or worse, sorting) the whole heap per call."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._cancelled_pending -= 1

    def prune_cancelled(self) -> None:
        """Drop *every* cancelled entry from the heap at once.

        :meth:`_drop_cancelled_head` only pays down the lazy-prune debt at
        the heap top; consumers that iterate the whole heap (the
        steady-state detector folds the pending multiset into its
        periodicity key at every anchor completion) would otherwise re-sort
        dead entries forever.  O(1) when there is no debt
        (``_cancelled_pending == 0``), one O(live) rebuild otherwise --
        each cancelled event is removed exactly once either way.
        """
        if not self._cancelled_pending:
            return
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0

    def empty(self) -> bool:
        self._drop_cancelled_head()
        return not self._heap

    def peek_time(self) -> Optional[Rat]:
        """Exact rational time of the next pending event (``None`` when
        drained)."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self.to_time(self._heap[0].time)

    # -------------------------------------------------------------- execution
    def run_until(
        self,
        end_time,
        *,
        max_events: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> InternalTime:
        """Process events up to (and including) *end_time*; returns the final
        (native-unit) time.

        ``max_events`` bounds the *total* processed count (a safety valve for
        runaway simulations); ``stop`` is re-evaluated after every event and
        ends the run early when it returns true (used to run "until N firings
        completed").  Only an exhausted run -- queue drained or next event
        beyond *end_time* -- fast-forwards the clock to *end_time*; a run cut
        short by ``max_events`` or ``stop`` leaves ``now`` at the last
        processed event so execution can resume seamlessly.

        In tick mode a rational *end_time* is floored to the tick grid, which
        processes exactly the same events (they all lie on the grid); ``now``
        then fast-forwards to that last grid point instead of the requested
        instant.
        """
        if self.timebase is not None:
            if not isinstance(end_time, int):
                end_time = self.timebase.ticks_floor(as_rational(end_time))
        else:
            end_time = as_rational(end_time)
        cut_short = False
        while self._heap:
            event = self._heap[0]
            if event.time > end_time:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self.now = event.time
            event.callback()
            self.processed += 1
            if max_events is not None and self.processed >= max_events:
                cut_short = True
                break
            if stop is not None and stop():
                cut_short = True
                break
        if not cut_short and self.now < end_time:
            self.now = end_time
        return self.now
