"""Discrete-event execution of compiled OIL programs.

The simulator instantiates the module hierarchy of a compiled program --
FIFOs, sources, sinks, sequential-module task graphs and black boxes -- and
executes it with self-timed (data-driven) task semantics on virtual
unbounded-parallel hardware: every task occupies its own processor, exactly
the execution model the CTA analysis bounds.  This replaces the paper's
multi-core MPSoC platform (ref. [28]); each task firing takes its registered
worst-case response time.

The simulation is used by the examples and benchmarks to validate the
analysis results: with the buffer capacities computed by
:mod:`repro.cta.buffer_sizing`, periodic sources never find their buffer full
and periodic sinks never find it empty, and the observed buffer occupancies
stay within the computed capacities.

Modal behaviour: a sequential module with a single (infinite) top-level loop
runs fully data-driven; a module with several top-level loops switches
between them according to a *mode schedule* (iteration quotas per loop)
supplied by the caller -- the adversarial mode sequences of experiment E10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.compiler import CompilationResult
from repro.engine.dispatcher import ExecutionEngine
from repro.engine.policies import SchedulerPolicy
from repro.graph.circular_buffer import CircularBuffer
from repro.graph.taskgraph import Access, Task, TaskGraph
from repro.lang import ast
from repro.lang.semantics import BlackBoxModule
from repro.runtime.events import EventQueue
from repro.runtime.functions import FunctionRegistry, FunctionSpec
from repro.runtime.sources import SinkDriver, SourceDriver, Stimulus
from repro.runtime.tasks import OilRuntimeError, RuntimeTask
from repro.runtime.trace import TraceRecorder
from repro.util.rational import Rat, TimeBase, as_rational
from repro.util.runwarnings import RunWarning

if TYPE_CHECKING:  # annotation only -- repro.platform imports the engine
    from repro.platform.model import Platform

#: A mode schedule: per module instance path (or module name), the cyclic list
#: of (loop identifier, iteration quota) phases.
ModeSchedule = Mapping[str, Sequence[Tuple[str, int]]]


@dataclass
class SequentialInstance:
    """Book-keeping of one instantiated sequential module."""

    path: str
    graph: TaskGraph
    tasks: List[RuntimeTask] = field(default_factory=list)
    #: phases: list of (loop identifier, iteration quota); empty = single mode
    phases: List[Tuple[str, int]] = field(default_factory=list)
    phase_index: int = 0

    def tasks_of_loop(self, loop: Optional[str]) -> List[RuntimeTask]:
        return [t for t in self.tasks if (t.task.loop or "").split(".")[0] == (loop or "")]

    def active_loop(self) -> Optional[str]:
        if not self.phases:
            return None
        return self.phases[self.phase_index % len(self.phases)][0]

    def apply_activation(self) -> None:
        """Activate the tasks of the current phase (single-mode: all tasks).

        When a mode switch activates a loop, the windows of its tasks are
        moved forward to the frontier the previous mode left behind -- this is
        the runtime counterpart of the distribution/combination tasks of
        Sec. V-B.3 (the next values of a stream go to whichever loop executes
        next), and the windows of inactive loops are excluded from the buffer
        availability computations so that an idle mode never blocks the
        active one.
        """
        if not self.phases:
            for task in self.tasks:
                task.active = True
            return
        active = self.active_loop()
        newly_active: List[RuntimeTask] = []
        for task in self.tasks:
            if task.one_shot:
                task.active = True
                continue
            top_loop = (task.task.loop or "").split(".")[0]
            was_active = task.active
            task.active = top_loop == active
            if task.active and not was_active:
                newly_active.append(task)
            if not task.active:
                task.phase_firings = 0

        # Reflect activation on the buffer windows.
        for task in self.tasks:
            if task.one_shot:
                continue
            key = task.producer_key()
            for access in task.task.reads:
                task.buffers[access.buffer].set_consumer_active(key, task.active)
            for access in task.task.writes:
                task.buffers[access.buffer].set_producer_active(key, task.active)

        # Newly activated tasks continue from the frontier of the instance.
        for task in newly_active:
            key = task.producer_key()
            for access in task.task.reads:
                buffer = task.buffers[access.buffer]
                frontier = max(
                    (
                        buffer.consumer_position(other.producer_key())
                        for other in self.tasks
                        if not other.one_shot
                        and any(a.buffer == access.buffer for a in other.task.reads)
                    ),
                    default=0,
                )
                buffer.advance_consumer_to(key, frontier)
            for access in task.task.writes:
                buffer = task.buffers[access.buffer]
                frontier = max(
                    (
                        buffer.producer_position(other.producer_key())
                        for other in self.tasks
                        if not other.one_shot
                        and any(a.buffer == access.buffer for a in other.task.writes)
                    ),
                    default=0,
                )
                buffer.advance_producer_to(key, frontier)

    def maybe_advance_phase(self) -> bool:
        """Advance to the next phase when the iteration quota is reached."""
        if not self.phases:
            return False
        loop, quota = self.phases[self.phase_index % len(self.phases)]
        loop_tasks = [t for t in self.tasks if not t.one_shot and (t.task.loop or "").split(".")[0] == loop]
        if not loop_tasks:
            return False
        if min(t.phase_firings for t in loop_tasks) >= quota:
            for task in loop_tasks:
                task.phase_firings = 0
            self.phase_index += 1
            self.apply_activation()
            return True
        return False


class Simulation:
    """A runnable instantiation of a compiled OIL program.

    Execution is delegated to the pluggable scheduler engine
    (:mod:`repro.engine`): this class instantiates the module hierarchy --
    buffers, drivers, runtime tasks, mode schedules -- and registers the
    resulting task fleet with an :class:`~repro.engine.dispatcher.ExecutionEngine`
    that performs indexed ready-set dispatch.

    Parameters (scheduling)
    -----------------------
    scheduler:
        A :class:`~repro.engine.policies.SchedulerPolicy` deciding which
        eligible task may occupy a processor; default
        :class:`~repro.engine.policies.SelfTimedUnbounded` (one processor per
        task, the execution model the CTA analysis bounds).  Platform
        policies (:mod:`repro.platform.policies`) are accepted here too and
        switch the engine to platform mode (processor assignment,
        preemption, per-processor accounting).
    platform:
        A :class:`~repro.platform.model.Platform` shorthand for
        ``scheduler=platform.policy()`` -- partitioned when the platform
        carries an affinity mapping, greedy list scheduling otherwise.
        Mutually exclusive with ``scheduler``.  The platform's speed-scaled
        firing durations join the tick-base derivation, so heterogeneous
        runs stay exact under ``time_base="auto"``/``"ticks"``.
    dispatcher:
        ``"ready-set"`` (default) or ``"polling"`` -- the brute-force
        whole-fleet reference dispatcher kept for equivalence testing and
        benchmarking.  Both produce bit-identical self-timed traces.
    trace_level:
        Granularity of the :class:`~repro.runtime.trace.TraceRecorder`
        (``"full"``, ``"endpoints"`` or ``"off"``).
    time_base:
        Time representation of the event queue.  ``"auto"`` (default)
        derives an exact integer-tick base from every period, response time
        and offset of the instantiated program and falls back transparently
        to exact :class:`~fractions.Fraction` timestamps when the durations
        do not fit one; ``"ticks"`` requires the tick base (raising
        otherwise); ``"fraction"`` forces the legacy representation; a ready
        :class:`~repro.util.rational.TimeBase` is validated against the
        program's durations and used as given.  Traces are bit-identical
        across all choices.
    fast_forward:
        Online steady-state detection and O(1) period skipping
        (:mod:`repro.engine.steady_state`):

        * ``"auto"`` (default) engages a *value-exact* detector when the
          program qualifies -- every source stimulus declared periodic in
          value (:class:`~repro.runtime.sources.Stimulus`) and every
          coordinated function declaring jump-exact behaviour
          (:class:`~repro.runtime.functions.FunctionSpec`).  Qualified
          runs are bit-identical to naive execution, data values
          included.  Unqualified runs step naively; auto-wrapped bare
          iterators and undeclared functions record ``undeclared-source``
          / ``undeclared-function`` warnings, while declared-but-aperiodic
          stimuli and engine-level refusals fall back silently.
        * ``True`` engages the legacy *timing-exact* detector for
          :meth:`run`.  Timing-derived results (completion times, misses,
          rates, busy accounting) stay exactly equal to a naive run; data
          values are replayed from the canonical period, so finite or
          aperiodic source signals are the caller's responsibility.
          Configurations that cannot fast-forward (fraction-mode queues,
          speed-migrating preemptive policies) record the reason in
          :attr:`warnings`.
        * ``False`` always steps naively.
    trace_retention:
        Keep only the most recent N records per trace stream (see
        :class:`~repro.runtime.trace.TraceRecorder`); ``None`` (default)
        stores everything.  Streaming counters and rates remain exact either
        way; long fast-forwarded horizons need a cap (or a coarser
        ``trace_level``) to avoid materialising billions of records.
    kernel:
        ``"auto"`` (default), ``"on"`` or ``"off"`` -- the engine's compiled
        integer dispatch kernel (flat window bindings, no dict lookups in
        the hot loop).  ``"auto"`` engages it whenever applicable
        (ready-set dispatcher, tick time base, non-platform policy); traces
        are bit-identical with the kernel on or off.
    """

    def __init__(
        self,
        result: CompilationResult,
        registry: FunctionRegistry,
        *,
        source_signals: Optional[Mapping[str, Union[Stimulus, Iterable, Callable[[], Iterator]]]] = None,
        capacities: Optional[Mapping[str, Optional[int]]] = None,
        default_capacity: int = 64,
        mode_schedules: Optional[ModeSchedule] = None,
        sink_start_times: Optional[Mapping[str, Rat]] = None,
        top: Optional[str] = None,
        scheduler: Optional[SchedulerPolicy] = None,
        platform: Optional["Platform"] = None,
        dispatcher: str = "ready-set",
        trace_level: str = "full",
        time_base: Union[str, TimeBase] = "auto",
        fast_forward: Union[bool, str] = "auto",
        trace_retention: Optional[int] = None,
        kernel: str = "auto",
    ) -> None:
        self.result = result
        self.registry = registry
        if platform is not None:
            if scheduler is not None:
                raise OilRuntimeError("pass either scheduler= or platform=, not both")
            scheduler = platform.policy()
        #: the platform the run executes on (direct, or carried by a platform
        #: policy), or None under legacy boolean policies; its speed factors
        #: extend the tick-base duration set
        self.platform = platform if platform is not None else getattr(scheduler, "platform", None)
        self.queue = EventQueue()
        self.trace = TraceRecorder(level=trace_level, retention=trace_retention)
        self.engine = ExecutionEngine(
            self.queue, self.trace, policy=scheduler, mode=dispatcher, kernel=kernel
        )
        self.engine.on_complete = self._after_firing
        self.fast_forward = fast_forward
        #: fast-forward refusals recorded for this simulation (see the
        #: ``warnings`` property for the merged view)
        self._warnings: List[str] = []
        #: cached auto-mode qualification: (qualified, function specs);
        #: computed once at the first install so warnings appear once
        self._auto_setup: Optional[Tuple[bool, Dict[str, FunctionSpec]]] = None
        self.default_capacity = default_capacity
        self.mode_schedules = dict(mode_schedules or {})
        self.sink_start_times = {k: as_rational(v) for k, v in (sink_start_times or {}).items()}
        self._signals = dict(source_signals or {})

        provided = capacities if capacities is not None else result.buffer_capacities()
        self.capacities: Dict[str, int] = {
            name: value for name, value in provided.items() if value is not None
        }

        self.buffers: Dict[str, CircularBuffer] = {}
        self.sources: Dict[str, SourceDriver] = {}
        self.sinks: Dict[str, SinkDriver] = {}
        self.instances: List[SequentialInstance] = []
        #: O(1) task -> owning instance lookup (replaces the seed's linear
        #: scan over all instances on every firing completion)
        self._instance_of: Dict[RuntimeTask, SequentialInstance] = {}
        self._wired = False

        top_name = top or self._default_top()
        top_module = result.program.module(top_name)
        if isinstance(top_module, ast.SequentialModule):
            raise OilRuntimeError(
                "the simulation entry point must be a parallel module with sources and sinks"
            )
        self._instantiate_parallel(top_module, bindings={}, path=top_name)

        for instance in self.instances:
            instance.apply_activation()

        #: the integer-tick base the queue runs on, or ``None`` in fraction
        #: mode; chosen once the full duration set of the instantiated
        #: program is known and before any event is scheduled
        self.time_base: Optional[TimeBase] = self._select_time_base(time_base)

    # -------------------------------------------------------------- time base
    def _duration_set(self) -> List[Rat]:
        """Every duration the simulation can ever schedule with: driver
        periods (and the half periods delayed-start sinks phase in with),
        start offsets and task response times.  Event times are sums of these
        values, so a tick base covering this set covers all timestamps."""
        durations: List[Rat] = []
        for source in self.sources.values():
            durations.append(source.period)
            durations.append(source.start_offset)
        for sink in self.sinks.values():
            durations.append(sink.period)
            if sink.start_time is not None:
                durations.append(sink.start_time)
            else:
                durations.append(sink.period / 2)
        wcets = [task.wcet for task in self.engine.tasks]
        durations.extend(wcets)
        if self.platform is not None:
            # A platform policy schedules wcet / speed (and re-posts exact
            # remainders of those); the grid must cover the scaled set too.
            durations.extend(self.platform.scaled_durations(wcets))
        return durations

    def _select_time_base(self, requested: Union[str, TimeBase]) -> Optional[TimeBase]:
        """Resolve the ``time_base`` parameter against the instantiated
        program (see the class docstring for the selection/fallback rule)."""
        if requested == "fraction":
            return None
        if requested == "auto" and getattr(
            self.engine.policy, "migrates_across_speeds", False
        ):
            # Cross-speed resume remainders (remaining * s1 / s2) are not
            # closed under any finite tick grid; "auto" must stay with the
            # always-exact fraction representation for such policies.  An
            # explicit "ticks"/TimeBase request is honoured below and may
            # raise at the migrating resume.
            return None
        durations = self._duration_set()
        if isinstance(requested, TimeBase):
            timebase: Optional[TimeBase] = requested
        elif requested in ("auto", "ticks"):
            timebase = TimeBase.for_durations(durations)
        else:
            raise OilRuntimeError(
                f"unknown time base {requested!r}: expected 'auto', 'ticks', "
                f"'fraction' or a TimeBase instance"
            )
        if timebase is not None and any(timebase.try_ticks(d) is None for d in durations):
            # a duration does not divide the resolution: the tick grid would
            # be inexact, so this program keeps exact fractions
            timebase = None
        if timebase is None and (requested == "ticks" or isinstance(requested, TimeBase)):
            raise OilRuntimeError(
                "the program's periods/response times/offsets do not fit an "
                "integer tick base; use time_base='auto' or 'fraction'"
            )
        if timebase is not None:
            self.queue.set_timebase(timebase)
        return timebase

    # ------------------------------------------------------------------ build
    def _default_top(self) -> str:
        metadata = self.result.root.component.metadata
        name = metadata.get("module")
        if isinstance(name, str):
            return name
        if self.result.program.main is not None:
            return self.result.program.main.name
        raise OilRuntimeError("cannot determine the top-level module of the simulation")

    def _capacity_for(self, *keys: str, minimum: int = 1) -> int:
        """Combine the analysis capacities of the buffers chained between two
        modules into the capacity of the single runtime buffer implementing
        them (a series of buffers of sizes a and b behaves like one buffer of
        size a+b for the purposes of back pressure)."""
        total = 0
        matched = False
        for key in keys:
            if key in self.capacities:
                total += self.capacities[key]
                matched = True
        if not matched:
            total = self.default_capacity
        return max(total, minimum)

    def _access_capacity_keys(self, module_name: str, param: str) -> List[str]:
        """The analysis buffer names of all distribution/combination buffers
        that sit between *param* of *module_name* and the tasks that finally
        access it.

        For a sequential module these are its own ``<param>.access*`` buffers;
        for a parallel module the stream is forwarded to inner module calls,
        so the walk recurses into every call that receives the parameter.
        Black boxes contribute nothing (they access the FIFO directly).
        """
        boxes = self.result.analysis.black_boxes
        if module_name in boxes:
            return []
        try:
            definition = self.result.program.module(module_name)
        except KeyError:
            return []
        if isinstance(definition, ast.SequentialModule):
            prefix = f"{module_name}/"
            needle = f"/{param}.access"
            return [
                name for name in self.capacities if name.startswith(prefix) and needle in name
            ]
        keys: List[str] = []
        for call in definition.calls:
            target = boxes.get(call.module)
            if target is not None:
                params = [p.name for p in target.ports]
            else:
                params = [p.name for p in self.result.program.module(call.module).params]
            for inner_param, argument in zip(params, call.arguments):
                if argument.name == param:
                    keys.extend(self._access_capacity_keys(call.module, inner_param))
        return keys

    def _transfer_floor(self, module_name: str, param: str) -> int:
        """The largest number of values transferred in one access of *param*
        by *module_name* (a lower bound for any runtime buffer capacity)."""
        boxes = self.result.analysis.black_boxes
        if module_name in boxes:
            counts = [p.count for p in boxes[module_name].ports if p.name == param]
            return max(counts, default=1)
        try:
            definition = self.result.program.module(module_name)
        except KeyError:
            return 1
        if isinstance(definition, ast.SequentialModule):
            graph = self.result.task_graphs.get(module_name)
            if graph and param in graph.streams:
                counts = list(graph.streams[param].per_loop_counts.values())
                buffer_spec = graph.buffers.get(param)
                if buffer_spec is not None:
                    counts.extend(count for _, count in buffer_spec.producers)
                    counts.extend(count for _, count in buffer_spec.consumers)
                return max(counts, default=1)
            return 1
        floor = 1
        for call in definition.calls:
            target = boxes.get(call.module)
            if target is not None:
                params = [p.name for p in target.ports]
            else:
                params = [p.name for p in self.result.program.module(call.module).params]
            for inner_param, argument in zip(params, call.arguments):
                if argument.name == param:
                    floor = max(floor, self._transfer_floor(call.module, inner_param))
        return floor

    def _instantiate_parallel(
        self,
        module: ast.ParallelModule,
        bindings: Mapping[str, CircularBuffer],
        path: str,
    ) -> None:
        local: Dict[str, CircularBuffer] = dict(bindings)

        # Who uses each locally declared stream? (for capacity aggregation)
        users: Dict[str, List[Tuple[str, str]]] = {}
        for call in module.calls:
            target = self.result.analysis.black_boxes.get(call.module)
            params: List[Tuple[str, bool]]
            if target is not None:
                params = [(p.name, p.is_output) for p in target.ports]
            else:
                definition = self.result.program.module(call.module)
                params = [(p.name, p.is_output) for p in definition.params]
            for (param_name, _), argument in zip(params, call.arguments):
                users.setdefault(argument.name, []).append((call.module, param_name))

        def stream_capacity(par_key: str, stream: str) -> int:
            keys = [f"{par_key}/{stream}"]
            floor = 1
            for user_module, user_param in users.get(stream, []):
                keys.extend(self._access_capacity_keys(user_module, user_param))
                floor = max(floor, self._transfer_floor(user_module, user_param))
            return self._capacity_for(*keys, minimum=floor)

        # FIFOs declared here.
        for fifo in module.fifos:
            capacity = stream_capacity(module.name, fifo.name)
            buffer = CircularBuffer(f"{path}/{fifo.name}", capacity)
            self.buffers[buffer.name] = buffer
            local[fifo.name] = buffer

        # Sources and sinks declared here.
        for source in module.sources:
            capacity = stream_capacity(module.name, source.name)
            buffer = CircularBuffer(f"{path}/{source.name}", capacity)
            self.buffers[buffer.name] = buffer
            local[source.name] = buffer
            # SourceDriver normalises any legacy signal spelling (None,
            # list, factory, bare iterator) into a Stimulus; see
            # repro.runtime.sources.as_stimulus.
            driver = SourceDriver(
                name=source.name,
                buffer=buffer,
                period=Fraction(1) / Fraction(source.frequency_hz),
                values=self._signals.get(source.name),
                trace=self.trace,
                queue=self.queue,
                on_change=self._schedule_dispatch,
            )
            self.sources[source.name] = driver

        for sink in module.sinks:
            capacity = stream_capacity(module.name, sink.name)
            buffer = CircularBuffer(f"{path}/{sink.name}", capacity)
            self.buffers[buffer.name] = buffer
            local[sink.name] = buffer
            driver = SinkDriver(
                name=sink.name,
                buffer=buffer,
                period=Fraction(1) / Fraction(sink.frequency_hz),
                trace=self.trace,
                queue=self.queue,
                start_time=self.sink_start_times.get(sink.name),
                on_change=self._schedule_dispatch,
            )
            self.sinks[sink.name] = driver

        # Instantiate the called modules.
        for index, call in enumerate(module.calls):
            child_path = f"{path}/{call.module}" if path else call.module
            if call.module in self.result.analysis.black_boxes:
                box = self.result.analysis.black_boxes[call.module]
                child_bindings = {
                    port.name: local[argument.name]
                    for port, argument in zip(box.ports, call.arguments)
                }
                self._instantiate_black_box(box, child_bindings, child_path)
                continue
            definition = self.result.program.module(call.module)
            child_bindings = {
                param.name: local[argument.name]
                for param, argument in zip(definition.params, call.arguments)
            }
            if isinstance(definition, ast.ParallelModule):
                self._instantiate_parallel(definition, child_bindings, child_path)
            else:
                self._instantiate_sequential(definition, child_bindings, child_path)

    def _instantiate_sequential(
        self,
        module: ast.SequentialModule,
        bindings: Mapping[str, CircularBuffer],
        path: str,
    ) -> None:
        graph = self.result.task_graphs[module.name]
        instance = SequentialInstance(path=path, graph=graph)

        # Local variable buffers.
        buffers: Dict[str, CircularBuffer] = dict(bindings)
        for buffer_spec in graph.buffers.values():
            if buffer_spec.kind != "variable":
                continue
            capacity = self._capacity_for(f"{module.name}/{buffer_spec.name}", minimum=2)
            buffer = CircularBuffer(f"{path}/{buffer_spec.name}", capacity)
            self.buffers[buffer.name] = buffer
            buffers[buffer_spec.name] = buffer

        # Runtime tasks.
        for task in sorted(graph.tasks.values(), key=lambda t: t.order):
            runtime_task = RuntimeTask(
                name=task.name,
                task=task,
                instance=path,
                registry=self.registry,
                buffers=buffers,
                wcet=task.firing_duration,
                one_shot=task.loop is None,
            )
            key = runtime_task.producer_key()
            for access in task.reads:
                buffers[access.buffer].register_consumer(key)
            for access in task.writes:
                buffers[access.buffer].register_producer(key)
            instance.tasks.append(runtime_task)
            self._register_task(runtime_task, instance)

        # Mode schedule (multiple top-level loops).
        top_loops = graph.top_level_loops()
        schedule = self.mode_schedules.get(path) or self.mode_schedules.get(module.name)
        if schedule:
            instance.phases = [(loop, int(quota)) for loop, quota in schedule]
        elif len(top_loops) > 1:
            # Default: round-robin with one iteration per loop.
            instance.phases = [(loop.identifier, 1) for loop in top_loops]
        self.instances.append(instance)

    def _instantiate_black_box(
        self,
        box: BlackBoxModule,
        bindings: Mapping[str, CircularBuffer],
        path: str,
    ) -> None:
        task = Task(name=box.name, kind="call", function=box.name, firing_duration=box.firing_duration)
        task.reads = [Access(port.name, port.count) for port in box.ports if not port.is_output]
        task.writes = [Access(port.name, port.count) for port in box.ports if port.is_output]
        runtime_task = RuntimeTask(
            name=f"{box.name}",
            task=task,
            instance=path,
            registry=self.registry,
            buffers=dict(bindings),
            wcet=box.firing_duration,
        )
        key = runtime_task.producer_key()
        for access in task.reads:
            bindings[access.buffer].register_consumer(key)
        for access in task.writes:
            bindings[access.buffer].register_producer(key)
        instance = SequentialInstance(path=path, graph=TaskGraph(box.name))
        instance.tasks.append(runtime_task)
        self.instances.append(instance)
        self._register_task(runtime_task, instance)

    # -------------------------------------------------------------- scheduling
    @property
    def tasks(self) -> List[RuntimeTask]:
        """The task fleet, in registration (static priority) order.  The
        engine owns the list; this is a read-only view."""
        return self.engine.tasks

    def _register_task(self, task: RuntimeTask, instance: SequentialInstance) -> None:
        self._instance_of[task] = instance
        self.engine.register_task(task)

    def _schedule_dispatch(self) -> None:
        """Driver change callback: ask the engine for a dispatch round."""
        self.engine.schedule_dispatch()

    def _after_firing(self, task: RuntimeTask) -> None:
        """Engine completion hook: advance mode schedules and wake sinks.

        A phase switch (de)activates whole loops; besides the buffer-floor
        notifications that already woke dependents, every task of the
        instance is re-queued because activation alone can change
        eligibility without moving any floor.
        """
        instance = self._instance_of.get(task)
        if instance is not None and instance.maybe_advance_phase():
            self.engine.wake_tasks(instance.tasks)
        self._notify_sinks()

    def _notify_sinks(self) -> None:
        for driver in self.sinks.values():
            driver.notify_data_available()

    # ---------------------------------------------------------- fast-forward
    @property
    def warnings(self) -> List[str]:
        """Fast-forward refusals and give-ups recorded so far (the same
        strings a :class:`~repro.api.sweep.SweepReport` collects)."""
        steady = self.engine.steady_state
        extra = list(steady.warnings) if steady is not None else []
        return self._warnings + extra

    def _mode_state(self) -> tuple:
        """Mode-schedule progress, folded into the fast-forward state key.

        The engine's detector deliberately excludes ``task.phase_firings``
        (it grows without bound on unphased tasks); under a mode schedule the
        counter is bounded -- reset at every quota boundary and deactivation
        -- and, together with the cyclic phase index, it *is* the schedule's
        progress, so phased instances contribute exactly that here.
        """
        items = []
        for instance in self.instances:
            if not instance.phases:
                continue
            items.append(
                (
                    instance.path,
                    instance.phase_index % len(instance.phases),
                    tuple(
                        task.phase_firings
                        for task in instance.tasks
                        if not task.one_shot
                    ),
                )
            )
        return tuple(items)

    def _value_exact_qualification(self) -> Tuple[bool, Dict[str, FunctionSpec]]:
        """Qualify the program for value-exact fast-forward.

        Qualified means: every source stimulus is declared value-periodic
        and every function the fleet can invoke declares jump-exact
        behaviour.  The two *undeclared* situations -- a deprecated bare
        iterator that had to be auto-wrapped, and a function with no
        declaration at all -- record structured warnings; declared-but-
        aperiodic stimuli (ramps, generator factories, finite lists) and
        unregistered fallback names disqualify silently (the user declared
        exactly what the stream is; auto simply cannot jump it).
        """
        qualified = True
        undeclared_sources: List[str] = []
        for name, driver in sorted(self.sources.items()):
            stimulus = driver.values
            if getattr(stimulus, "auto_wrapped", False):
                qualified = False
                undeclared_sources.append(name)
            elif not stimulus.value_periodic:
                qualified = False
        specs: Dict[str, FunctionSpec] = {}
        undeclared_functions: List[str] = []
        for task in self.engine.tasks:
            for fname in task.function_names():
                if fname in specs:
                    continue
                try:
                    spec = self.registry.get(fname)
                except KeyError:
                    qualified = False
                    continue
                specs[fname] = spec
                if not spec.jump_exact:
                    qualified = False
                    if fname not in undeclared_functions:
                        undeclared_functions.append(fname)
        if undeclared_sources:
            self._warnings.append(
                RunWarning(
                    "fast-forward (auto) fell back to naive execution: "
                    f"source(s) {', '.join(undeclared_sources)} wrap a bare "
                    "iterator that cannot be advanced through a jump; pass a "
                    "Stimulus (or a zero-argument factory) instead",
                    "undeclared-source",
                )
            )
        if undeclared_functions:
            self._warnings.append(
                RunWarning(
                    "fast-forward (auto) fell back to naive execution: "
                    f"function(s) {', '.join(sorted(undeclared_functions))} "
                    "declare no jump behaviour (stateless, jump_invariant or "
                    "get_state)",
                    "undeclared-function",
                )
            )
        return qualified, specs

    def _install_fast_forward(self, horizon: Rat) -> None:
        if self.fast_forward == "auto":
            if self._auto_setup is None:
                self._auto_setup = self._value_exact_qualification()
            qualified, specs = self._auto_setup
            if not qualified:
                return
            # Engine-level refusals are silent under auto ("auto" never
            # promised a jump); the value-exact detector gets a larger state
            # budget because value periods are multiples of timing periods.
            self.engine.enable_fast_forward(
                horizon,
                extra_state=self._mode_state,
                sources=list(self.sources.values()),
                sinks=list(self.sinks.values()),
                max_states=16_384,
                value_exact=True,
                functions=specs,
            )
            return
        refusal = self.engine.enable_fast_forward(
            horizon,
            extra_state=self._mode_state,
            sources=list(self.sources.values()),
            sinks=list(self.sinks.values()),
        )
        if refusal is not None and refusal not in self._warnings:
            self._warnings.append(refusal)

    # ------------------------------------------------------------------- run
    def _start_drivers(self) -> None:
        """Launch sources and sinks (idempotently) and queue the task fleet.

        Driver windows must exist before the engine's buffer index is wired,
        so wiring happens on the first call -- after which buffer-floor
        notifications drive all dispatching.  Calling a run method again
        neither re-registers windows nor duplicates the periodic tick chains
        (the drivers' ``start`` is idempotent); it only re-queues the fleet.
        """
        for driver in self.sources.values():
            driver.start()
        for driver in self.sinks.values():
            driver.start()
        if not self._wired:
            self._wired = True
            self.engine.wire_buffers()
        self.engine.wake_all()
        self.engine.schedule_dispatch()

    def run(self, duration: Rat) -> TraceRecorder:
        """Run the simulation until the absolute simulated time *duration*.

        *duration* is an end time measured from simulation start (t = 0),
        not an increment: a repeated call resumes where the previous one
        stopped and runs up to the new end time, so ``run(1); run(2)``
        simulates two seconds in total and a second ``run(1)`` is a no-op.
        """
        duration = as_rational(duration)
        self._start_drivers()
        if self.fast_forward:
            self._install_fast_forward(duration)
        self.queue.run_until(duration)
        return self.trace

    def run_until_sink_count(
        self, sink: str, count: int, *, max_time: Rat = Fraction(10)
    ) -> TraceRecorder:
        """Run until *sink* consumed *count* values (or *max_time* elapsed).

        Value-exact programs (``fast_forward="auto"``, qualified) may
        fast-forward here too: jumps are capped strictly short of the
        requested count (the final consumptions run naively), so the run
        halts at the exact instant -- with the exact sink values -- a naive
        run would.  A *timing-exact* detector (``fast_forward=True``) could
        overshoot with stale values, so it is parked by zeroing its horizon
        for the duration of this call; the next :meth:`run` re-arms it.
        """
        max_time = as_rational(max_time)
        self._start_drivers()
        if self.fast_forward == "auto":
            self._install_fast_forward(max_time)
        steady = self.engine.steady_state
        value_exact = steady is not None and steady.value_exact
        if steady is not None:
            if value_exact:
                steady.sink_target = (list(self.sinks).index(sink), count)
            else:
                steady.horizon = 0
        target = self.sinks[sink]
        queue = self.queue
        # Step in the queue's native units: on a tick base the step is at
        # least one tick, so the loop always makes progress even when the
        # fractional step would floor to the current instant.
        end: Any
        if queue.timebase is not None:
            end = queue.timebase.ticks_floor(max_time)
            step = max(1, end // 64)
        else:
            end = max_time
            step = max_time / 64
        try:
            while queue.now < end and target.consumed_count < count:
                # Chunk boundaries are absolute multiples of the step, not
                # ``now + step``: a fast-forward jump lands between grid
                # points, and anchoring at ``now`` would shift every later
                # boundary -- the run would halt at a different instant (and
                # with a different overshoot) than a naive run.  On the
                # absolute grid both runs stop at the same boundary.
                boundary = (queue.now // step + 1) * step
                queue.run_until(min(boundary, end))
                if queue.empty():
                    break
        finally:
            if value_exact:
                steady.sink_target = None
        return self.trace
