"""Discrete-event runtime for compiled OIL programs.

* :mod:`repro.runtime.functions` -- registry of the coordinated functions,
* :mod:`repro.runtime.events` -- event queue with exact time (rational
  seconds or integer ticks of a :class:`~repro.util.rational.TimeBase`),
* :mod:`repro.runtime.tasks` -- data-driven runtime tasks and the expression
  evaluator for guards and assignments,
* :mod:`repro.runtime.sources` -- time-triggered sources and sinks with
  deadline-violation detection,
* :mod:`repro.runtime.fifo` -- inter-module FIFO channels,
* :mod:`repro.runtime.trace` -- execution traces and measurements with
  configurable recording levels,
* :mod:`repro.runtime.simulator` -- instantiation of compiled programs on
  top of the pluggable scheduler engine (:mod:`repro.engine`).
"""

from repro.runtime.functions import FunctionRegistry, FunctionSpec, default_registry
from repro.runtime.events import Event, EventQueue
from repro.runtime.tasks import OilRuntimeError, RuntimeTask, evaluate_expression
from repro.runtime.sources import SinkDriver, SourceDriver
from repro.runtime.fifo import Fifo, make_fifo
from repro.runtime.trace import (
    TRACE_LEVELS,
    DeadlineViolation,
    EndpointEvent,
    Firing,
    TraceRecorder,
)
from repro.runtime.simulator import ModeSchedule, SequentialInstance, Simulation

__all__ = [
    "TRACE_LEVELS",
    "FunctionRegistry",
    "FunctionSpec",
    "default_registry",
    "Event",
    "EventQueue",
    "OilRuntimeError",
    "RuntimeTask",
    "evaluate_expression",
    "SinkDriver",
    "SourceDriver",
    "Fifo",
    "make_fifo",
    "DeadlineViolation",
    "EndpointEvent",
    "Firing",
    "TraceRecorder",
    "ModeSchedule",
    "SequentialInstance",
    "Simulation",
]
