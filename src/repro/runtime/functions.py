"""Registry of the functions an OIL program coordinates.

OIL is a coordination language: the actual computation lives in C/C++
functions that must be side-effect free but may have state (Sec. IV).  In
this reproduction those functions are Python callables registered in a
:class:`FunctionRegistry` together with their worst-case response time (used
both by the CTA derivation and by the discrete-event runtime) and a flag
stating whether they are side-effect free.

Calling convention
------------------
A registered callable receives one positional argument per argument of the
OIL call, in order:

* an *input* argument with count 1 is passed as a scalar, with count n > 1 as
  a list of n values (oldest first),
* an *output* argument is not passed; instead the callable must *return* the
  produced values -- a scalar for count 1, a list of exactly n values for
  count n.  With several output arguments the callable returns a tuple with
  one entry per output argument, in order.

Stateful functions are supported by registering a callable object (or a
closure); the runtime can verify side-effect freedom dynamically by invoking
the function twice on the same inputs and comparing results
(:meth:`FunctionRegistry.verify_side_effect_free`).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.util.rational import Rat, RationalLike, as_rational


@dataclass
class FunctionSpec:
    """A registered coordination function.

    The jump-behaviour declarations (``stateless``, ``jump_invariant``,
    ``get_state`` / ``set_state`` / ``replay``) tell the steady-state
    fast-forwarder (:mod:`repro.engine.steady_state`) how the function's
    internal state behaves when firings are skipped:

    * ``stateless`` -- the callable holds no mutable state at all,
    * ``jump_invariant`` -- it has state, but the state after ``k`` skipped
      invocations equals the state now for every ``k`` the detector would
      skip (e.g. a saturating flag that has long converged),
    * ``get_state`` / ``set_state`` -- expose the state as a serialisable
      value; the fast-forwarder folds it into its periodicity key, so a
      jump is only taken when the state provably repeats -- making the jump
      exact without touching the state.  ``state_version`` optionally pairs
      with them: a zero-argument callable returning a cheap monotone
      counter that moves whenever the state may have changed, letting the
      detector reuse a cached state digest between anchor samples instead
      of re-serialising an unchanged state,
    * ``replay(k)`` -- re-derive the state of ``k`` skipped invocations for
      input-independent state evolutions (offered for completeness; replay
      alone does **not** qualify for value-exact jumps, because a state that
      is not folded into the key could differ between period instances).

    Functions declaring none of these are *undeclared*: under
    ``fast_forward="auto"`` the run falls back to naive stepping with an
    ``undeclared-function`` warning.
    """

    name: str
    callable: Callable[..., Any]
    #: worst-case response time in seconds
    wcet: Rat = Fraction(0)
    side_effect_free: bool = True
    #: free-form description for reports
    description: str = ""
    #: declared jump behaviour (see class docstring)
    stateless: bool = False
    jump_invariant: bool = False
    get_state: Optional[Callable[[], Any]] = None
    set_state: Optional[Callable[[Any], None]] = None
    replay: Optional[Callable[[int], None]] = None
    #: optional monotone change counter for ``get_state`` (see class
    #: docstring); purely an optimisation, never affects qualification
    state_version: Optional[Callable[[], int]] = None

    @property
    def jump_exact(self) -> bool:
        """True when a steady-state jump provably preserves this function's
        semantics: no state, state invariant under jumps, or state exposed
        for folding into the periodicity key."""
        return self.stateless or self.jump_invariant or self.get_state is not None

    @property
    def declared(self) -> bool:
        """True when any jump behaviour was declared at all."""
        return self.jump_exact or self.replay is not None


class FunctionRegistry:
    """Maps OIL function names to executable Python implementations."""

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionSpec] = {}

    def register(
        self,
        name: str,
        callable: Callable[..., Any],
        *,
        wcet: RationalLike = 0,
        side_effect_free: bool = True,
        description: str = "",
        stateless: bool = False,
        jump_invariant: bool = False,
        get_state: Optional[Callable[[], Any]] = None,
        set_state: Optional[Callable[[Any], None]] = None,
        replay: Optional[Callable[[int], None]] = None,
        state_version: Optional[Callable[[], int]] = None,
    ) -> FunctionSpec:
        """Register (or replace) a function implementation.

        The keyword-only jump declarations are documented on
        :class:`FunctionSpec`; leaving them all unset marks the function
        *undeclared* (value-exact fast-forward then falls back to naive)."""
        spec = FunctionSpec(
            name=name,
            callable=callable,
            wcet=as_rational(wcet),
            side_effect_free=side_effect_free,
            description=description,
            stateless=stateless,
            jump_invariant=jump_invariant,
            get_state=get_state,
            set_state=set_state,
            replay=replay,
            state_version=state_version,
        )
        self._functions[name] = spec
        return spec

    def function(self, decorated_name: Optional[str] = None, **kwargs):
        """Decorator form of :meth:`register`::

            registry = FunctionRegistry()

            @registry.function(wcet="1e-6")
            def LPF(samples):
                return sum(samples) / len(samples)
        """

        def decorator(func: Callable[..., Any]) -> Callable[..., Any]:
            self.register(decorated_name or func.__name__, func, **kwargs)
            return func

        if callable(decorated_name):  # used without parentheses
            func, decorated_name_ = decorated_name, None
            self.register(func.__name__, func)
            return func
        return decorator

    # -------------------------------------------------------------- accessors
    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def get(self, name: str) -> FunctionSpec:
        if name not in self._functions:
            raise KeyError(
                f"function {name!r} is not registered; register an implementation "
                f"(known: {sorted(self._functions)})"
            )
        return self._functions[name]

    def names(self) -> List[str]:
        return sorted(self._functions)

    def wcets(self) -> Dict[str, Rat]:
        """The WCET table in the form the compiler expects."""
        return {name: spec.wcet for name, spec in self._functions.items()}

    # ------------------------------------------------------------- execution
    def call(self, name: str, *args: Any) -> Any:
        """Invoke a registered function."""
        return self.get(name).callable(*args)

    def verify_side_effect_free(self, name: str, *args: Any) -> bool:
        """Dynamically check that calling *name* twice on (copies of) the same
        arguments yields equal results -- a lightweight stand-in for the
        static side-effect analyses the paper cites ([23]-[25])."""
        spec = self.get(name)
        first = spec.callable(*copy.deepcopy(args))
        second = spec.callable(*copy.deepcopy(args))
        try:
            import numpy as np

            if isinstance(first, np.ndarray) or isinstance(second, np.ndarray):
                return bool(np.allclose(first, second))
        except Exception:  # pragma: no cover - numpy always available here
            pass
        return first == second


def default_registry(extra: Optional[Mapping[str, Callable[..., Any]]] = None) -> FunctionRegistry:
    """A registry pre-populated with trivial pass-through helpers used by the
    small examples (``init``, ``copy``, ``ident``)."""
    registry = FunctionRegistry()
    registry.register("ident", lambda value: value, description="identity", stateless=True)
    registry.register(
        "copy",
        lambda value: value,
        description="copy a value to an output stream",
        stateless=True,
    )
    for name, func in (extra or {}).items():
        registry.register(name, func)
    return registry
