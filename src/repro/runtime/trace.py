"""Execution traces and measurements of the runtime simulator.

The trace recorder collects:

* task firings (task, start time, completion time, whether the guarded body
  actually executed),
* source productions and sink consumptions with their timestamps,
* deadline violations (a periodic source finding its buffer full, a periodic
  sink finding its buffer empty),
* buffer occupancy high-water marks.

From these it derives the measured quantities the experiments compare against
the analysis: sustained throughput per source/sink, end-to-end latency, and
maximal observed buffer occupancy (which must never exceed the capacities the
CTA buffer-sizing algorithm computed).

Recording granularity is configurable via ``level`` so throughput benchmarks
do not pay for bookkeeping they never read:

* ``"full"`` (default) -- everything: firings, endpoint events, violations
  and buffer occupancy high-water marks,
* ``"endpoints"`` -- only endpoint events and deadline violations (the
  signals the real-time claims are judged by); the high-volume per-firing
  records are skipped,
* ``"off"`` -- record nothing.

The ``*_enabled`` properties let hot paths skip computing a measurement (for
example a buffer occupancy) before handing it to a recorder that would drop
it anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.util.rational import Rat
from repro.util.validation import check_in

#: Recognised trace levels, coarsest first.
TRACE_LEVELS = ("off", "endpoints", "full")


@dataclass
class Firing:
    task: str
    start: Rat
    end: Rat
    executed_body: bool


@dataclass
class EndpointEvent:
    name: str
    kind: str  # "source" | "sink"
    time: Rat
    value: object


@dataclass
class DeadlineViolation:
    name: str
    kind: str  # "source-overflow" | "sink-underflow"
    time: Rat
    detail: str = ""


@dataclass
class TraceRecorder:
    """Accumulates simulation events and derives measurements."""

    firings: List[Firing] = field(default_factory=list)
    endpoint_events: List[EndpointEvent] = field(default_factory=list)
    violations: List[DeadlineViolation] = field(default_factory=list)
    buffer_high_water: Dict[str, int] = field(default_factory=dict)
    level: str = "full"

    def __post_init__(self) -> None:
        check_in(self.level, TRACE_LEVELS, "trace level")

    # ----------------------------------------------------------------- levels
    @property
    def firings_enabled(self) -> bool:
        return self.level == "full"

    @property
    def occupancy_enabled(self) -> bool:
        return self.level == "full"

    @property
    def endpoints_enabled(self) -> bool:
        return self.level != "off"

    @property
    def violations_enabled(self) -> bool:
        return self.level != "off"

    # ------------------------------------------------------------- recording
    def record_firing(self, task: str, start: Rat, end: Rat, executed_body: bool) -> None:
        if self.firings_enabled:
            self.firings.append(Firing(task, start, end, executed_body))

    def record_endpoint(self, name: str, kind: str, time: Rat, value: object) -> None:
        if self.endpoints_enabled:
            self.endpoint_events.append(EndpointEvent(name, kind, time, value))

    def record_violation(self, name: str, kind: str, time: Rat, detail: str = "") -> None:
        if self.violations_enabled:
            self.violations.append(DeadlineViolation(name, kind, time, detail))

    def record_occupancy(self, buffer: str, occupancy: int) -> None:
        if not self.occupancy_enabled:
            return
        current = self.buffer_high_water.get(buffer, 0)
        if occupancy > current:
            self.buffer_high_water[buffer] = occupancy

    # ----------------------------------------------------------- measurements
    def firings_of(self, task: str) -> List[Firing]:
        return [f for f in self.firings if f.task == task]

    def events_of(self, name: str) -> List[EndpointEvent]:
        return [e for e in self.endpoint_events if e.name == name]

    def measured_rate(self, name: str) -> Optional[Rat]:
        """Average events per second of a source or sink over the simulation."""
        events = self.events_of(name)
        if len(events) < 2:
            return None
        span = events[-1].time - events[0].time
        if span <= 0:
            return None
        return Fraction(len(events) - 1) / span

    def task_throughput(self, task: str) -> Optional[Rat]:
        """Average firings per second of a task."""
        firings = self.firings_of(task)
        if len(firings) < 2:
            return None
        span = firings[-1].start - firings[0].start
        if span <= 0:
            return None
        return Fraction(len(firings) - 1) / span

    def first_output_time(self, name: str) -> Optional[Rat]:
        events = self.events_of(name)
        return events[0].time if events else None

    def end_to_end_latency(self, source: str, sink: str) -> Optional[Rat]:
        """Time between the first source production and the first sink
        consumption -- the pipeline fill latency."""
        first_in = self.first_output_time(source)
        first_out = self.first_output_time(sink)
        if first_in is None or first_out is None:
            return None
        return first_out - first_in

    def deadline_miss_count(self) -> int:
        return len(self.violations)

    def summary(self) -> str:
        lines = [
            f"trace: {len(self.firings)} firings, {len(self.endpoint_events)} endpoint events, "
            f"{len(self.violations)} violations"
        ]
        names = sorted({e.name for e in self.endpoint_events})
        for name in names:
            rate = self.measured_rate(name)
            rendered = "n/a" if rate is None else f"{float(rate):.6g} Hz"
            lines.append(f"  {name}: {len(self.events_of(name))} events, measured rate {rendered}")
        if self.buffer_high_water:
            lines.append("  buffer high-water marks:")
            for buffer, occupancy in sorted(self.buffer_high_water.items()):
                lines.append(f"    {buffer}: {occupancy}")
        return "\n".join(lines)
