"""Execution traces and measurements of the runtime simulator.

The trace recorder collects:

* task firings (task, start time, completion time, whether the guarded body
  actually executed),
* source productions and sink consumptions with their timestamps,
* deadline violations (a periodic source finding its buffer full, a periodic
  sink finding its buffer empty),
* buffer occupancy high-water marks.

From these it derives the measured quantities the experiments compare against
the analysis: sustained throughput per source/sink, end-to-end latency, and
maximal observed buffer occupancy (which must never exceed the capacities the
CTA buffer-sizing algorithm computed).

Recording granularity is configurable via ``level`` so throughput benchmarks
do not pay for bookkeeping they never read:

* ``"full"`` (default) -- everything: firings, endpoint events, violations
  and buffer occupancy high-water marks,
* ``"endpoints"`` -- only endpoint events and deadline violations (the
  signals the real-time claims are judged by); the high-volume per-firing
  records are skipped,
* ``"off"`` -- record nothing.

The ``*_enabled`` properties let hot paths skip computing a measurement (for
example a buffer occupancy) before handing it to a recorder that would drop
it anyway.

Long horizons need bounded memory: ``retention`` caps how many of each stored
record kind are kept (oldest dropped first) while *streaming* counters --
per-endpoint and per-task counts with first/last timestamps -- keep the
derived measurements (:meth:`measured_rate`, :meth:`task_throughput`,
:meth:`deadline_miss_count`, :meth:`summary`) exact over the whole run even
after the stored lists were trimmed.  The steady-state fast-forward engine
drives the same counters through :meth:`extrapolate_periodic` /
:meth:`replay_periodic` so skipped periods stay accounted for.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from repro.util.rational import Rat
from repro.util.validation import check_in

#: Recognised trace levels, coarsest first.
TRACE_LEVELS = ("off", "endpoints", "full")


@dataclass
class Firing:
    task: str
    start: Rat
    end: Rat
    executed_body: bool


@dataclass
class EndpointEvent:
    name: str
    kind: str  # "source" | "sink"
    time: Rat
    value: object


@dataclass
class DeadlineViolation:
    name: str
    kind: str  # "source-overflow" | "sink-underflow"
    time: Rat
    detail: str = ""


class _Stat:
    """Streaming (count, first time, last time) triple for one name."""

    __slots__ = ("count", "first", "last")

    def __init__(self, count: int = 0, first: Optional[Rat] = None, last: Optional[Rat] = None):
        self.count = count
        self.first = first
        self.last = last

    def add(self, time: Rat) -> None:
        if self.first is None:
            self.first = time
        self.last = time
        self.count += 1

    def rate(self) -> Optional[Rat]:
        if self.count < 2 or self.first is None or self.last is None:
            return None
        span = self.last - self.first
        if span <= 0:
            return None
        return Fraction(self.count - 1) / span


class TraceRecorder:
    """Accumulates simulation events and derives measurements.

    ``retention=None`` (the default) stores every record, preserving the
    historic list semantics exactly; an integer caps each stored list to the
    most recent ``retention`` entries while the streaming counters continue
    to cover the full run.
    """

    def __init__(
        self,
        firings: Optional[List[Firing]] = None,
        endpoint_events: Optional[List[EndpointEvent]] = None,
        violations: Optional[List[DeadlineViolation]] = None,
        buffer_high_water: Optional[Dict[str, int]] = None,
        level: str = "full",
        retention: Optional[int] = None,
    ):
        check_in(level, TRACE_LEVELS, "trace level")
        if retention is not None and retention < 0:
            raise ValueError(f"trace retention must be >= 0, got {retention}")
        self.level = level
        self.retention = retention
        self._firings: List[Firing] = list(firings) if firings else []
        self._endpoint_events: List[EndpointEvent] = (
            list(endpoint_events) if endpoint_events else []
        )
        self._violations: List[DeadlineViolation] = list(violations) if violations else []
        self.buffer_high_water: Dict[str, int] = dict(buffer_high_water) if buffer_high_water else {}
        #: streaming per-endpoint / per-task statistics covering the full run
        self._endpoint_stats: Dict[str, _Stat] = {}
        self._task_stats: Dict[str, _Stat] = {}
        self._firing_total = len(self._firings)
        self._endpoint_total = len(self._endpoint_events)
        self._violation_total = len(self._violations)
        for firing in self._firings:
            self._task_stats.setdefault(firing.task, _Stat()).add(firing.start)
        for event in self._endpoint_events:
            self._endpoint_stats.setdefault(event.name, _Stat()).add(event.time)

    # ----------------------------------------------------------------- levels
    @property
    def firings_enabled(self) -> bool:
        return self.level == "full"

    @property
    def occupancy_enabled(self) -> bool:
        return self.level == "full"

    @property
    def endpoints_enabled(self) -> bool:
        return self.level != "off"

    @property
    def violations_enabled(self) -> bool:
        return self.level != "off"

    # -------------------------------------------------------------- retention
    def _trim(self, records: List) -> List:
        retention = self.retention
        if retention is not None and len(records) > retention:
            del records[: len(records) - retention]
        return records

    def _appended(self, records: List) -> None:
        # Chunked trimming: deleting the head of a list is O(n), so let the
        # list grow to twice the cap before cutting it back to size.
        retention = self.retention
        if retention is not None and len(records) > 2 * retention:
            del records[: len(records) - retention]

    @property
    def firing_total(self) -> int:
        """Firings recorded over the whole run -- the streaming counter,
        unaffected by the retention cap and exact through fast-forward."""
        return self._firing_total

    @property
    def endpoint_total(self) -> int:
        """Endpoint events recorded over the whole run (streaming)."""
        return self._endpoint_total

    @property
    def firings(self) -> List[Firing]:
        return self._trim(self._firings)

    @property
    def endpoint_events(self) -> List[EndpointEvent]:
        return self._trim(self._endpoint_events)

    @property
    def violations(self) -> List[DeadlineViolation]:
        return self._trim(self._violations)

    # ------------------------------------------------------------- recording
    def record_firing(self, task: str, start: Rat, end: Rat, executed_body: bool) -> None:
        if self.firings_enabled:
            self._firing_total += 1
            stat = self._task_stats.get(task)
            if stat is None:
                stat = self._task_stats[task] = _Stat()
            stat.add(start)
            self._firings.append(Firing(task, start, end, executed_body))
            self._appended(self._firings)

    def record_endpoint(self, name: str, kind: str, time: Rat, value: object) -> None:
        if self.endpoints_enabled:
            self._endpoint_total += 1
            stat = self._endpoint_stats.get(name)
            if stat is None:
                stat = self._endpoint_stats[name] = _Stat()
            stat.add(time)
            self._endpoint_events.append(EndpointEvent(name, kind, time, value))
            self._appended(self._endpoint_events)

    def record_violation(self, name: str, kind: str, time: Rat, detail: str = "") -> None:
        if self.violations_enabled:
            self._violation_total += 1
            self._violations.append(DeadlineViolation(name, kind, time, detail))
            self._appended(self._violations)

    def record_occupancy(self, buffer: str, occupancy: int) -> None:
        if not self.occupancy_enabled:
            return
        current = self.buffer_high_water.get(buffer, 0)
        if occupancy > current:
            self.buffer_high_water[buffer] = occupancy

    # ----------------------------------------------------- fast-forward hooks
    def stream_snapshot(self) -> Dict[str, object]:
        """Capture the streaming counters (used by the steady-state detector
        to compute exact per-period deltas)."""
        return {
            "endpoint": {n: (s.count, s.first, s.last) for n, s in self._endpoint_stats.items()},
            "task": {n: (s.count, s.first, s.last) for n, s in self._task_stats.items()},
            "totals": (self._firing_total, self._endpoint_total, self._violation_total),
            "lengths": (len(self._firings), len(self._endpoint_events), len(self._violations)),
        }

    def extrapolate_periodic(self, snapshot: Mapping[str, object], copies: int, shift: Rat) -> None:
        """Account ``copies`` extra repetitions of the period since
        ``snapshot`` into the streaming counters.

        ``shift`` is the total simulated-time advance (``copies`` periods) in
        seconds; last-seen timestamps of names that progressed during the
        period move forward by it, first-seen timestamps stay (they fell in
        the transient or the single simulated canonical period).
        """
        for name, stat in self._endpoint_stats.items():
            before = snapshot["endpoint"].get(name, (0, None, None))  # type: ignore[index]
            delta = stat.count - before[0]
            if delta > 0:
                stat.count += copies * delta
                stat.last = stat.last + shift  # type: ignore[operator]
        for name, stat in self._task_stats.items():
            before = snapshot["task"].get(name, (0, None, None))  # type: ignore[index]
            delta = stat.count - before[0]
            if delta > 0:
                stat.count += copies * delta
                stat.last = stat.last + shift  # type: ignore[operator]
        totals_before = snapshot["totals"]  # type: ignore[index]
        self._firing_total += copies * (self._firing_total - totals_before[0])
        self._endpoint_total += copies * (self._endpoint_total - totals_before[1])
        self._violation_total += copies * (self._violation_total - totals_before[2])

    def replay_periodic(
        self, lengths: Tuple[int, int, int], copies: int, period: Rat
    ) -> None:
        """Append ``copies`` time-shifted repetitions of the records stored
        since ``lengths`` (a :meth:`stream_snapshot` ``lengths`` triple).

        Only meaningful with unbounded retention: the stored lists then stay
        bit-identical to a naive simulation of the skipped periods (values
        repeat the canonical period -- timing is value-independent, data is
        periodic by construction of the detector's state key).  The streaming
        counters are *not* touched here; :meth:`extrapolate_periodic` already
        accounted for the copies.
        """
        firing_slice = self._firings[lengths[0]:]
        endpoint_slice = self._endpoint_events[lengths[1]:]
        violation_slice = self._violations[lengths[2]:]
        for copy_index in range(1, copies + 1):
            offset = period * copy_index
            for firing in firing_slice:
                self._firings.append(
                    replace(firing, start=firing.start + offset, end=firing.end + offset)
                )
            for event in endpoint_slice:
                self._endpoint_events.append(replace(event, time=event.time + offset))
            for violation in violation_slice:
                self._violations.append(replace(violation, time=violation.time + offset))

    # ----------------------------------------------------------- measurements
    def firings_of(self, task: str) -> List[Firing]:
        return [f for f in self.firings if f.task == task]

    def events_of(self, name: str) -> List[EndpointEvent]:
        return [e for e in self.endpoint_events if e.name == name]

    def measured_rate(self, name: str) -> Optional[Rat]:
        """Average events per second of a source or sink over the simulation."""
        stat = self._endpoint_stats.get(name)
        return stat.rate() if stat is not None else None

    def task_throughput(self, task: str) -> Optional[Rat]:
        """Average firings per second of a task."""
        stat = self._task_stats.get(task)
        return stat.rate() if stat is not None else None

    def first_output_time(self, name: str) -> Optional[Rat]:
        stat = self._endpoint_stats.get(name)
        return stat.first if stat is not None else None

    def end_to_end_latency(self, source: str, sink: str) -> Optional[Rat]:
        """Time between the first source production and the first sink
        consumption -- the pipeline fill latency."""
        first_in = self.first_output_time(source)
        first_out = self.first_output_time(sink)
        if first_in is None or first_out is None:
            return None
        return first_out - first_in

    def deadline_miss_count(self) -> int:
        return self._violation_total

    def endpoint_count(self, name: str) -> int:
        """Total events of one endpoint over the whole run (streaming)."""
        stat = self._endpoint_stats.get(name)
        return stat.count if stat is not None else 0

    def task_firing_count(self, task: str) -> int:
        """Total recorded firings of one task over the whole run (streaming)."""
        stat = self._task_stats.get(task)
        return stat.count if stat is not None else 0

    def summary(self) -> str:
        lines = [
            f"trace: {self._firing_total} firings, {self._endpoint_total} endpoint events, "
            f"{self._violation_total} violations"
        ]
        for name in sorted(self._endpoint_stats):
            rate = self.measured_rate(name)
            rendered = "n/a" if rate is None else f"{float(rate):.6g} Hz"
            lines.append(
                f"  {name}: {self.endpoint_count(name)} events, measured rate {rendered}"
            )
        if self.buffer_high_water:
            lines.append("  buffer high-water marks:")
            for buffer, occupancy in sorted(self.buffer_high_water.items()):
                lines.append(f"    {buffer}: {occupancy}")
        return "\n".join(lines)
