"""Inter-module FIFO channels.

Modules communicate via FIFO buffers (Sec. IV-A): exactly one module writes,
any number of modules read and every reader observes every value.  The
runtime implements this on top of the circular buffer with multiple windows
(:mod:`repro.graph.circular_buffer`): the single writer gets one producer
window and every reading module instance its own consumer window, so the
writer is throttled by the slowest reader -- the behaviour the CTA capacity
connections model.

This module only adds a small convenience wrapper used by the simulator; the
actual storage and window logic is the circular buffer itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence

from repro.graph.circular_buffer import CircularBuffer


@dataclass
class Fifo:
    """A named FIFO channel backed by a circular buffer."""

    buffer: CircularBuffer

    @property
    def name(self) -> str:
        return self.buffer.name

    @property
    def capacity(self) -> int:
        return self.buffer.capacity

    def occupancy(self) -> int:
        return self.buffer.occupancy()


def make_fifo(name: str, capacity: int, *, initial_values: Sequence[Any] = ()) -> Fifo:
    """Create a FIFO channel with the given capacity and initial contents."""
    return Fifo(CircularBuffer(name, capacity, initial_values=initial_values))
