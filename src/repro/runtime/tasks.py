"""Runtime tasks: data-driven execution of extracted task-graph tasks.

Each task of an extracted task graph becomes a :class:`RuntimeTask` bound to
the circular buffers of its module instance.  The runtime semantics follow the
paper's execution model:

* a task is *eligible* when its loop is active, all buffers it reads hold
  enough values, all buffers it writes have enough space and no previous
  firing of the same task is still in flight (tasks are sequential code
  fragments),
* at the start of a firing the task atomically acquires its inputs, evaluates
  its guard on the values just read and -- only if the guard holds -- executes
  the coordinated function / assignment,
* the outputs are released after ``wcet`` worth of execution -- ``wcet``
  seconds later on a unit-speed processor, ``wcet / speed`` on a scaled one,
  and later still when a platform policy preempts the firing (the engine
  parks the remaining work and the task stays busy-but-``suspended`` until
  it resumes); when the guard was false the output locations are released
  *without writing*, so consumers observe the previous values (the
  overlapping-window semantics of the circular buffer),
* statements outside any loop (initialisation) fire exactly once at start-up.

The module also contains the small expression evaluator used for guards,
assignment right-hand sides and function-call arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.graph.circular_buffer import CircularBuffer
from repro.graph.taskgraph import Task
from repro.lang import ast
from repro.runtime.functions import FunctionRegistry
from repro.util.rational import Rat


class OilRuntimeError(RuntimeError):
    """Raised for runtime execution problems (missing functions, bad values)."""


# --------------------------------------------------------------------------
# Expression evaluation
# --------------------------------------------------------------------------

def evaluate_expression(
    expression: ast.Expression,
    values: Dict[str, Any],
    registry: Optional[FunctionRegistry] = None,
) -> Any:
    """Evaluate an OIL expression given the values read this firing.

    ``values`` maps names (variables / streams) to either a scalar or the list
    of values read; a :class:`~repro.lang.ast.VarRef` of a multi-value read
    yields the last (most recent) value, a
    :class:`~repro.lang.ast.StreamRead` yields the full list.
    """
    if isinstance(expression, ast.NumberLiteral):
        return expression.value
    if isinstance(expression, ast.VarRef):
        if expression.name not in values:
            raise OilRuntimeError(f"no value available for {expression.name!r}")
        value = values[expression.name]
        if isinstance(value, list):
            return value[-1] if value else None
        return value
    if isinstance(expression, ast.StreamRead):
        if expression.name not in values:
            raise OilRuntimeError(f"no value available for stream {expression.name!r}")
        value = values[expression.name]
        return value if isinstance(value, list) else [value]
    if isinstance(expression, ast.FunctionExpr):
        if registry is None:
            raise OilRuntimeError(
                f"cannot evaluate function {expression.name!r} without a registry"
            )
        args = [
            evaluate_expression(argument.expression, values, registry)
            for argument in expression.arguments
            if isinstance(argument, ast.InArgument)
        ]
        return registry.call(expression.name, *args)
    if isinstance(expression, ast.UnaryOp):
        operand = evaluate_expression(expression.operand, values, registry)
        if expression.op == "-":
            return -operand
        if expression.op == "!":
            return not operand
        raise OilRuntimeError(f"unknown unary operator {expression.op!r}")
    if isinstance(expression, ast.BinaryOp):
        left = evaluate_expression(expression.left, values, registry)
        right = evaluate_expression(expression.right, values, registry)
        op = expression.op
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "%":
            return left % right
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "and":
            return bool(left) and bool(right)
        if op == "or":
            return bool(left) or bool(right)
        raise OilRuntimeError(f"unknown binary operator {op!r}")
    raise OilRuntimeError(f"cannot evaluate expression node {type(expression).__name__}")


# --------------------------------------------------------------------------
# Runtime task
# --------------------------------------------------------------------------

@dataclass(eq=False)
class RuntimeTask:
    """One executable task instance bound to its buffers.

    ``eq=False`` keeps identity semantics (and hashability): a runtime task
    is a unique piece of simulation state, and the execution engine indexes
    tasks in dictionaries for O(1) task -> instance / priority lookups.

    The producer key and the (name, count, buffer) access bindings are
    immutable for the lifetime of the task, so they are resolved once at
    construction: ``can_fire`` / ``start_firing`` / ``finish_firing`` run on
    every single firing of a simulation and must not rebuild strings or chase
    two dictionary lookups per access.
    """

    name: str
    task: Task
    instance: str
    registry: FunctionRegistry
    #: buffer name (task-graph local) -> runtime circular buffer
    buffers: Dict[str, CircularBuffer]
    wcet: Rat = Fraction(0)
    #: set by the owning module instance: whether the task's loop is active
    active: bool = True
    #: True while a firing is in flight
    busy: bool = False
    #: True while the in-flight firing is preempted (platform policies):
    #: inputs are consumed, remaining work is parked in the engine, and the
    #: task stays ``busy`` until the firing resumes and completes
    suspended: bool = False
    #: number of times a firing of this task was preempted
    preemptions: int = 0
    #: number of completed firings (total and within the current phase)
    completed_firings: int = 0
    phase_firings: int = 0
    #: one-shot tasks (initialisation) fire at most once
    one_shot: bool = False
    fired_once: bool = False

    def __post_init__(self) -> None:
        self._key = f"{self.instance}:{self.name}"
        #: wcet in the event queue's native time units; overwritten by the
        #: engine (ExecutionEngine.wire_buffers) with the tick count when the
        #: queue runs on an integer time base, so the firing hot path never
        #: converts
        self.wcet_internal = self.wcet
        self._reads = [
            (access.buffer, access.count, self.buffers[access.buffer])
            for access in self.task.reads
        ]
        self._writes = [
            (access.buffer, access.count, self.buffers[access.buffer])
            for access in self.task.writes
        ]
        #: completion-event label; unique per task instance so the pending
        #: events of the queue identify the firing in the steady-state key
        self._complete_label = f"complete:{self._key}"
        # Window bindings for the compiled kernel (see bind_windows).
        self._read_windows: List[tuple] = []
        self._write_windows: List[tuple] = []
        #: the input values of the in-flight firing (None while idle); the
        #: value-exact fast-forward key folds them in -- a busy task's
        #: pending body runs on exactly these values after a jump
        self.inflight_values: Optional[Dict[str, Any]] = None
        self._function_names: Optional[frozenset] = None

    def producer_key(self) -> str:
        return self._key

    def function_names(self) -> frozenset:
        """Names of every registry function this task can invoke: the
        statement body, the guard expression, and the synthetic black-box
        fallback.  The value-exact fast-forward qualification checks the
        jump declarations of exactly this set."""
        if self._function_names is not None:
            return self._function_names
        names: set = set()

        def walk(expression: ast.Expression) -> None:
            if isinstance(expression, ast.FunctionExpr):
                names.add(expression.name)
                for argument in expression.arguments:
                    if isinstance(argument, ast.InArgument):
                        walk(argument.expression)
            elif isinstance(expression, ast.UnaryOp):
                walk(expression.operand)
            elif isinstance(expression, ast.BinaryOp):
                walk(expression.left)
                walk(expression.right)

        statement = self.task.statement
        if isinstance(statement, ast.Assignment):
            walk(statement.expression)
        elif isinstance(statement, ast.FunctionCall):
            names.add(statement.name)
            for argument in statement.arguments:
                if isinstance(argument, ast.InArgument):
                    walk(argument.expression)
        else:
            # Synthetic / black-box tasks call one registered function.
            names.add(self.task.function or self.name)
        if self.task.guard is not None:
            walk(self.task.guard)
        self._function_names = frozenset(names)
        return self._function_names

    def bind_windows(self) -> None:
        """Resolve this task's window objects once (compiled-kernel setup).

        Called by the engine after every window is registered: the per-firing
        fast paths then mutate the :class:`WindowState` objects directly
        instead of looking them up by producer key in the buffer's dicts.
        """
        key = self._key
        self._read_windows = [
            (name, count, buffer, buffer.window_of_consumer(key))
            for name, count, buffer in self._reads
        ]
        self._write_windows = [
            (name, count, buffer, buffer.window_of_producer(key))
            for name, count, buffer in self._writes
        ]

    # ------------------------------------------------------------ eligibility
    def can_fire(self) -> bool:
        if self.busy or not self.active:
            return False
        if self.one_shot and self.fired_once:
            return False
        key = self._key
        for _, count, buffer in self._reads:
            if not buffer.can_consume(key, count):
                return False
        for _, count, buffer in self._writes:
            if not buffer.can_produce(key, count):
                return False
        return True

    # --------------------------------------------------------------- execution
    def start_firing(self) -> Dict[str, Any]:
        """Atomically consume the inputs and return the values read."""
        key = self._key
        values: Dict[str, Any] = {}
        for name, count, buffer in self._reads:
            data = buffer.consume(key, count)
            values[name] = data if count > 1 else data[0]
        self.busy = True
        self.inflight_values = values
        return values

    def finish_firing(self, values: Dict[str, Any]) -> bool:
        """Execute the (guarded) body and release the outputs.

        Returns True when the guarded body actually executed.
        """
        key = self._key
        execute = True
        if self.task.guard is not None:
            execute = bool(evaluate_expression(self.task.guard, values, self.registry))

        outputs: Optional[Dict[str, List[Any]]] = self._run_body(values) if execute else None

        for name, count, buffer in self._writes:
            produced = outputs.get(name) if outputs is not None else None
            if produced is not None and len(produced) != count:
                raise OilRuntimeError(
                    f"task {self.name!r}: function produced {len(produced)} values for "
                    f"{name!r}, expected {count}"
                )
            buffer.produce(key, produced, count)

        self.busy = False
        self.inflight_values = None
        self.completed_firings += 1
        self.phase_firings += 1
        if self.one_shot:
            self.fired_once = True
            # A completed initialisation retires its windows: the floors it
            # would otherwise pin forever are handed over to the loop tasks
            # of the same module instance, which continue the streams (see
            # CircularBuffer.retire_producer); windows of other instances
            # and of sink/source drivers are left untouched.
            scope = f"{self.instance}:"
            for _, _, buffer in self._writes:
                buffer.retire_producer(key, scope=scope)
            for _, _, buffer in self._reads:
                buffer.retire_consumer(key, scope=scope)
        return execute

    # ---------------------------------------------- compiled-kernel fast paths
    def start_firing_fast(self) -> Dict[str, Any]:
        """:meth:`start_firing` on pre-bound windows (no dict lookups)."""
        values: Dict[str, Any] = {}
        for name, count, buffer, window in self._read_windows:
            data = buffer.consume_window(window, count)
            values[name] = data if count > 1 else data[0]
        self.busy = True
        self.inflight_values = values
        return values

    def finish_firing_fast(self, values: Dict[str, Any]) -> bool:
        """:meth:`finish_firing` on pre-bound windows.  Bit-identical
        semantics: guard, body, output-length check and one-shot retirement
        are the same code paths; only the window resolution is precomputed."""
        execute = True
        if self.task.guard is not None:
            execute = bool(evaluate_expression(self.task.guard, values, self.registry))

        outputs: Optional[Dict[str, List[Any]]] = self._run_body(values) if execute else None

        for name, count, buffer, window in self._write_windows:
            produced = outputs.get(name) if outputs is not None else None
            if produced is not None and len(produced) != count:
                raise OilRuntimeError(
                    f"task {self.name!r}: function produced {len(produced)} values for "
                    f"{name!r}, expected {count}"
                )
            buffer.produce_window(window, produced, count)

        self.busy = False
        self.inflight_values = None
        self.completed_firings += 1
        self.phase_firings += 1
        if self.one_shot:
            self.fired_once = True
            key = self._key
            scope = f"{self.instance}:"
            for _, _, buffer, _ in self._write_windows:
                buffer.retire_producer(key, scope=scope)
            for _, _, buffer, _ in self._read_windows:
                buffer.retire_consumer(key, scope=scope)
        return execute

    def _run_body(self, values: Dict[str, Any]) -> Dict[str, List[Any]]:
        """Run the assignment / function call and collect produced values."""
        statement = self.task.statement
        outputs: Dict[str, List[Any]] = {}

        if isinstance(statement, ast.Assignment):
            result = evaluate_expression(statement.expression, values, self.registry)
            outputs[statement.target] = [result]
            return outputs

        if isinstance(statement, ast.FunctionCall):
            call_args: List[Any] = []
            out_accesses: List[ast.OutArgument] = []
            for argument in statement.arguments:
                if isinstance(argument, ast.InArgument):
                    call_args.append(
                        evaluate_expression(argument.expression, values, self.registry)
                    )
                else:
                    out_accesses.append(argument)
            result = self.registry.call(statement.name, *call_args)

            if not out_accesses:
                return outputs
            if len(out_accesses) == 1:
                results: Sequence[Any] = (result,)
            else:
                if not isinstance(result, tuple) or len(result) != len(out_accesses):
                    raise OilRuntimeError(
                        f"function {statement.name!r} must return a tuple with "
                        f"{len(out_accesses)} entries (one per out argument)"
                    )
                results = result
            for out_arg, produced in zip(out_accesses, results):
                if out_arg.count == 1 and not isinstance(produced, list):
                    outputs[out_arg.name] = [produced]
                else:
                    produced_list = list(produced)
                    outputs[out_arg.name] = produced_list
            return outputs

        # Synthetic tasks (black boxes) carry no statement: treat all reads as
        # inputs and all writes as outputs of a single registered function.
        call_args = []
        for access in self.task.reads:
            value = values[access.buffer]
            call_args.append(value)
        result = self.registry.call(self.task.function or self.name, *call_args)
        writes = self.task.writes
        if len(writes) == 1:
            results = (result,)
        else:
            results = result
        for access, produced in zip(writes, results):
            if access.count == 1 and not isinstance(produced, list):
                outputs[access.buffer] = [produced]
            else:
                outputs[access.buffer] = list(produced)
        return outputs
