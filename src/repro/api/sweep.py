"""Batched parameter-grid sweeps over programs and engine scenarios.

The ROADMAP's "scenario sweeps at scale" item: run many simulations over a
parameter grid -- frequency scales, processor counts, rates, mode schedules
-- with shared compilation, optional parallel workers and aggregated
reporting.  The three pieces:

* :class:`Sweep` -- declares the grid.  Axes are split automatically:
  *run axes* (``scheduler``, ``platform``, ``duration``, ``dispatcher``,
  ``trace``, ``mode_schedules``, ``sink_start_times``, ``time_base``) only
  affect execution, every other axis is a *program axis* that is forwarded
  to :meth:`~repro.api.program.Program.from_app`.  Each **distinct** program
  parameter combination is compiled and analysed exactly once, no matter how
  many run-axis points fan out from it.  A ``platform`` axis sweeps
  :class:`~repro.platform.model.Platform` values (heterogeneous speedup
  curves); platforms are plain picklable data, so such grids run on the
  process backend unchanged.
* :class:`SweepResult` -- one executed grid point: the parameters, the
  analysis summary and the run metrics (deadline misses, firings, makespan,
  measured rates, occupancy validation), or the recorded error when the
  point failed.
* :class:`SweepReport` -- the aggregation: tabular rendering
  (:meth:`~SweepReport.table`), JSON export (:meth:`~SweepReport.to_json`)
  and normalised comparisons (:meth:`~SweepReport.speedup_table`) such as
  the Fig. 4 speedup-vs-processors curve.

Execution order is the grid's cartesian-product order and results are
aggregated by point index, so serial execution and parallel workers produce
the *same* report.  Two worker backends share that contract:

* ``executor="thread"`` (the default): points share the compiled program
  read-only, while every run builds its own simulation state (buffers,
  tasks, registries via the program's factories) and stateful scheduler
  policies are deep-copied per point.  Determinism-first, but GIL-bound --
  CPU-heavy grids gain little wall-clock from extra threads.
* ``executor="process"``: true multi-core execution.  The parent derives a
  picklable :class:`~repro.api.spec.ProgramSpec` per distinct program
  parameter combination and ships only specs + run parameters; each worker
  process rebuilds and compiles each distinct program at most once (a
  per-worker cache keyed by the same dedup keys, warm-started by the pool
  initializer), runs its chunk of points, and sends flat metric rows back.
  Aggregation stays by point index, so the report is bit-identical to a
  serial run.  Anything the backend cannot ship degrades gracefully instead
  of raising: an unpicklable *program* axis falls the whole sweep back to
  the thread backend (the dedup keys would otherwise be unsound), an
  unpicklable *run* parameter or a crashed worker re-runs just those points
  in the parent -- each with a warning recorded on the report
  (:attr:`SweepReport.warnings`).  Pass ``strict=True`` to turn those
  degradations into :class:`~repro.api.spec.SweepConfigError`.

Engine-level scenarios that have no OIL program (synthetic task fleets,
scheduler experiments) use :meth:`Sweep.from_callable`, which runs an
arbitrary ``params -> metrics-mapping`` function over the same grid
machinery -- the Fig. 4 benchmark sweeps ``fork_join_program`` this way.

Example::

    from repro.api import Sweep
    from repro.engine import BoundedProcessors

    report = (
        Sweep("pal_decoder", duration=Fraction(1, 10))
        .add_axis("scheduler", [BoundedProcessors(n) for n in (1, 2, 3, 4)])
        .run(workers=2)
    )
    print(report.table())
"""

from __future__ import annotations

import copy
import itertools
import json
import math
import pickle
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.program import Analysis, Program, RunResult
from repro.api.spec import ProgramSpec, SweepConfigError
from repro.util.rational import RationalLike, as_rational
from repro.util.runwarnings import RunWarning, warning_code
from repro.util.validation import check_positive

#: Supported Sweep.run backends.
EXECUTORS = ("serial", "thread", "process")

#: Axes that configure the *run*, not the program (no recompilation needed).
RUN_AXES = (
    "scheduler",
    "platform",
    "duration",
    "horizon",
    "dispatcher",
    "trace",
    "mode_schedules",
    "sink_start_times",
    "time_base",
    "fast_forward",
    "trace_retention",
    "kernel",
)


def _program_key(program_params: Mapping[str, Any], *, strict: bool = False) -> Tuple:
    """A value-based dedup key for one program-parameter combination.

    ``repr`` alone is not safe here: types with truncating reprs (numpy
    arrays) would collapse distinct parameter values into one compiled
    program.  Pickle bytes compare by value for all picklable types;
    unpicklable axis values (lambdas, generators, open handles) must not
    crash a thread-backend sweep, so they fall back to a ``repr``-based key.
    Default object reprs embed the instance id, so equal-valued unpicklable
    objects usually get distinct keys -- such axes may compile the same
    program redundantly, which is the safe direction.  (An unpicklable type
    whose custom ``repr`` hides a value difference would share one
    compilation; give such types a faithful ``repr`` or make them
    picklable.)

    ``strict=True`` is the process-backend mode: there the key must also
    function as a cross-process cache identity, where a repr-based stand-in
    is unsound in *both* directions, so an unpicklable value raises a
    :class:`SweepConfigError` naming the offending axis instead.
    """
    parts = []
    for name, value in sorted(program_params.items()):
        try:
            rendered: object = pickle.dumps(value)
        except Exception as error:
            if strict:
                raise SweepConfigError(
                    f"program axis {name!r} has an unpicklable value "
                    f"({type(value).__qualname__}: {value!r}): the process "
                    f"executor ships program parameters to worker processes "
                    f"by pickle ({type(error).__name__}: {error})"
                ) from error
            rendered = ("unpicklable", type(value).__qualname__, repr(value))
        parts.append((name, rendered))
    return tuple(parts)


def _unpicklable_param(params: Mapping[str, Any]) -> Optional[Tuple[str, Any, Exception]]:
    """The first ``(name, value, error)`` that cannot be pickled, if any."""
    for name, value in sorted(params.items()):
        try:
            pickle.dumps(value)
        except Exception as error:
            return name, value, error
    return None


def _execute_point(
    analysis: Analysis,
    run_params: Mapping[str, Any],
    default_duration: Fraction,
) -> Tuple[Dict[str, Any], RunResult]:
    """Execute one grid point against its compiled analysis.

    The single definition of per-point semantics -- duration override,
    per-point scheduler deep copy (policies are stateful), metric-row
    assembly -- shared by the serial/thread path and the process workers, so
    the backends cannot drift apart and break the identical-reports
    contract.
    """
    run_params = dict(run_params)
    duration = as_rational(run_params.pop("duration", default_duration))
    if run_params.get("scheduler") is not None:
        run_params["scheduler"] = copy.deepcopy(run_params["scheduler"])
    if run_params.get("horizon") is not None:
        # a horizon axis replaces the duration (Analysis.run takes exactly
        # one of the two; it implies fast_forward unless the axis says no)
        run_params["horizon"] = as_rational(run_params["horizon"])
        run = analysis.run(**run_params)
    else:
        run_params.pop("horizon", None)
        run = analysis.run(duration, **run_params)
    metrics = {
        "consistent": analysis.consistent,
        "total_capacity": analysis.total_capacity,
        **run.metrics(),
    }
    if run.warnings:
        # degradations travel inside the metric row so every backend --
        # including process workers, which ship rows back by pickle -- can
        # surface them; SweepReport hoists the key into report warnings
        metrics["warnings"] = list(run.warnings)
    return metrics, run


def _json_safe(value: Any) -> Any:
    """Coerce *value* into something ``json.dumps`` accepts, readably."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, Fraction):
        return str(value)
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


@dataclass
class SweepResult:
    """One executed grid point."""

    index: int
    params: Dict[str, Any]
    ok: bool = True
    error: Optional[str] = None
    #: flat metric row (analysis summary + run metrics); empty on failure
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: the full result objects (None for callable sweeps / failed points)
    run: Optional[RunResult] = None

    def row(self) -> Dict[str, Any]:
        """Parameters and metrics flattened into one JSON-safe mapping."""
        row: Dict[str, Any] = {"point": self.index}
        row.update({k: _json_safe(v) for k, v in self.params.items()})
        if self.ok:
            row.update({k: _json_safe(v) for k, v in self.metrics.items()})
        else:
            row["error"] = self.error
        return row

    def payload(self) -> Dict[str, Any]:
        """The point as one structured JSON-safe mapping -- the persistence
        encoding shared by :meth:`SweepReport.to_json`, the sweep service's
        checkpoints and the content-addressed result store.

        Unlike :meth:`row` (the flattened tabular view) this keeps params
        and metrics separate, so :meth:`from_payload` can reconstruct the
        :class:`SweepResult` exactly.  ``_json_safe`` is idempotent, which
        is what makes restored results *bit-identical* in every rendering:
        a re-encoded payload, row or report JSON equals the original.
        """
        return {
            "point": self.index,
            "ok": self.ok,
            "error": self.error,
            "params": {k: _json_safe(v) for k, v in self.params.items()},
            "metrics": {k: _json_safe(v) for k, v in self.metrics.items()},
        }

    @classmethod
    def from_payload(cls, data: Mapping[str, Any]) -> "SweepResult":
        """The inverse of :meth:`payload` (the full ``run`` object is gone
        for good -- simulations are never persisted, only metric rows)."""
        return cls(
            index=data["point"],
            params=dict(data["params"]),
            ok=data["ok"],
            error=data["error"],
            metrics=dict(data["metrics"]),
        )


class SweepReport:
    """Aggregated results of one sweep, in grid order."""

    def __init__(
        self,
        results: Sequence[SweepResult],
        *,
        name: str = "sweep",
        warnings: Sequence[str] = (),
    ) -> None:
        self.name = name
        self.results = list(results)
        #: execution-backend degradations (thread fallback for unpicklable
        #: axes, in-parent re-runs after worker crashes); the *rows* are
        #: unaffected -- fallbacks preserve serial-identical metrics -- so
        #: warnings live beside the results, not inside them
        self.warnings: List[str] = list(warnings)
        #: how the sweep service satisfied each point (``executed`` /
        #: ``store_hits`` / ``resumed`` counts), set by
        #: ``Sweep.run(store=..., checkpoint=...)``; None for plain runs.
        #: Deliberately NOT serialised: a cache-served report must stay
        #: bit-identical to the uncached one.
        self.service_stats: Optional[Dict[str, int]] = None
        # Per-point run degradations (fast-forward refusals/give-ups) ride
        # along inside the metric rows; hoist them here so one place lists
        # everything that did not run as configured.  The hoisted copy keeps
        # the stable warning_code of structured entries.
        for result in self.results:
            for message in result.metrics.get("warnings", ()):
                self.warnings.append(
                    RunWarning(
                        f"point {result.index}: {message}",
                        warning_code(message),
                    )
                )

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def failures(self) -> List[SweepResult]:
        return [result for result in self.results if not result.ok]

    def rows(self) -> List[Dict[str, Any]]:
        return [result.row() for result in self.results]

    def column(self, key: str) -> List[Any]:
        """One metric/parameter across all points (None where missing)."""
        return [result.row().get(key) for result in self.results]

    # ------------------------------------------------------------- rendering
    def table(self, columns: Optional[Sequence[str]] = None) -> str:
        """A fixed-width table of all points (grid order)."""
        rows = self.rows()
        if not rows:
            return f"{self.name}: empty sweep"
        if columns is None:
            seen: Dict[str, None] = {}
            for row in rows:
                for key in row:
                    seen.setdefault(key)
            columns = list(seen)
        rendered = [[_render_cell(row.get(column)) for column in columns] for row in rows]
        widths = [
            max(len(str(column)), *(len(line[i]) for line in rendered))
            for i, column in enumerate(columns)
        ]
        header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
        divider = "  ".join("-" * w for w in widths)
        body = ["  ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in rendered]
        return "\n".join([f"=== {self.name} ({len(rows)} points) ===", header, divider, *body])

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """The whole report as JSON -- one structured entry per point
        (``point`` / ``ok`` / ``error`` / ``params`` / ``metrics``), plus the
        report-level warnings.  :meth:`from_json` is the exact inverse."""
        return json.dumps(
            {
                "name": self.name,
                "warnings": self.warnings,
                "points": [result.payload() for result in self.results],
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        """Reconstruct a report from :meth:`to_json` output.

        Round-trips results, warnings and failures exactly:
        ``from_json(report.to_json()).to_json() == report.to_json()``.  The
        serialised warnings already *include* the per-point run warnings the
        constructor hoists out of metric rows, so this path bypasses the
        constructor (re-hoisting would duplicate them) and restores the
        warnings list verbatim.  The sweep service's ``merge`` step and the
        job spool's ``result`` read rest on this inverse.
        """
        data = json.loads(text)
        report = cls.__new__(cls)
        report.name = data["name"]
        report.results = [SweepResult.from_payload(entry) for entry in data["points"]]
        report.warnings = list(data["warnings"])
        report.service_stats = None
        return report

    def speedup_table(
        self,
        metric: str = "completed_firings",
        *,
        baseline: int = 0,
        lower_is_better: Optional[bool] = None,
    ) -> List[Dict[str, Any]]:
        """Each point's *metric* normalised against the *baseline* point.

        For a sweep over ``BoundedProcessors(n)`` with ``completed_firings``
        (throughput under a fixed simulated duration) or ``makespan``
        (smaller is better) this is the Fig. 4 speedup curve.

        ``lower_is_better`` states the metric's direction: when True the
        speedup is ``baseline / value`` (a halved makespan is a 2x speedup),
        when False it is ``value / baseline``.  The default infers True only
        for the ``"makespan"`` metric; pass it explicitly for any other
        time-like metric (latency, wall time, ...).
        """
        if lower_is_better is None:
            lower_is_better = metric == "makespan"
        values = self.column(metric)
        base = values[baseline] if values else None
        table: List[Dict[str, Any]] = []
        for result, value in zip(self.results, values):
            if not result.ok or value in (None, 0) or base in (None, 0):
                speedup = None
            elif lower_is_better:
                speedup = float(base) / float(value)
            else:
                speedup = float(value) / float(base)
            entry = {k: _json_safe(v) for k, v in result.params.items()}
            entry[metric] = _json_safe(value)
            entry["speedup"] = None if speedup is None else round(speedup, 6)
            table.append(entry)
        return table


def _render_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


# --------------------------------------------------------------------------
# Process-backend worker side.  Everything below runs inside worker
# processes; it must be module-level (pickled by reference) and communicate
# only through picklable values.  The per-worker compile cache is the whole
# point: compilation is the expensive shared prefix of every point, and a
# worker pays it once per *distinct* program no matter how many points it
# executes.
# --------------------------------------------------------------------------

#: Per-worker state, populated by :func:`_process_worker_init`.
_WORKER: Dict[str, Any] = {}


def _process_worker_init(
    specs: Dict[int, ProgramSpec],
    runner: Optional[Callable[..., Mapping[str, Any]]],
    default_duration: Fraction,
) -> None:
    """Seed one worker with the spec table and warm-start its compile cache.

    The cache is keyed by the parent's interned spec ids (one small int per
    distinct :func:`_program_key`, so point payloads never re-ship the key's
    pickle bytes), worker and parent agree on program identity, and each
    worker compiles each distinct program **at most once**.  With a single distinct program
    (the common Fig. 4 shape: one app, run-axis grid) it is compiled right
    here, before the first chunk arrives; with several, contiguous chunking
    means a worker typically only ever sees a subset of the programs, so
    compilation is deferred to first use instead of multiplying the whole
    spec table's compile cost by the worker count.
    """
    _WORKER["specs"] = dict(specs)
    _WORKER["analyses"] = {}
    _WORKER["runner"] = runner
    _WORKER["duration"] = default_duration
    if len(specs) == 1:
        for spec_id in specs:
            _worker_analysis(spec_id)


def _worker_analysis(spec_id: int) -> Analysis:
    """This worker's compiled analysis for *spec_id* (compile once, cache).

    Forcing the lazy analysis caches mirrors ``Sweep._analyses``: chunk
    execution then only reads shared results.
    """
    analyses: Dict[int, Analysis] = _WORKER["analyses"]
    if spec_id not in analyses:
        analysis = _WORKER["specs"][spec_id].build().analyze()
        analysis.consistency, analysis.sizing, analysis.latency  # force caches
        analyses[spec_id] = analysis
    return analyses[spec_id]


def _process_run_chunk(
    chunk: Sequence[Tuple[int, Optional[int], Dict[str, Any]]],
) -> List[Tuple[int, bool, Optional[str], Dict[str, Any]]]:
    """Execute one chunk of ``(index, spec_id, run_params)`` points.

    Returns flat ``(index, ok, error, metrics)`` rows -- the full
    :class:`~repro.api.program.RunResult` stays in the worker (simulation
    state is not picklable, and the report only needs the metrics).  Failure
    capture matches the serial path exactly, including the error string
    format, so a failing point produces the identical report row under every
    backend.
    """
    runner = _WORKER["runner"]
    rows: List[Tuple[int, bool, Optional[str], Dict[str, Any]]] = []
    for index, spec_id, run_params in chunk:
        # Compilation failures stay *outside* the per-point capture: the
        # serial path raises them out of ``Sweep._analyses`` rather than
        # recording a failed point, and the chunk must fail the same way (the
        # parent then re-runs these points locally and surfaces the original
        # exception).
        analysis = _worker_analysis(spec_id) if runner is None else None
        try:
            if runner is not None:
                metrics = dict(runner(**run_params))
            else:
                # The per-point deep copy inside _execute_point also covers
                # a chunk-internal subtlety: unpickling gave this chunk its
                # own object graph, but points *within* a chunk may still
                # share one policy instance (pickle preserves identity
                # inside a single payload).
                metrics, _ = _execute_point(analysis, run_params, _WORKER["duration"])
            rows.append((index, True, None, metrics))
        except Exception as error:  # a failed point must not sink the chunk
            rows.append((index, False, f"{type(error).__name__}: {error}", {}))
    return rows


class Sweep:
    """A parameter-grid batch of simulations (or callable scenarios).

    Parameters
    ----------
    app:
        Name of a packaged application (``Program.from_app``).  Mutually
        exclusive with *program*.
    program:
        A ready-made :class:`~repro.api.program.Program`; the grid may then
        only contain run axes (there is nothing to recompile).
    duration:
        Default simulated duration per point (overridable via a
        ``"duration"`` axis).
    base:
        Parameter values shared by every point (program or run parameters).
    grid:
        Initial axes, equivalent to calling :meth:`add_axis` per entry.
    """

    def __init__(
        self,
        app: Optional[str] = None,
        *,
        program: Optional[Program] = None,
        duration: RationalLike = Fraction(1),
        base: Optional[Mapping[str, Any]] = None,
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
        name: Optional[str] = None,
    ) -> None:
        if app is not None and program is not None:
            raise ValueError("pass either app= or program=, not both")
        self._app = app
        self._program = program
        self._runner: Optional[Callable[..., Mapping[str, Any]]] = None
        self.duration = as_rational(duration)
        self.base: Dict[str, Any] = dict(base or {})
        self.axes: Dict[str, List[Any]] = {}
        self.name = name or (app or (program.name if program else "sweep"))
        for axis, values in (grid or {}).items():
            self.add_axis(axis, values)

    @classmethod
    def from_callable(
        cls,
        runner: Callable[..., Mapping[str, Any]],
        *,
        base: Optional[Mapping[str, Any]] = None,
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
        name: str = "sweep",
    ) -> "Sweep":
        """A sweep whose points call ``runner(**params)`` and aggregate the
        returned metric mapping -- for engine-level scenarios (synthetic task
        fleets, scheduler experiments) that have no OIL program."""
        sweep = cls(name=name, base=base, grid=grid)
        sweep._runner = runner
        return sweep

    # ---------------------------------------------------------------- axes
    def add_axis(self, name: str, values: Sequence[Any]) -> "Sweep":
        """Add a grid axis (fluent).  Later axes vary fastest."""
        values = list(values)
        if not values:
            raise ValueError(f"axis {name!r} needs at least one value")
        self.axes[name] = values
        return self

    def points(self) -> List[Dict[str, Any]]:
        """The expanded grid in cartesian-product order (base + axes)."""
        if not self.axes:
            return [dict(self.base)]
        names = list(self.axes)
        combos = itertools.product(*(self.axes[name] for name in names))
        return [{**self.base, **dict(zip(names, combo))} for combo in combos]

    # ----------------------------------------------------------------- run
    def _split(self, params: Mapping[str, Any]) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        program_params = {k: v for k, v in params.items() if k not in RUN_AXES}
        run_params = {k: v for k, v in params.items() if k in RUN_AXES}
        return program_params, run_params

    def _analyses(
        self, points: Sequence[Mapping[str, Any]], *, strict: bool = False
    ) -> Dict[Tuple, Analysis]:
        """Compile + analyse each distinct program exactly once (serially --
        compilation is the shared part the workers must not repeat).

        The lazy :class:`Analysis` caches are forced here, *before* the
        fan-out: workers only read the shared analysis, they never race to
        compute it (buffer sizing mutates the model's buffer parameters while
        it searches, so it must not run concurrently on one model).

        ``strict`` forwards to :func:`_program_key`: refuse the repr-based
        fallback for unpicklable axis values instead of risking a redundant
        compilation.
        """
        analyses: Dict[Tuple, Analysis] = {}
        for params in points:
            program_params, _ = self._split(params)
            key = _program_key(program_params, strict=strict)
            if key in analyses:
                continue
            self._check_program_source(program_params)
            if self._program is not None:
                analysis = self._program.analyze()
            else:
                analysis = Program.from_app(self._app, **program_params).analyze()
            analysis.consistency, analysis.sizing, analysis.latency  # force caches
            analyses[key] = analysis
        return analyses

    def _check_program_source(self, program_params: Mapping[str, Any]) -> None:
        """Reject grids this sweep cannot build programs for.

        One definition of the two misconfiguration errors, so the serial,
        thread and process backends report identical messages.
        """
        if self._program is not None:
            if program_params:
                raise ValueError(
                    f"sweep over a ready-made program accepts only run axes "
                    f"{RUN_AXES}; got program axes {sorted(program_params)}"
                )
        elif self._app is None:
            raise ValueError(
                "this sweep has no program: construct it with app=, "
                "program= or Sweep.from_callable(...)"
            )

    def _run_point(
        self,
        index: int,
        params: Dict[str, Any],
        analyses: Dict[Tuple, Analysis],
        keep_runs: bool,
    ) -> SweepResult:
        try:
            if self._runner is not None:
                metrics = dict(self._runner(**params))
                return SweepResult(index=index, params=params, metrics=metrics)
            program_params, run_params = self._split(params)
            analysis = analyses[_program_key(program_params)]
            metrics, run = _execute_point(analysis, run_params, self.duration)
            return SweepResult(
                index=index,
                params=params,
                metrics=metrics,
                run=run if keep_runs else None,
            )
        except Exception as error:  # a failed point must not sink the batch
            return SweepResult(
                index=index,
                params=params,
                ok=False,
                error=f"{type(error).__name__}: {error}",
            )

    def run(
        self,
        *,
        workers: int = 1,
        executor: str = "thread",
        keep_runs: bool = True,
        strict: bool = False,
        store: Any = None,
        checkpoint: Any = None,
    ) -> SweepReport:
        """Execute every grid point and aggregate a :class:`SweepReport`.

        ``executor`` selects the worker backend: ``"thread"`` (the default)
        fans the points out over a thread pool when ``workers > 1`` --
        deterministic and cheap, but GIL-bound; ``"process"`` over a process
        pool for true multi-core execution (each worker rebuilds and
        compiles each distinct program at most once from its picklable
        :class:`~repro.api.spec.ProgramSpec`), taken at *any* worker count
        so its contract does not vary with ``workers``; ``"serial"`` forces
        the in-thread loop regardless of *workers*.  Results are aggregated
        by point index under every backend, so the report rows are identical
        to a serial run.

        The process backend degrades rather than raises when something
        cannot be shipped: unpicklable program axes fall the whole sweep
        back to threads, unpicklable run parameters or crashed workers
        re-run just those points in the parent -- each recorded in
        :attr:`SweepReport.warnings`.  ``strict=True`` turns those
        degradations into :class:`~repro.api.spec.SweepConfigError`; on the
        serial/thread backends it likewise refuses the repr-based dedup-key
        fallback for unpicklable program-axis values (which may otherwise
        compile one program redundantly) instead of being silently ignored.

        ``keep_runs=False`` drops each point's full :class:`RunResult`
        (simulation state, complete trace, sink sample lists) once its flat
        metric row is extracted -- use it for large grids, where retaining
        every simulation for the report's lifetime multiplies memory by the
        point count.  Tables, JSON and speedup curves only need the metrics.
        The process backend implies it: simulations stay in the workers and
        only metric rows travel back, so its results always have
        ``run=None``.

        ``store`` (a :class:`~repro.service.store.ResultStore` or a
        directory path) and ``checkpoint`` (a JSONL file path) engage the
        sweep service: points whose content digest is already in the store
        are answered without compiling or executing anything, completed
        rows are appended to the checkpoint as they finish, and a re-run
        with the same checkpoint resumes instead of restarting.  The
        resulting report is bit-identical to an uninterrupted plain run;
        :attr:`SweepReport.service_stats` records how many points were
        executed vs served.  See :mod:`repro.service`.
        """
        check_positive(workers, "workers")
        if executor not in EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}; choose from {EXECUTORS}")
        declared = set(self.axes) | set(self.base)
        if {"scheduler", "platform"} <= declared:
            # Analysis.run accepts one or the other; without this check every
            # grid point would burn a compile only to fail identically.
            raise SweepConfigError(
                "a sweep cannot combine 'scheduler' and 'platform' parameters: "
                "each run takes exactly one of them"
            )
        points = self.points()
        if store is not None or checkpoint is not None:
            from repro.service.runner import run_service_sweep

            return run_service_sweep(
                self,
                points,
                store=store,
                checkpoint=checkpoint,
                executor=executor,
                workers=workers,
                keep_runs=keep_runs,
                strict=strict,
            )
        results, warnings = self._execute_points(
            list(enumerate(points)),
            executor=executor,
            workers=workers,
            keep_runs=keep_runs,
            strict=strict,
        )
        return SweepReport(results, name=self.name, warnings=warnings)

    def _execute_points(
        self,
        indexed_points: List[Tuple[int, Dict[str, Any]]],
        *,
        executor: str,
        workers: int,
        keep_runs: bool,
        strict: bool,
        on_result: Optional[Callable[[SweepResult], None]] = None,
    ) -> Tuple[List[SweepResult], List[str]]:
        """Execute ``(grid index, params)`` pairs on the selected backend.

        The shared engine behind :meth:`run` and the sweep service: indices
        are caller-assigned (the service passes only the cache-missed subset
        of a grid, with their original positions), results come back in the
        given order alongside the backend's degradation warnings, and
        ``on_result`` fires exactly once per point as it completes -- the
        checkpoint-append hook, called under a lock on the thread backend
        and from the parent process on the process backend.
        """
        if executor == "process":
            # Even with workers=1 the process path is taken: the backend's
            # contract (strict validation, run=None results, pickle-probed
            # shipping) must not silently vary with the worker count.
            return self._run_process(
                indexed_points, workers, strict=strict, on_result=on_result
            )
        if self._runner is None:
            analyses = self._analyses(
                [params for _, params in indexed_points], strict=strict
            )
        else:
            analyses = {}
        if executor == "serial" or workers == 1 or len(indexed_points) <= 1:
            results = []
            for index, params in indexed_points:
                result = self._run_point(index, params, analyses, keep_runs)
                if on_result is not None:
                    on_result(result)
                results.append(result)
        else:
            results = self._run_threads(
                indexed_points, workers, analyses, keep_runs, on_result
            )
        return results, []

    def _run_threads(
        self,
        indexed_points: Sequence[Tuple[int, Dict[str, Any]]],
        workers: int,
        analyses: Dict[Tuple, Analysis],
        keep_runs: bool,
        on_result: Optional[Callable[[SweepResult], None]] = None,
    ) -> List[SweepResult]:
        lock = threading.Lock()

        def execute(item: Tuple[int, Dict[str, Any]]) -> SweepResult:
            result = self._run_point(item[0], item[1], analyses, keep_runs)
            if on_result is not None:
                # checkpoint/store writers are plain appenders, not
                # thread-safe objects -- serialise the callback
                with lock:
                    on_result(result)
            return result

        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(execute, indexed_points))

    # ------------------------------------------------------- process backend
    def _spec_for(self, program_params: Dict[str, Any]) -> ProgramSpec:
        """The picklable rebuild recipe of one grid point's program."""
        self._check_program_source(program_params)
        if self._program is not None:
            return self._program.spec()
        return ProgramSpec.from_app(self._app, **program_params)

    def _run_process(
        self,
        indexed_points: List[Tuple[int, Dict[str, Any]]],
        workers: int,
        *,
        strict: bool,
        on_result: Optional[Callable[[SweepResult], None]] = None,
    ) -> Tuple[List[SweepResult], List[str]]:
        """The ``executor="process"`` backend (see :meth:`run`)."""
        warnings: List[str] = []
        params_by_index = dict(indexed_points)

        def degrade_to_threads(
            reason: str, error: Exception
        ) -> Tuple[List[SweepResult], List[str]]:
            if strict:
                if isinstance(error, SweepConfigError):
                    raise error
                raise SweepConfigError(reason) from error
            warnings.append(f"{reason}; falling back to the thread executor")
            if self._runner is None:
                analyses = self._analyses([params for _, params in indexed_points])
            else:
                analyses = {}
            results = self._run_threads(
                indexed_points, workers, analyses, keep_runs=False, on_result=on_result
            )
            return results, warnings

        # -- 1. shared state must be picklable: specs (or the runner).  An
        # unsound dedup key / unshippable program degrades the whole sweep.
        # Dedup keys embed the pickle bytes of every program-axis value, so
        # they are interned to small integer spec ids here -- point payloads
        # then reference programs by id instead of re-shipping (potentially
        # huge) key bytes once per point.
        specs: Dict[int, ProgramSpec] = {}
        spec_id_by_index: Dict[int, Optional[int]] = {}
        if self._runner is not None:
            try:
                pickle.dumps(self._runner)
            except Exception as error:
                return degrade_to_threads(
                    f"sweep runner {self._runner!r} is not picklable "
                    f"({type(error).__name__}: {error})",
                    error,
                )
            spec_id_by_index = {index: None for index, _ in indexed_points}
        else:
            try:
                spec_ids: Dict[Tuple, int] = {}
                for index, params in indexed_points:
                    program_params, _ = self._split(params)
                    key = _program_key(program_params, strict=True)
                    if key not in spec_ids:
                        spec = self._spec_for(dict(program_params))
                        spec.ensure_picklable()
                        spec_ids[key] = len(specs)
                        specs[spec_ids[key]] = spec
                    spec_id_by_index[index] = spec_ids[key]
            except SweepConfigError as error:
                return degrade_to_threads(str(error), error)

        # -- 2. per-point run parameters: a point the backend cannot ship
        # (an unpicklable scheduler key, a custom trace sink, ...) runs in
        # the parent instead; everything else is chunked out to the pool.
        shippable: List[Tuple[int, Optional[int], Dict[str, Any]]] = []
        local_indices: List[int] = []
        for index, params in indexed_points:
            if self._runner is not None:
                run_params = dict(params)
            else:
                _, run_params = self._split(params)
            offending = _unpicklable_param(run_params)
            if offending is None:
                shippable.append((index, spec_id_by_index[index], run_params))
            else:
                name, value, error = offending
                message = (
                    f"point {index}: run parameter {name!r} has an "
                    f"unpicklable value ({type(value).__qualname__}: "
                    f"{value!r})"
                )
                if strict:
                    raise SweepConfigError(message) from error
                warnings.append(f"{message}; running the point in-process")
                local_indices.append(index)

        # -- 3. fan the shippable points out in contiguous chunks.  A broken
        # pool (one worker crash poisons every pending future) gets ONE
        # retry in a fresh pool, so a transient crash costs only the broken
        # chunks' latency, not a serial re-run of most of the grid; whatever
        # still fails is re-run in the parent.  Aggregation is by point
        # index throughout, so the row order -- and the rows -- are
        # identical to a serial run.
        outcomes: Dict[int, SweepResult] = {}

        def record(index: int, ok: bool, error_text: Optional[str], metrics) -> None:
            # a row arrives from a worker exactly once per index (a broken
            # or failed chunk never delivered its rows), so on_result fires
            # once per point, as the checkpoint contract requires
            result = SweepResult(
                index=index,
                params=params_by_index[index],
                ok=ok,
                error=error_text,
                metrics=metrics,
            )
            outcomes[index] = result
            if on_result is not None:
                on_result(result)

        def run_pool(
            chunks: List[List[Tuple[int, Optional[int], Dict[str, Any]]]],
        ) -> List[List[Tuple[int, Optional[int], Dict[str, Any]]]]:
            """One pool round; returns the chunks whose pool broke."""
            broken: List[List[Tuple[int, Optional[int], Dict[str, Any]]]] = []

            def fail(chunk, error: Exception, what: str) -> str:
                message = (
                    f"{what} on points {[index for index, _, _ in chunk]} "
                    f"({type(error).__name__}: {error})"
                )
                if strict:
                    # Don't leave queued chunks burning CPU behind the raise,
                    # and surface the *root cause* when there is one: a
                    # worker that died compiling (the exception text died
                    # with the child) re-compiles here in the parent, so a
                    # broken program raises its original exception type
                    # instead of an opaque pool-breakage message.
                    pool.shutdown(cancel_futures=True)
                    if self._runner is None:
                        self._analyses(
                            [params_by_index[index] for index, _, _ in chunk]
                        )
                    raise SweepConfigError(message) from error
                return message

            with ProcessPoolExecutor(
                max_workers=min(workers, len(chunks)),
                initializer=_process_worker_init,
                initargs=(specs, self._runner, self.duration),
            ) as pool:
                futures = [(pool.submit(_process_run_chunk, chunk), chunk) for chunk in chunks]
                for future, chunk in futures:
                    try:
                        for index, ok, error_text, metrics in future.result():
                            record(index, ok, error_text, metrics)
                    except BrokenExecutor as error:
                        fail(chunk, error, "process pool broke")
                        broken.append(chunk)
                    except Exception as error:
                        # a chunk-level failure that left the pool alive
                        # (e.g. an unpicklable metric value in the result):
                        # retrying would fail identically, go straight to
                        # the in-parent fallback
                        message = fail(chunk, error, "process worker failed")
                        warnings.append(f"{message}; re-running them in-process")
                        local_indices.extend(index for index, _, _ in chunk)
            return broken

        if shippable:
            chunk_size = max(1, math.ceil(len(shippable) / (workers * 4)))
            chunks = [
                shippable[start : start + chunk_size]
                for start in range(0, len(shippable), chunk_size)
            ]
            broken = run_pool(chunks)
            if broken:
                count = sum(len(chunk) for chunk in broken)
                warnings.append(
                    f"process pool broke with {count} point(s) unfinished; "
                    f"retrying them in a fresh pool"
                )
                broken = run_pool(broken)
            for chunk in broken:
                warnings.append(
                    f"process pool broke again on points "
                    f"{[index for index, _, _ in chunk]}; re-running them "
                    f"in-process"
                )
                local_indices.extend(index for index, _, _ in chunk)

        # -- 4. in-parent fallback for whatever could not be shipped, then
        # assembly in the caller's order.
        if local_indices:
            local_indices.sort()
            local_points = [params_by_index[index] for index in local_indices]
            analyses = self._analyses(local_points) if self._runner is None else {}
            for index in local_indices:
                result = self._run_point(
                    index, params_by_index[index], analyses, keep_runs=False
                )
                outcomes[index] = result
                if on_result is not None:
                    on_result(result)
        return [outcomes[index] for index, _ in indexed_points], warnings
