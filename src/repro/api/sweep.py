"""Batched parameter-grid sweeps over programs and engine scenarios.

The ROADMAP's "scenario sweeps at scale" item: run many simulations over a
parameter grid -- frequency scales, processor counts, rates, mode schedules
-- with shared compilation, optional parallel workers and aggregated
reporting.  The three pieces:

* :class:`Sweep` -- declares the grid.  Axes are split automatically:
  *run axes* (``scheduler``, ``duration``, ``dispatcher``, ``trace``,
  ``mode_schedules``, ``sink_start_times``, ``time_base``) only affect
  execution, every other axis is a *program axis* that is forwarded to
  :meth:`~repro.api.program.Program.from_app`.  Each **distinct** program
  parameter combination is compiled and analysed exactly once, no matter how
  many run-axis points fan out from it.
* :class:`SweepResult` -- one executed grid point: the parameters, the
  analysis summary and the run metrics (deadline misses, firings, makespan,
  measured rates, occupancy validation), or the recorded error when the
  point failed.
* :class:`SweepReport` -- the aggregation: tabular rendering
  (:meth:`~SweepReport.table`), JSON export (:meth:`~SweepReport.to_json`)
  and normalised comparisons (:meth:`~SweepReport.speedup_table`) such as
  the Fig. 4 speedup-vs-processors curve.

Execution order is the grid's cartesian-product order and results are
aggregated by point index, so serial execution and parallel workers produce
the *same* report.  Workers are threads (`concurrent.futures`): points share
the compiled program read-only, while every run builds its own simulation
state (buffers, tasks, registries via the program's factories) and stateful
scheduler policies are deep-copied per point.

Engine-level scenarios that have no OIL program (synthetic task fleets,
scheduler experiments) use :meth:`Sweep.from_callable`, which runs an
arbitrary ``params -> metrics-mapping`` function over the same grid
machinery -- the Fig. 4 benchmark sweeps ``fork_join_program`` this way.

Example::

    from repro.api import Sweep
    from repro.engine import BoundedProcessors

    report = (
        Sweep("pal_decoder", duration=Fraction(1, 10))
        .add_axis("scheduler", [BoundedProcessors(n) for n in (1, 2, 3, 4)])
        .run(workers=2)
    )
    print(report.table())
"""

from __future__ import annotations

import copy
import itertools
import json
import pickle
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.program import Analysis, Program, RunResult
from repro.util.rational import RationalLike, as_rational
from repro.util.validation import check_positive

#: Axes that configure the *run*, not the program (no recompilation needed).
RUN_AXES = (
    "scheduler",
    "duration",
    "dispatcher",
    "trace",
    "mode_schedules",
    "sink_start_times",
    "time_base",
)


def _program_key(program_params: Mapping[str, Any]) -> Tuple:
    """A value-based dedup key for one program-parameter combination.

    ``repr`` alone is not safe here: types with truncating reprs (numpy
    arrays) would collapse distinct parameter values into one compiled
    program.  Pickle bytes compare by value for all picklable types;
    unpicklable axis values (lambdas, generators, open handles) must not
    crash the sweep, so they fall back to a ``repr``-based key.  Default
    object reprs embed the instance id, so equal-valued unpicklable objects
    usually get distinct keys -- such axes may compile the same program
    redundantly, which is the safe direction.  (An unpicklable type whose
    custom ``repr`` hides a value difference would share one compilation;
    give such types a faithful ``repr`` or make them picklable.)
    """
    parts = []
    for name, value in sorted(program_params.items()):
        try:
            rendered: object = pickle.dumps(value)
        except Exception:
            rendered = ("unpicklable", type(value).__qualname__, repr(value))
        parts.append((name, rendered))
    return tuple(parts)


def _json_safe(value: Any) -> Any:
    """Coerce *value* into something ``json.dumps`` accepts, readably."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, Fraction):
        return str(value)
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


@dataclass
class SweepResult:
    """One executed grid point."""

    index: int
    params: Dict[str, Any]
    ok: bool = True
    error: Optional[str] = None
    #: flat metric row (analysis summary + run metrics); empty on failure
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: the full result objects (None for callable sweeps / failed points)
    run: Optional[RunResult] = None

    def row(self) -> Dict[str, Any]:
        """Parameters and metrics flattened into one JSON-safe mapping."""
        row: Dict[str, Any] = {"point": self.index}
        row.update({k: _json_safe(v) for k, v in self.params.items()})
        if self.ok:
            row.update({k: _json_safe(v) for k, v in self.metrics.items()})
        else:
            row["error"] = self.error
        return row


class SweepReport:
    """Aggregated results of one sweep, in grid order."""

    def __init__(self, results: Sequence[SweepResult], *, name: str = "sweep") -> None:
        self.name = name
        self.results = list(results)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def failures(self) -> List[SweepResult]:
        return [result for result in self.results if not result.ok]

    def rows(self) -> List[Dict[str, Any]]:
        return [result.row() for result in self.results]

    def column(self, key: str) -> List[Any]:
        """One metric/parameter across all points (None where missing)."""
        return [result.row().get(key) for result in self.results]

    # ------------------------------------------------------------- rendering
    def table(self, columns: Optional[Sequence[str]] = None) -> str:
        """A fixed-width table of all points (grid order)."""
        rows = self.rows()
        if not rows:
            return f"{self.name}: empty sweep"
        if columns is None:
            seen: Dict[str, None] = {}
            for row in rows:
                for key in row:
                    seen.setdefault(key)
            columns = list(seen)
        rendered = [[_render_cell(row.get(column)) for column in columns] for row in rows]
        widths = [
            max(len(str(column)), *(len(line[i]) for line in rendered))
            for i, column in enumerate(columns)
        ]
        header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
        divider = "  ".join("-" * w for w in widths)
        body = ["  ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in rendered]
        return "\n".join([f"=== {self.name} ({len(rows)} points) ===", header, divider, *body])

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """The whole report as JSON (parameters + metrics per point)."""
        return json.dumps({"name": self.name, "points": self.rows()}, indent=indent)

    def speedup_table(
        self,
        metric: str = "completed_firings",
        *,
        baseline: int = 0,
        lower_is_better: Optional[bool] = None,
    ) -> List[Dict[str, Any]]:
        """Each point's *metric* normalised against the *baseline* point.

        For a sweep over ``BoundedProcessors(n)`` with ``completed_firings``
        (throughput under a fixed simulated duration) or ``makespan``
        (smaller is better) this is the Fig. 4 speedup curve.

        ``lower_is_better`` states the metric's direction: when True the
        speedup is ``baseline / value`` (a halved makespan is a 2x speedup),
        when False it is ``value / baseline``.  The default infers True only
        for the ``"makespan"`` metric; pass it explicitly for any other
        time-like metric (latency, wall time, ...).
        """
        if lower_is_better is None:
            lower_is_better = metric == "makespan"
        values = self.column(metric)
        base = values[baseline] if values else None
        table: List[Dict[str, Any]] = []
        for result, value in zip(self.results, values):
            if not result.ok or value in (None, 0) or base in (None, 0):
                speedup = None
            elif lower_is_better:
                speedup = float(base) / float(value)
            else:
                speedup = float(value) / float(base)
            entry = {k: _json_safe(v) for k, v in result.params.items()}
            entry[metric] = _json_safe(value)
            entry["speedup"] = None if speedup is None else round(speedup, 6)
            table.append(entry)
        return table


def _render_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


class Sweep:
    """A parameter-grid batch of simulations (or callable scenarios).

    Parameters
    ----------
    app:
        Name of a packaged application (``Program.from_app``).  Mutually
        exclusive with *program*.
    program:
        A ready-made :class:`~repro.api.program.Program`; the grid may then
        only contain run axes (there is nothing to recompile).
    duration:
        Default simulated duration per point (overridable via a
        ``"duration"`` axis).
    base:
        Parameter values shared by every point (program or run parameters).
    grid:
        Initial axes, equivalent to calling :meth:`add_axis` per entry.
    """

    def __init__(
        self,
        app: Optional[str] = None,
        *,
        program: Optional[Program] = None,
        duration: RationalLike = Fraction(1),
        base: Optional[Mapping[str, Any]] = None,
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
        name: Optional[str] = None,
    ) -> None:
        if app is not None and program is not None:
            raise ValueError("pass either app= or program=, not both")
        self._app = app
        self._program = program
        self._runner: Optional[Callable[..., Mapping[str, Any]]] = None
        self.duration = as_rational(duration)
        self.base: Dict[str, Any] = dict(base or {})
        self.axes: Dict[str, List[Any]] = {}
        self.name = name or (app or (program.name if program else "sweep"))
        for axis, values in (grid or {}).items():
            self.add_axis(axis, values)

    @classmethod
    def from_callable(
        cls,
        runner: Callable[..., Mapping[str, Any]],
        *,
        base: Optional[Mapping[str, Any]] = None,
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
        name: str = "sweep",
    ) -> "Sweep":
        """A sweep whose points call ``runner(**params)`` and aggregate the
        returned metric mapping -- for engine-level scenarios (synthetic task
        fleets, scheduler experiments) that have no OIL program."""
        sweep = cls(name=name, base=base, grid=grid)
        sweep._runner = runner
        return sweep

    # ---------------------------------------------------------------- axes
    def add_axis(self, name: str, values: Sequence[Any]) -> "Sweep":
        """Add a grid axis (fluent).  Later axes vary fastest."""
        values = list(values)
        if not values:
            raise ValueError(f"axis {name!r} needs at least one value")
        self.axes[name] = values
        return self

    def points(self) -> List[Dict[str, Any]]:
        """The expanded grid in cartesian-product order (base + axes)."""
        if not self.axes:
            return [dict(self.base)]
        names = list(self.axes)
        combos = itertools.product(*(self.axes[name] for name in names))
        return [{**self.base, **dict(zip(names, combo))} for combo in combos]

    # ----------------------------------------------------------------- run
    def _split(self, params: Mapping[str, Any]) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        program_params = {k: v for k, v in params.items() if k not in RUN_AXES}
        run_params = {k: v for k, v in params.items() if k in RUN_AXES}
        return program_params, run_params

    def _analyses(self, points: Sequence[Mapping[str, Any]]) -> Dict[Tuple, Analysis]:
        """Compile + analyse each distinct program exactly once (serially --
        compilation is the shared part the workers must not repeat).

        The lazy :class:`Analysis` caches are forced here, *before* the
        fan-out: workers only read the shared analysis, they never race to
        compute it (buffer sizing mutates the model's buffer parameters while
        it searches, so it must not run concurrently on one model).
        """
        analyses: Dict[Tuple, Analysis] = {}
        for params in points:
            program_params, _ = self._split(params)
            key = _program_key(program_params)
            if key in analyses:
                continue
            if self._program is not None:
                if program_params:
                    raise ValueError(
                        f"sweep over a ready-made program accepts only run axes "
                        f"{RUN_AXES}; got program axes {sorted(program_params)}"
                    )
                analysis = self._program.analyze()
            elif self._app is not None:
                analysis = Program.from_app(self._app, **program_params).analyze()
            else:
                raise ValueError(
                    "this sweep has no program: construct it with app=, "
                    "program= or Sweep.from_callable(...)"
                )
            analysis.consistency, analysis.sizing, analysis.latency  # force caches
            analyses[key] = analysis
        return analyses

    def _run_point(
        self,
        index: int,
        params: Dict[str, Any],
        analyses: Dict[Tuple, Analysis],
        keep_runs: bool,
    ) -> SweepResult:
        try:
            if self._runner is not None:
                metrics = dict(self._runner(**params))
                return SweepResult(index=index, params=params, metrics=metrics)
            program_params, run_params = self._split(params)
            analysis = analyses[_program_key(program_params)]
            duration = as_rational(run_params.pop("duration", self.duration))
            # Policies are stateful (busy counts, schedule positions): give
            # every point its own copy so parallel points cannot interact.
            if run_params.get("scheduler") is not None:
                run_params["scheduler"] = copy.deepcopy(run_params["scheduler"])
            run = analysis.run(duration, **run_params)
            metrics = {
                "consistent": analysis.consistent,
                "total_capacity": analysis.total_capacity,
                **run.metrics(),
            }
            return SweepResult(
                index=index,
                params=params,
                metrics=metrics,
                run=run if keep_runs else None,
            )
        except Exception as error:  # a failed point must not sink the batch
            return SweepResult(
                index=index,
                params=params,
                ok=False,
                error=f"{type(error).__name__}: {error}",
            )

    def run(self, *, workers: int = 1, keep_runs: bool = True) -> SweepReport:
        """Execute every grid point and aggregate a :class:`SweepReport`.

        ``workers > 1`` fans the points out over a thread pool; results are
        aggregated by point index, so the report is identical to a serial
        run.

        ``keep_runs=False`` drops each point's full :class:`RunResult`
        (simulation state, complete trace, sink sample lists) once its flat
        metric row is extracted -- use it for large grids, where retaining
        every simulation for the report's lifetime multiplies memory by the
        point count.  Tables, JSON and speedup curves only need the metrics.
        """
        check_positive(workers, "workers")
        points = self.points()
        analyses = self._analyses(points) if self._runner is None else {}
        if workers == 1 or len(points) <= 1:
            results = [
                self._run_point(index, params, analyses, keep_runs)
                for index, params in enumerate(points)
            ]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(
                    pool.map(
                        lambda item: self._run_point(item[0], item[1], analyses, keep_runs),
                        enumerate(points),
                    )
                )
        return SweepReport(results, name=self.name)
