"""repro.api -- the unified front door of the reproduction.

A layered facade over the full OIL pipeline (parse -> task graphs -> CTA
model -> analyses -> discrete-event execution) plus a batched sweep runner
for parameter-grid scenario studies:

* :class:`Program` -- build from OIL source (:meth:`Program.from_source`) or
  from a packaged application (:meth:`Program.from_app`),
* :class:`Analysis` -- ``program.analyze()``: consistency / achievable
  rates, buffer capacities, latency checks as one structured, lazy object,
* :class:`RunResult` -- ``analysis.run(duration, scheduler=...)``: trace
  summary, deadline misses, sink samples, measured rates and the
  occupancy-vs-capacity validation,
* :class:`Sweep` / :class:`SweepReport` -- parameter grids (frequency
  scales, processor counts, rates, mode schedules) with shared compilation,
  parallel workers (``executor="thread"`` or true multi-core
  ``executor="process"`` via picklable :class:`ProgramSpec` shipping) and
  tabular/JSON aggregation.

The three-line happy path::

    from repro.api import Program
    analysis = Program.from_app("pal_decoder", scale=1000).analyze()
    print(analysis.run(2).summary())

and the scenario-sweep counterpart::

    from repro.api import Sweep
    from repro.engine import BoundedProcessors
    report = (Sweep("pal_decoder", duration=0.25)
              .add_axis("scheduler", [BoundedProcessors(n) for n in (1, 2, 3, 4)])
              .run(workers=2))
    print(report.table())
"""

from repro.api.apps import AppSpec, app_spec, available_apps, build_app, register_app
from repro.api.program import Analysis, Program, RunResult
from repro.api.spec import ProgramSpec, SweepConfigError
from repro.api.sweep import EXECUTORS, RUN_AXES, Sweep, SweepReport, SweepResult

__all__ = [
    "Analysis",
    "AppSpec",
    "EXECUTORS",
    "Program",
    "ProgramSpec",
    "RunResult",
    "RUN_AXES",
    "Sweep",
    "SweepConfigError",
    "SweepReport",
    "SweepResult",
    "app_spec",
    "available_apps",
    "build_app",
    "register_app",
]
