"""Picklable program specifications -- rebuild recipes for worker processes.

A :class:`~repro.api.program.Program` is deliberately rich: it carries a
function-registry *factory*, a stimulus *factory*, black-box declarations and
a compilation cache.  Those parts frequently close over DSP state or bound
methods, so a Program as a whole cannot be shipped to another process.  What
*can* be shipped is the recipe it was built from: an app name plus its
parameter bindings, or OIL source text plus its construction keywords.

:class:`ProgramSpec` is exactly that recipe, as a frozen dataclass whose
fields are plain data.  ``spec.build()`` reconstructs an equivalent Program
in whichever process unpickled the spec; the reconstruction re-runs the same
app builder (or ``Program.from_source``) the original construction ran, so
registries and signal generators are created natively on the worker side and
never cross a process boundary.  This is what makes
``Sweep.run(executor="process")`` possible: the parent sends specs, the
workers compile locally (once per distinct spec, cached), and only flat
metric rows travel back.

Two construction paths:

* :meth:`ProgramSpec.from_app` -- an app name plus keyword bindings, the
  common case for sweeps (``Sweep("pal_decoder")`` grid points).
* :meth:`ProgramSpec.from_program` -- recover the recipe from an existing
  Program.  App-built programs (``Program.from_app`` stamps ``program.app`` /
  ``program.app_params``) round-trip exactly; source-built programs carry
  their construction keywords, which must themselves be picklable (module
  level registry factories yes, closures no).  Programs wrapped around
  pre-computed compilations (``Analysis.from_parts``) have no recipe and
  raise :class:`SweepConfigError`.

A spec being *constructible* and being *picklable* are separate questions:
construction always captures the recipe, while :meth:`ProgramSpec.ensure_picklable`
performs the actual ``pickle.dumps`` probe and raises a
:class:`SweepConfigError` naming the spec when some captured part (a lambda
registry factory, an open file in the params, ...) cannot travel.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.api.program import Program, TimeBaseLike


class SweepConfigError(ValueError):
    """A sweep/spec configuration that cannot do what was asked of it.

    Raised when the process executor is asked to ship something pickle
    cannot represent (an unpicklable program-axis value, a closure-based
    registry factory, a recipe-less precompiled program) and the caller
    requested strict behaviour instead of the thread-backend fallback.
    """


@dataclass(frozen=True)
class ProgramSpec:
    """A picklable recipe that rebuilds one :class:`Program` anywhere.

    Exactly one of ``app`` / ``source`` is set.  ``params`` holds the
    parameter bindings as a sorted tuple of ``(name, value)`` pairs so specs
    with equal bindings compare and hash equal regardless of keyword order.
    """

    #: canonical app-catalogue name (``Program.from_app`` path), or None
    app: Optional[str] = None
    #: OIL source text (``Program.from_source`` path), or None
    source: Optional[str] = None
    #: parameter bindings: app builder kwargs, or ``Program.params`` echoes
    params: Tuple[Tuple[str, Any], ...] = ()
    #: the run's default time representation; None means "builder's choice"
    time_base: Optional[TimeBaseLike] = None
    #: the program's default execution platform (plain picklable data);
    #: None means "builder's choice" (virtual unbounded hardware)
    platform: Any = None
    name: str = "program"
    #: remaining ``Program.from_source`` keywords (source path only)
    function_wcets: Tuple[Tuple[str, Any], ...] = ()
    black_boxes: Tuple[Any, ...] = ()
    default_wcet: Any = 0
    top: Optional[str] = None
    registry: Any = None
    signals: Any = None
    mode_schedules: Any = None

    def __post_init__(self) -> None:
        if (self.app is None) == (self.source is None):
            raise SweepConfigError(
                "a ProgramSpec needs exactly one of app= or source="
            )

    # ----------------------------------------------------------- constructors
    @classmethod
    def from_app(
        cls,
        app: str,
        *,
        time_base: Optional[TimeBaseLike] = None,
        platform: Any = None,
        **params: Any,
    ) -> "ProgramSpec":
        """The spec of ``Program.from_app(app, **params)``.

        The name is canonicalised (and validated) against the app catalogue
        immediately, so a typo fails in the parent process with the usual
        "unknown app" message rather than inside a worker.
        """
        from repro.api.apps import app_spec

        resolved = app_spec(app)
        resolved.check_params(params)
        return cls(
            app=resolved.name,
            name=resolved.name,
            params=tuple(sorted(params.items())),
            time_base=time_base,
            platform=platform,
        )

    @classmethod
    def from_program(cls, program: Program) -> "ProgramSpec":
        """Recover the recipe an existing Program was built from."""
        if program.app is not None:
            return cls(
                app=program.app,
                name=program.name,
                params=tuple(sorted(program.app_params.items())),
                time_base=program.time_base,
                platform=program.platform,
            )
        if not program.source:
            raise SweepConfigError(
                f"program {program.name!r} was wrapped around a pre-computed "
                f"compilation (no source text, no app name): it cannot be "
                f"rebuilt in a worker process"
            )
        return cls(
            source=program.source,
            name=program.name,
            params=tuple(sorted(program.params.items())),
            time_base=program.time_base,
            platform=program.platform,
            function_wcets=tuple(sorted(program.function_wcets.items())),
            black_boxes=tuple(program.black_boxes),
            default_wcet=program.default_wcet,
            top=program.top,
            registry=program.make_registry,
            signals=program.make_signals,
            mode_schedules=program.mode_schedules,
        )

    # ----------------------------------------------------------------- build
    def build(self) -> Program:
        """Reconstruct an equivalent (freshly compiled) Program."""
        if self.app is not None:
            from repro.api.apps import build_app

            program = build_app(self.app, **dict(self.params))
        else:
            program = Program.from_source(
                self.source or "",
                name=self.name,
                function_wcets=dict(self.function_wcets),
                black_boxes=self.black_boxes,
                default_wcet=self.default_wcet,
                top=self.top,
                registry=self.registry,
                signals=self.signals,
                mode_schedules=self.mode_schedules,
                params=dict(self.params),
            )
        if self.time_base is not None:
            program.time_base = self.time_base
        if self.platform is not None:
            program.platform = self.platform
        return program

    # ----------------------------------------------------------- validation
    def ensure_picklable(self) -> bytes:
        """The spec's pickle bytes, or a :class:`SweepConfigError` naming it.

        The probe is the real test the process executor needs: everything the
        spec captured -- parameter values, black boxes, registry/signal
        factories -- must survive ``pickle.dumps`` to reach a worker.
        """
        try:
            return pickle.dumps(self)
        except Exception as error:
            raise SweepConfigError(
                f"program spec {self.name!r} is not picklable and cannot be "
                f"shipped to a worker process: {type(error).__name__}: {error}"
            ) from error

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        origin = f"app={self.app!r}" if self.app is not None else "source=..."
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"ProgramSpec({origin}{', ' + rendered if rendered else ''})"
