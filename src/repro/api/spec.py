"""Picklable program specifications -- rebuild recipes for worker processes.

A :class:`~repro.api.program.Program` is deliberately rich: it carries a
function-registry *factory*, a stimulus *factory*, black-box declarations and
a compilation cache.  Those parts frequently close over DSP state or bound
methods, so a Program as a whole cannot be shipped to another process.  What
*can* be shipped is the recipe it was built from: an app name plus its
parameter bindings, or OIL source text plus its construction keywords.

:class:`ProgramSpec` is exactly that recipe, as a frozen dataclass whose
fields are plain data.  ``spec.build()`` reconstructs an equivalent Program
in whichever process unpickled the spec; the reconstruction re-runs the same
app builder (or ``Program.from_source``) the original construction ran, so
registries and signal generators are created natively on the worker side and
never cross a process boundary.  This is what makes
``Sweep.run(executor="process")`` possible: the parent sends specs, the
workers compile locally (once per distinct spec, cached), and only flat
metric rows travel back.

Two construction paths:

* :meth:`ProgramSpec.from_app` -- an app name plus keyword bindings, the
  common case for sweeps (``Sweep("pal_decoder")`` grid points).
* :meth:`ProgramSpec.from_program` -- recover the recipe from an existing
  Program.  App-built programs (``Program.from_app`` stamps ``program.app`` /
  ``program.app_params``) round-trip exactly; source-built programs carry
  their construction keywords, which must themselves be picklable (module
  level registry factories yes, closures no).  Programs wrapped around
  pre-computed compilations (``Analysis.from_parts``) have no recipe and
  raise :class:`SweepConfigError`.

A spec being *constructible* and being *picklable* are separate questions:
construction always captures the recipe, while :meth:`ProgramSpec.ensure_picklable`
performs the actual ``pickle.dumps`` probe and raises a
:class:`SweepConfigError` naming the spec when some captured part (a lambda
registry factory, an open file in the params, ...) cannot travel.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pickle
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.api.program import Program, TimeBaseLike


# --------------------------------------------------------------------------
# Stable content digests.
#
# The sweep dedup key (`repro.api.sweep._program_key`) compares by pickle
# bytes, which is sound *within* one sweep run but useless as a persistent
# identity: pickle serialises sets in hash-iteration order, which varies with
# PYTHONHASHSEED, so the same value can produce different bytes in different
# processes.  The content-addressed result store needs the opposite property
# -- the same value must digest identically in every process, on every run,
# on every host -- so digests are computed over a *canonical* recursive
# encoding instead and hashed with sha256.
# --------------------------------------------------------------------------


def _sort_key(encoded: Any) -> str:
    """A total order over canonical encodings (JSON render, deterministic)."""
    return json.dumps(encoded, sort_keys=True, separators=(",", ":"))


def _canonical(value: Any) -> Any:
    """*value* as a nested JSON-native structure with deterministic order.

    Containers are tagged so structurally different values can never encode
    equal (``True`` vs ``1``, ``"1"`` vs ``1`` are distinct under JSON
    already; floats go through ``repr`` for exact round-trip identity;
    ``list`` and ``tuple`` deliberately share a tag -- equal contents build
    the same program).  Sets and mapping items are sorted by their canonical
    JSON render, so hash-iteration order -- the thing that makes pickle
    bytes unstable across processes -- never reaches the digest.

    Objects encode as class qualname + canonical instance state: dataclass
    fields, or ``vars()`` for plain classes (covers scheduler policies,
    platforms, time bases).  Functions and classes encode by module+qualname,
    mirroring how pickle ships them by reference.  Anything else falls back
    to ``repr`` -- a default repr embeds the instance id, which digests
    differently every run and therefore only ever causes cache *misses*,
    never wrong hits.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return ["float", repr(value)]
    if isinstance(value, Fraction):
        return ["fraction", value.numerator, value.denominator]
    if isinstance(value, (bytes, bytearray)):
        return ["bytes", bytes(value).hex()]
    if isinstance(value, Mapping):
        items = [[_canonical(k), _canonical(v)] for k, v in value.items()]
        return ["map", sorted(items, key=lambda item: _sort_key(item[0]))]
    if isinstance(value, (list, tuple)):
        return ["seq", [_canonical(item) for item in value]]
    if isinstance(value, (set, frozenset)):
        return ["set", sorted((_canonical(item) for item in value), key=_sort_key)]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        state = {f.name: getattr(value, f.name) for f in dataclasses.fields(value)}
        qualname = f"{type(value).__module__}.{type(value).__qualname__}"
        return ["obj", qualname, _canonical(state)]
    if isinstance(value, type) or callable(value):
        module = getattr(value, "__module__", None)
        qualname = getattr(value, "__qualname__", None)
        if module is not None and qualname is not None and "<locals>" not in qualname:
            return ["ref", module, qualname]
    state = getattr(value, "__dict__", None)
    if state is not None:
        qualname = f"{type(value).__module__}.{type(value).__qualname__}"
        return ["obj", qualname, _canonical(state)]
    return ["repr", type(value).__qualname__, repr(value)]


def stable_digest(value: Any) -> str:
    """A process-stable sha256 hex digest of *value* by content.

    Equal values digest equal in every process (no PYTHONHASHSEED
    dependence, no pickle memo effects); unequal values digest unequal up
    to the documented collapses of :func:`_canonical` (list vs tuple).
    This is the identity the sweep service stores results under.
    """
    rendered = _sort_key(_canonical(value))
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


class SweepConfigError(ValueError):
    """A sweep/spec configuration that cannot do what was asked of it.

    Raised when the process executor is asked to ship something pickle
    cannot represent (an unpicklable program-axis value, a closure-based
    registry factory, a recipe-less precompiled program) and the caller
    requested strict behaviour instead of the thread-backend fallback.
    """


@dataclass(frozen=True)
class ProgramSpec:
    """A picklable recipe that rebuilds one :class:`Program` anywhere.

    Exactly one of ``app`` / ``source`` is set.  ``params`` holds the
    parameter bindings as a sorted tuple of ``(name, value)`` pairs so specs
    with equal bindings compare and hash equal regardless of keyword order.
    """

    #: canonical app-catalogue name (``Program.from_app`` path), or None
    app: Optional[str] = None
    #: OIL source text (``Program.from_source`` path), or None
    source: Optional[str] = None
    #: parameter bindings: app builder kwargs, or ``Program.params`` echoes
    params: Tuple[Tuple[str, Any], ...] = ()
    #: the run's default time representation; None means "builder's choice"
    time_base: Optional[TimeBaseLike] = None
    #: the program's default execution platform (plain picklable data);
    #: None means "builder's choice" (virtual unbounded hardware)
    platform: Any = None
    name: str = "program"
    #: remaining ``Program.from_source`` keywords (source path only)
    function_wcets: Tuple[Tuple[str, Any], ...] = ()
    black_boxes: Tuple[Any, ...] = ()
    default_wcet: Any = 0
    top: Optional[str] = None
    registry: Any = None
    signals: Any = None
    mode_schedules: Any = None

    def __post_init__(self) -> None:
        if (self.app is None) == (self.source is None):
            raise SweepConfigError(
                "a ProgramSpec needs exactly one of app= or source="
            )

    # ----------------------------------------------------------- constructors
    @classmethod
    def from_app(
        cls,
        app: str,
        *,
        time_base: Optional[TimeBaseLike] = None,
        platform: Any = None,
        **params: Any,
    ) -> "ProgramSpec":
        """The spec of ``Program.from_app(app, **params)``.

        The name is canonicalised (and validated) against the app catalogue
        immediately, so a typo fails in the parent process with the usual
        "unknown app" message rather than inside a worker.
        """
        from repro.api.apps import app_spec

        resolved = app_spec(app)
        resolved.check_params(params)
        return cls(
            app=resolved.name,
            name=resolved.name,
            params=tuple(sorted(params.items())),
            time_base=time_base,
            platform=platform,
        )

    @classmethod
    def from_program(cls, program: Program) -> "ProgramSpec":
        """Recover the recipe an existing Program was built from."""
        if program.app is not None:
            return cls(
                app=program.app,
                name=program.name,
                params=tuple(sorted(program.app_params.items())),
                time_base=program.time_base,
                platform=program.platform,
            )
        if not program.source:
            raise SweepConfigError(
                f"program {program.name!r} was wrapped around a pre-computed "
                f"compilation (no source text, no app name): it cannot be "
                f"rebuilt in a worker process"
            )
        return cls(
            source=program.source,
            name=program.name,
            params=tuple(sorted(program.params.items())),
            time_base=program.time_base,
            platform=program.platform,
            function_wcets=tuple(sorted(program.function_wcets.items())),
            black_boxes=tuple(program.black_boxes),
            default_wcet=program.default_wcet,
            top=program.top,
            registry=program.make_registry,
            signals=program.make_signals,
            mode_schedules=program.mode_schedules,
        )

    # ----------------------------------------------------------------- build
    def build(self) -> Program:
        """Reconstruct an equivalent (freshly compiled) Program."""
        if self.app is not None:
            from repro.api.apps import build_app

            program = build_app(self.app, **dict(self.params))
        else:
            program = Program.from_source(
                self.source or "",
                name=self.name,
                function_wcets=dict(self.function_wcets),
                black_boxes=self.black_boxes,
                default_wcet=self.default_wcet,
                top=self.top,
                registry=self.registry,
                signals=self.signals,
                mode_schedules=self.mode_schedules,
                params=dict(self.params),
            )
        if self.time_base is not None:
            program.time_base = self.time_base
        if self.platform is not None:
            program.platform = self.platform
        return program

    def digest(self) -> str:
        """The spec's stable content digest (see :func:`stable_digest`).

        Equal recipes -- same app/source, same parameter bindings, same time
        base and platform -- digest equal in every process and across runs,
        which is what lets the sweep service's content-addressed store
        answer repeated grids without rebuilding anything.  Unlike
        :meth:`ensure_picklable` this never touches pickle, so it works (and
        stays stable) even for specs that cannot ship to workers.
        """
        return stable_digest(self)

    # ----------------------------------------------------------- validation
    def ensure_picklable(self) -> bytes:
        """The spec's pickle bytes, or a :class:`SweepConfigError` naming it.

        The probe is the real test the process executor needs: everything the
        spec captured -- parameter values, black boxes, registry/signal
        factories -- must survive ``pickle.dumps`` to reach a worker.
        """
        try:
            return pickle.dumps(self)
        except Exception as error:
            raise SweepConfigError(
                f"program spec {self.name!r} is not picklable and cannot be "
                f"shipped to a worker process: {type(error).__name__}: {error}"
            ) from error

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        origin = f"app={self.app!r}" if self.app is not None else "source=..."
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"ProgramSpec({origin}{', ' + rendered if rendered else ''})"
