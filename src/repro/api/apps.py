"""Catalogue of the packaged applications, exposed through the facade.

Every application the reproduction ships (:mod:`repro.apps`) registers a
builder here, so ``Program.from_app(name, **params)`` is the single front
door to all of them:

========================  ==================================================
name (aliases)            application
========================  ==================================================
``quickstart``            2:1 downsampling pipeline (the examples' hello
(``producer_consumer``)   world): 2 kHz sensor -> averager -> 1 kHz log
``pal_decoder``           the PAL video decoder case study (Sec. VI,
                          Figs. 11/12)
``rate_converter``        the Fig. 2 cyclic rate converter (init prefix +
(``fig2``)                3:2 rate-converting loop tasks)
``modal_mute``            audio pipeline with an if/else mute mode inside
                          one loop (Fig. 4 pattern)
``modal_two_mode``        calibration/processing while-loop modes
                          (Fig. 3 / Fig. 9 pattern)
========================  ==================================================

Builders live in the application modules themselves (``*_program``
functions) and are imported lazily, so ``import repro.api`` stays cheap and
adding an application is a one-line :func:`register_app` call.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from repro.api.program import Program


@dataclass(frozen=True)
class AppSpec:
    """One packaged application: where its builder lives and what it takes."""

    name: str
    #: ``"module:function"`` of the builder returning a :class:`Program`
    builder: str
    description: str
    #: accepted keyword parameters (documentation + early error messages)
    params: Tuple[str, ...] = ()
    aliases: Tuple[str, ...] = ()

    def check_params(self, params: Mapping[str, Any]) -> None:
        """Reject unknown builder parameters with an early, named error."""
        unknown = sorted(set(params) - set(self.params))
        if unknown:
            raise TypeError(
                f"app {self.name!r} does not accept parameter(s) {unknown}; "
                f"accepted: {sorted(self.params)}"
            )

    def build(self, **params: Any) -> Program:
        self.check_params(params)
        module_name, function_name = self.builder.split(":")
        builder = getattr(importlib.import_module(module_name), function_name)
        program = builder(**params)
        # Provenance for ProgramSpec/process sweeps: the canonical name plus
        # the *exact* invocation kwargs (builders record derived parameters in
        # ``program.params``, which may omit e.g. a custom signal object --
        # the spec must replay the call, not the echo).
        program.app = self.name
        program.app_params = dict(params)
        return program


_REGISTRY: Dict[str, AppSpec] = {}
_ALIASES: Dict[str, str] = {}


def register_app(spec: AppSpec) -> AppSpec:
    """Register *spec* (and its aliases) in the catalogue."""
    _REGISTRY[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name
    return spec


def available_apps() -> List[AppSpec]:
    """The registered applications, in registration order."""
    return list(_REGISTRY.values())


def app_spec(name: str) -> AppSpec:
    canonical = _ALIASES.get(name, name)
    if canonical not in _REGISTRY:
        known = sorted(set(_REGISTRY) | set(_ALIASES))
        raise KeyError(f"unknown app {name!r}; available: {known}")
    return _REGISTRY[canonical]


def build_app(name: str, **params: Any) -> Program:
    """Build the named application's :class:`Program` (``Program.from_app``)."""
    return app_spec(name).build(**params)


register_app(
    AppSpec(
        name="quickstart",
        builder="repro.apps.producer_consumer:quickstart_program",
        description="2:1 downsampling pipeline: 2 kHz sensor -> averager -> 1 kHz log",
        params=("utilisation", "signal"),
        aliases=("producer_consumer",),
    )
)
register_app(
    AppSpec(
        name="pal_decoder",
        builder="repro.apps.pal_decoder:pal_program",
        description="PAL video decoder case study (Sec. VI, Figs. 11/12)",
        params=("scale", "utilisation", "signal", "mute_threshold"),
    )
)
register_app(
    AppSpec(
        name="rate_converter",
        builder="repro.apps.rate_converter:fig2_program",
        description="Fig. 2 cyclic rate converter (init prefix + 3:2 loop tasks)",
        params=("initial_tokens", "f_wcet", "g_wcet"),
        aliases=("fig2",),
    )
)
register_app(
    AppSpec(
        name="modal_mute",
        builder="repro.apps.modal_audio:mute_program",
        description="audio pipeline with an if/else mute mode (Fig. 4 pattern)",
        params=("utilisation", "signal"),
    )
)
register_app(
    AppSpec(
        name="modal_two_mode",
        builder="repro.apps.modal_audio:two_mode_program",
        description="calibration/processing while-loop modes (Fig. 3 / Fig. 9 pattern)",
        params=("utilisation", "signal", "mode_schedule"),
    )
)
