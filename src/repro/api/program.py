"""The layered facade over the OIL pipeline: Program -> Analysis -> RunResult.

Every stage of the reproduction -- parsing, CTA derivation, consistency,
buffer sizing, latency verification, discrete-event execution -- has a
dedicated module, and before this facade every application re-implemented the
same glue (``compile_*`` / ``size_buffers`` / ``simulate_*``).  The three
classes here are that glue, written once:

* :class:`Program` -- an OIL program plus everything needed to analyse and
  execute it (response times, black boxes, a function-registry factory, a
  stimulus factory).  Build one with :meth:`Program.from_source` or
  :meth:`Program.from_app` (the packaged applications).
* :class:`Analysis` -- the structured result of ``program.analyze()``:
  consistency / achievable rates, buffer capacities, latency checks, all
  computed lazily and exactly once.
* :class:`RunResult` -- the structured result of ``analysis.run(duration)``:
  the trace, deadline misses, sink samples, measured rates and the
  occupancy-vs-capacity validation the paper's claims rest on.

The canonical three lines::

    from repro.api import Program
    analysis = Program.from_app("pal_decoder", scale=1000).analyze()
    result = analysis.run(Fraction(2))

Factories, not instances
------------------------
Coordinated functions may be stateful (filter delay lines, oscillator
phases), so a :class:`Program` stores a registry *factory* and a stimulus
*factory*: every run gets fresh state and two runs of the same program --
also concurrent ones inside a :class:`~repro.api.sweep.Sweep` -- never share
mutable state.  Passing a ready-made
:class:`~repro.runtime.functions.FunctionRegistry` instance is still allowed
for stateless registries; it is then shared by all runs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.compiler import CompilationResult, compile_program
from repro.cta.buffer_sizing import BufferSizingResult
from repro.cta.consistency import ConsistencyResult
from repro.cta.latency import LatencyCheck
from repro.engine.policies import SchedulerPolicy
from repro.lang.semantics import BlackBoxModule
from repro.platform.model import Platform
from repro.runtime.functions import FunctionRegistry
from repro.runtime.simulator import ModeSchedule, Simulation
from repro.runtime.trace import TraceRecorder
from repro.util.rational import Rat, RationalLike, TimeBase, as_rational

#: A time-base selector: ``"auto"`` / ``"ticks"`` / ``"fraction"`` or a ready
#: :class:`~repro.util.rational.TimeBase` (see
#: :class:`~repro.runtime.simulator.Simulation`).
TimeBaseLike = Union[str, TimeBase]

#: A registry argument: a ready instance (shared) or a zero-argument factory.
RegistryLike = Union[FunctionRegistry, Callable[[], FunctionRegistry]]
#: A stimulus argument: a name -> signal mapping or a factory producing one.
SignalsLike = Union[Mapping[str, Any], Callable[[], Dict[str, Any]]]


class SharedRegistry:
    """A registry "factory" that hands out one shared instance.

    Used when the caller passes a ready-made :class:`FunctionRegistry`: every
    run then shares it, which is only safe for stateless registries (the
    documented contract).  A class rather than ``lambda: registry`` so the
    wrapper -- and with it the enclosing :class:`Program` spec -- stays
    picklable whenever the registry itself is.
    """

    def __init__(self, registry: FunctionRegistry) -> None:
        self.registry = registry

    def __call__(self) -> FunctionRegistry:
        return self.registry


class FixedSignals:
    """A stimulus factory that copies one fixed name -> signal mapping.

    Every run gets its own shallow copy of the mapping (the pre-facade
    semantics for plain-dict stimuli); entries exposing ``fresh()``
    (:class:`~repro.runtime.sources.Stimulus`) are rewound per run so
    repeated runs and sweep points draw identical streams instead of
    sharing a mutated position.  A class instead of a closure for the same
    reason as :class:`SharedRegistry`: picklability by value.
    """

    def __init__(self, signals: Mapping[str, Any]) -> None:
        self.signals = dict(signals)

    def __call__(self) -> Dict[str, Any]:
        copied: Dict[str, Any] = {}
        for name, signal in self.signals.items():
            fresh = getattr(signal, "fresh", None)
            copied[name] = fresh() if callable(fresh) else signal
        return copied


def _registry_factory(registry: Optional[RegistryLike]) -> Callable[[], FunctionRegistry]:
    if registry is None:
        return FunctionRegistry
    if isinstance(registry, FunctionRegistry):
        return SharedRegistry(registry)
    return registry


def _signals_factory(signals: Optional[SignalsLike]) -> Callable[[], Dict[str, Any]]:
    if signals is None:
        return dict
    if callable(signals) and not isinstance(signals, Mapping):
        return signals  # type: ignore[return-value]
    return FixedSignals(signals)


class Program:
    """An analysable, executable OIL program -- the facade's entry point.

    Use the constructors: :meth:`from_source` for arbitrary OIL text,
    :meth:`from_app` for the packaged applications (PAL decoder, Fig. 2 rate
    converter, modal pipelines, quickstart).  Compilation is cached; the
    object is immutable apart from that cache, so one :class:`Program` can
    back arbitrarily many (concurrent) runs.
    """

    def __init__(
        self,
        source: str,
        *,
        name: str = "program",
        function_wcets: Optional[Mapping[str, RationalLike]] = None,
        black_boxes: Sequence[BlackBoxModule] = (),
        default_wcet: RationalLike = 0,
        top: Optional[str] = None,
        registry: Optional[RegistryLike] = None,
        signals: Optional[SignalsLike] = None,
        mode_schedules: Optional[ModeSchedule] = None,
        params: Optional[Mapping[str, Any]] = None,
        time_base: TimeBaseLike = "auto",
        platform: Optional[Platform] = None,
    ) -> None:
        self.name = name
        self.source = source
        self.function_wcets = dict(function_wcets or {})
        self.black_boxes = tuple(black_boxes)
        self.default_wcet = default_wcet
        self.top = top
        self.make_registry = _registry_factory(registry)
        self.make_signals = _signals_factory(signals)
        self.mode_schedules: Optional[ModeSchedule] = mode_schedules
        #: default time representation of this program's simulations
        #: (overridable per run); the concrete tick resolution is derived
        #: when a simulation is built from the compiled program
        self.time_base: TimeBaseLike = time_base
        #: default execution platform of this program's simulations
        #: (overridable per run); None = the scheduler's own platform, or
        #: virtual unbounded hardware under the default self-timed policy
        self.platform: Optional[Platform] = platform
        #: the parameters this program was built from (``from_app`` records
        #: them; sweeps and reports echo them back)
        self.params: Dict[str, Any] = dict(params or {})
        #: provenance for :meth:`spec`: the canonical app-catalogue name and
        #: the *exact* builder kwargs, stamped by ``AppSpec.build`` (None /
        #: empty for source-built programs)
        self.app: Optional[str] = None
        self.app_params: Dict[str, Any] = {}
        self._compilation: Optional[CompilationResult] = None
        self._analysis: Optional["Analysis"] = None

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_source(
        cls,
        source: str,
        *,
        name: str = "program",
        function_wcets: Optional[Mapping[str, RationalLike]] = None,
        black_boxes: Sequence[BlackBoxModule] = (),
        default_wcet: RationalLike = 0,
        top: Optional[str] = None,
        registry: Optional[RegistryLike] = None,
        signals: Optional[SignalsLike] = None,
        mode_schedules: Optional[ModeSchedule] = None,
        params: Optional[Mapping[str, Any]] = None,
        time_base: TimeBaseLike = "auto",
        platform: Optional[Platform] = None,
    ) -> "Program":
        """A program from OIL source text plus its execution environment."""
        return cls(
            source,
            name=name,
            function_wcets=function_wcets,
            black_boxes=black_boxes,
            default_wcet=default_wcet,
            top=top,
            registry=registry,
            signals=signals,
            mode_schedules=mode_schedules,
            params=params,
            time_base=time_base,
            platform=platform,
        )

    @classmethod
    def from_app(cls, app: str, **params: Any) -> "Program":
        """One of the packaged applications, by name.

        See :func:`repro.api.apps.available_apps` for the catalogue
        (``"quickstart"``, ``"pal_decoder"``, ``"rate_converter"``,
        ``"modal_mute"``, ``"modal_two_mode"`` and aliases).  ``params`` are
        forwarded to the application's builder (frequency scale, utilisation,
        initial tokens, signals, ...).
        """
        from repro.api.apps import build_app

        return build_app(app, **params)

    def spec(self) -> "ProgramSpec":
        """The picklable rebuild recipe of this program.

        App-built programs round-trip exactly (name + builder kwargs);
        source-built programs capture their construction keywords.  Programs
        wrapped around pre-computed compilations have no recipe and raise
        :class:`~repro.api.spec.SweepConfigError`.  See
        :class:`repro.api.spec.ProgramSpec`.
        """
        from repro.api.spec import ProgramSpec

        return ProgramSpec.from_program(self)

    # ----------------------------------------------------------------- stages
    def compile(self) -> CompilationResult:
        """Parse, validate and derive the CTA model (cached)."""
        if self._compilation is None:
            self._compilation = compile_program(
                self.source,
                function_wcets=self.function_wcets,
                black_boxes=self.black_boxes,
                default_wcet=self.default_wcet,
                top=self.top,
            )
        return self._compilation

    def analyze(self) -> "Analysis":
        """All analyses of the paper as one structured (lazy) object."""
        if self._analysis is None:
            self._analysis = Analysis(self, self.compile())
        return self._analysis

    def run(self, duration: Optional[RationalLike] = None, **kwargs: Any) -> "RunResult":
        """Shortcut for ``self.analyze().run(duration, ...)`` (accepts the
        ``horizon=`` spelling as a keyword, like :meth:`Analysis.run`)."""
        return self.analyze().run(duration, **kwargs)

    def check(self, **kwargs: Any) -> "CheckReport":
        """Shortcut for ``self.analyze().check(...)`` -- the pre-flight rule
        pass of :mod:`repro.rules` (see :meth:`Analysis.check`)."""
        return self.analyze().check(**kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.params.items())
        return f"Program({self.name!r}{', ' + rendered if rendered else ''})"


class Analysis:
    """Structured analysis results of one program.

    Consistency, buffer sizing and latency verification are computed lazily
    and cached, so an :class:`Analysis` can back many runs while paying for
    each analysis exactly once.  Use :meth:`Analysis.from_parts` to wrap
    results that were computed through the lower-level APIs.
    """

    def __init__(
        self,
        program: Program,
        compilation: CompilationResult,
        *,
        sizing: Optional[BufferSizingResult] = None,
        consistency: Optional[ConsistencyResult] = None,
    ) -> None:
        self.program = program
        self.compilation = compilation
        self._sizing = sizing
        self._consistency = consistency
        self._latency: Optional[List[LatencyCheck]] = None

    @classmethod
    def from_parts(
        cls,
        compilation: CompilationResult,
        sizing: Optional[BufferSizingResult] = None,
        *,
        program: Optional[Program] = None,
        registry: Optional[RegistryLike] = None,
        signals: Optional[SignalsLike] = None,
    ) -> "Analysis":
        """Wrap pre-computed lower-level results in the facade (used by the
        deprecated per-app helpers, which accept ``result``/``sizing``)."""
        if program is None:
            program = Program("", name="precompiled", registry=registry, signals=signals)
            program._compilation = compilation
        return cls(program, compilation, sizing=sizing)

    # -------------------------------------------------------------- analyses
    @property
    def consistency(self) -> ConsistencyResult:
        """Consistency / maximal achievable rates (unbounded buffers)."""
        if self._consistency is None:
            self._consistency = self.compilation.check_consistency(
                assume_infinite_unsized=True
            )
        return self._consistency

    @property
    def sizing(self) -> BufferSizingResult:
        """Sufficient buffer capacities (and the consistency proof at them)."""
        if self._sizing is None:
            self._sizing = self.compilation.size_buffers()
        return self._sizing

    @property
    def latency(self) -> List[LatencyCheck]:
        """The program's latency constraints checked against the offsets."""
        if self._latency is None:
            self._latency = self.compilation.verify_latency(self.sizing.consistency)
        return self._latency

    # ------------------------------------------------------------- shortcuts
    @property
    def consistent(self) -> bool:
        return self.consistency.consistent

    @property
    def capacities(self) -> Dict[str, int]:
        return self.sizing.capacities

    @property
    def total_capacity(self) -> int:
        return self.sizing.total_capacity

    @property
    def latency_ok(self) -> bool:
        return all(check.satisfied for check in self.latency)

    def _port_rates(self, ports: Mapping[str, Any]) -> Dict[str, Rat]:
        rates = self.consistency.port_rates
        return {name: rates[port] for name, port in ports.items() if port in rates}

    @property
    def source_rates(self) -> Dict[str, Rat]:
        """Achievable rate (Hz) per declared source."""
        return self._port_rates(self.compilation.source_ports)

    @property
    def sink_rates(self) -> Dict[str, Rat]:
        """Achievable rate (Hz) per declared sink."""
        return self._port_rates(self.compilation.sink_ports)

    def check(
        self,
        *,
        platform: Optional[Platform] = None,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ) -> "CheckReport":
        """Run the pre-flight rules of :mod:`repro.rules` over this program.

        Reuses this analysis' cached results (consistency, sizing, latency)
        -- nothing is re-parsed or re-analysed.  ``platform`` checks
        capacity/affinity against a concrete target (defaulting to the
        program's configured platform); ``select`` / ``ignore`` filter rules
        by category or rule id.  Returns a
        :class:`~repro.rules.runner.CheckReport` whose ``ok`` is True when
        no error-severity violation was found.
        """
        from repro.rules import CheckModel, check_model

        model = CheckModel(self.program, platform=platform, analysis=self)
        return check_model(model, select=select, ignore=ignore)

    def report(self) -> str:
        """The full human-readable analysis report."""
        from repro.core.report import buffer_report, latency_report

        lines = [
            f"=== {self.program.name}: derived CTA model ===",
            self.compilation.model.summary(),
            "",
            f"=== consistency (unbounded buffers): {self.consistent} ===",
        ]
        for name, rate in self.source_rates.items():
            lines.append(f"  source {name}: {float(rate):g} Hz")
        for name, rate in self.sink_rates.items():
            lines.append(f"  sink   {name}: {float(rate):g} Hz")
        lines += ["", "=== buffer sizing ===", buffer_report(self.capacities)]
        if self.compilation.latency_constraints:
            lines += ["", "=== latency constraints ===", latency_report(self.latency)]
        return "\n".join(lines)

    # ------------------------------------------------------------- execution
    def simulation(
        self,
        *,
        scheduler: Optional[SchedulerPolicy] = None,
        platform: Optional[Platform] = None,
        dispatcher: str = "ready-set",
        trace: str = "full",
        mode_schedules: Optional[ModeSchedule] = None,
        registry: Optional[RegistryLike] = None,
        signals: Optional[SignalsLike] = None,
        sink_start_times: Optional[Mapping[str, RationalLike]] = None,
        capacities: Optional[Mapping[str, Optional[int]]] = None,
        time_base: Optional[TimeBaseLike] = None,
        fast_forward: Union[bool, str] = "auto",
        trace_retention: Optional[int] = None,
        kernel: str = "auto",
    ) -> Simulation:
        """A fresh :class:`~repro.runtime.simulator.Simulation` of the program
        with the analysis-derived buffer capacities."""
        program = self.program
        if registry is None:
            built_registry = program.make_registry()
        else:
            built_registry = _registry_factory(registry)()
        if signals is None:
            built_signals = program.make_signals()
        else:
            built_signals = _signals_factory(signals)()
        if platform is None and scheduler is None:
            platform = program.platform
        return Simulation(
            self.compilation,
            built_registry,
            source_signals=built_signals,
            capacities=capacities if capacities is not None else self.sizing.capacities,
            mode_schedules=mode_schedules if mode_schedules is not None else program.mode_schedules,
            sink_start_times=sink_start_times,
            scheduler=scheduler,
            platform=platform,
            dispatcher=dispatcher,
            trace_level=trace,
            time_base=time_base if time_base is not None else program.time_base,
            fast_forward=fast_forward,
            trace_retention=trace_retention,
            kernel=kernel,
        )

    def run(
        self,
        duration: Optional[RationalLike] = None,
        *,
        horizon: Optional[RationalLike] = None,
        scheduler: Optional[SchedulerPolicy] = None,
        platform: Optional[Platform] = None,
        dispatcher: str = "ready-set",
        trace: str = "full",
        mode_schedules: Optional[ModeSchedule] = None,
        registry: Optional[RegistryLike] = None,
        signals: Optional[SignalsLike] = None,
        sink_start_times: Optional[Mapping[str, RationalLike]] = None,
        capacities: Optional[Mapping[str, Optional[int]]] = None,
        time_base: Optional[TimeBaseLike] = None,
        fast_forward: Optional[Union[bool, str]] = None,
        trace_retention: Optional[int] = None,
        kernel: str = "auto",
    ) -> "RunResult":
        """Execute the program for *duration* seconds of simulated time.

        ``scheduler`` selects the scheduling policy
        (:class:`~repro.engine.policies.SelfTimedUnbounded` by default,
        :class:`~repro.engine.policies.BoundedProcessors`,
        :class:`~repro.engine.policies.StaticOrder`, or any platform policy
        from :mod:`repro.platform`); ``platform`` is the
        :class:`~repro.platform.model.Platform` shorthand for that
        platform's default policy (partitioned with an affinity mapping,
        greedy list scheduling otherwise) and is mutually exclusive with
        ``scheduler``.  ``trace`` selects the recording granularity
        (``"full"``, ``"endpoints"``, ``"off"``); ``time_base`` the
        event-queue time representation (``"auto"`` by default: integer
        ticks when the program's -- speed-scaled -- durations fit one, exact
        fractions otherwise, observationally identical either way).

        ``horizon`` is an alternative spelling of *duration* (exactly one of
        the two must be given) that additionally turns on timing-exact
        steady-state ``fast_forward=True`` unless overridden -- the natural
        phrasing of a long run whose event count would be infeasible
        naively.  ``fast_forward`` defaults to ``"auto"`` otherwise:
        programs whose stimuli and functions declare their jump behaviour
        fast-forward *value-exactly* (bit-identical to a naive run), all
        others step naively, recording structured warnings on the
        undeclared paths (see
        :class:`~repro.runtime.simulator.Simulation`).  ``fast_forward`` /
        ``trace_retention`` / ``kernel`` are forwarded to the simulation;
        configurations that cannot fast-forward run naively and record why
        in :attr:`RunResult.warnings`.
        """
        if (duration is None) == (horizon is None):
            raise TypeError("pass exactly one of duration= or horizon=")
        if duration is None:
            duration = horizon
            if fast_forward is None:
                fast_forward = True
        if fast_forward is None:
            fast_forward = "auto"
        simulation = self.simulation(
            scheduler=scheduler,
            platform=platform,
            dispatcher=dispatcher,
            trace=trace,
            mode_schedules=mode_schedules,
            registry=registry,
            signals=signals,
            sink_start_times=sink_start_times,
            capacities=capacities,
            time_base=time_base,
            fast_forward=fast_forward,
            trace_retention=trace_retention,
            kernel=kernel,
        )
        duration = as_rational(duration)
        recorder = simulation.run(duration)
        return RunResult(self, simulation, recorder, duration, scheduler=scheduler)


class RunResult:
    """Structured outcome of one simulated execution."""

    def __init__(
        self,
        analysis: Analysis,
        simulation: Simulation,
        trace: TraceRecorder,
        duration: Rat,
        *,
        scheduler: Optional[SchedulerPolicy] = None,
    ) -> None:
        self.analysis = analysis
        self.simulation = simulation
        self.trace = trace
        self.duration = duration
        self.scheduler = scheduler

    # ------------------------------------------------------------ measurements
    @property
    def deadline_misses(self) -> int:
        """Source overflows + sink underflows (the real-time failures the
        buffer-sizing analysis must exclude)."""
        return self.trace.deadline_miss_count()

    @property
    def completed_firings(self) -> int:
        return self.simulation.engine.completed_firings

    @property
    def makespan(self) -> Rat:
        """Completion time of the last finished firing (exact rational;
        correct at every trace level and time base)."""
        return self.simulation.engine.last_completion_time

    @property
    def time_base(self) -> str:
        """Time representation the run executed with: ``"ticks"`` (integer
        tick counts, converted back to exact rationals at this surface) or
        ``"fraction"``."""
        return "ticks" if self.simulation.time_base is not None else "fraction"

    @property
    def warnings(self) -> List[str]:
        """Execution degradations (fast-forward refusals / give-ups); the
        run itself fell back to exact naive simulation."""
        return list(self.simulation.warnings)

    @property
    def fast_forwarded(self) -> bool:
        """True when at least one steady-state jump actually skipped time."""
        steady = self.simulation.engine.steady_state
        return steady is not None and steady.jumps > 0

    # ---------------------------------------------------- platform accounting
    @property
    def platform(self):
        """The :class:`~repro.platform.model.Platform` the run executed on
        (None under legacy boolean policies)."""
        return self.simulation.platform

    @property
    def processor_busy(self) -> Dict[str, Rat]:
        """Exact busy time per processor in seconds (platform runs only;
        empty otherwise).  Suspended firings stop accruing at the preemption
        instant and continue at the resume."""
        return self.simulation.engine.processor_busy_time

    def processor_utilisation(self) -> Dict[str, float]:
        """Busy fraction of the simulated window per processor."""
        if self.duration <= 0:
            return {name: 0.0 for name in self.processor_busy}
        return {
            name: float(busy / self.duration)
            for name, busy in self.processor_busy.items()
        }

    def processor_energy(self) -> Dict[str, float]:
        """Energy estimate per processor over the simulated window:
        ``busy * power_active + idle * power_idle`` in whatever unit the
        :class:`~repro.platform.model.Processor` power weights were given
        (e.g. Joules for Watts).  Only processors that declare at least one
        power weight appear; a missing weight contributes nothing."""
        if self.platform is None or self.platform.is_unbounded:
            return {}
        busy_times = self.processor_busy
        energy: Dict[str, float] = {}
        for processor in self.platform:
            if processor.power_active is None and processor.power_idle is None:
                continue
            busy = busy_times.get(processor.name, Fraction(0))
            idle = max(self.duration - busy, Fraction(0))
            joules = 0.0
            if processor.power_active is not None:
                joules += float(busy) * processor.power_active
            if processor.power_idle is not None:
                joules += float(idle) * processor.power_idle
            energy[processor.name] = joules
        return energy

    @property
    def preemptions(self) -> int:
        """Number of firings suspended mid-flight by a preemptive policy."""
        return self.simulation.engine.preemptions

    def sink(self, name: str) -> List[Any]:
        """The values the named sink consumed, in order."""
        return self.simulation.sinks[name].consumed

    @property
    def sink_counts(self) -> Dict[str, int]:
        """Values consumed per sink -- the streaming counter, which stays
        exact through fast-forward jumps and trace-retention caps (the
        stored :meth:`sink` lists may be shorter)."""
        return {
            name: driver.consumed_count
            for name, driver in self.simulation.sinks.items()
        }

    @property
    def measured_rates(self) -> Dict[str, Optional[Rat]]:
        """Measured average rate (Hz) per source and sink."""
        names = list(self.simulation.sources) + list(self.simulation.sinks)
        return {name: self.trace.measured_rate(name) for name in names}

    # ------------------------------------------------------------- validation
    def occupancy_violations(self) -> List[str]:
        """Buffers whose observed occupancy exceeded the analysed capacity.

        The central validation of the reproduction: with the capacities the
        CTA buffer-sizing computed, the list must be empty.  Occupancy is
        recorded only at ``trace="full"``; at coarser levels the check is
        vacuously empty.
        """
        violations = []
        for name, mark in sorted(self.trace.buffer_high_water.items()):
            capacity = self.simulation.buffers[name].capacity
            if mark > capacity:
                violations.append(f"{name}: occupancy {mark} > capacity {capacity}")
        return violations

    @property
    def occupancy_ok(self) -> bool:
        return not self.occupancy_violations()

    # -------------------------------------------------------------- reporting
    def metrics(self) -> Dict[str, Any]:
        """The flat metric row sweeps aggregate (JSON-friendly values)."""
        row: Dict[str, Any] = {
            "deadline_misses": self.deadline_misses,
            "completed_firings": self.completed_firings,
            "makespan": float(self.makespan),
            "occupancy_ok": self.occupancy_ok,
            "time_base": self.time_base,
            "fast_forwarded": self.fast_forwarded,
        }
        for name, count in sorted(self.sink_counts.items()):
            row[f"sink_count[{name}]"] = count
        for name, rate in sorted(self.measured_rates.items()):
            row[f"rate[{name}]"] = None if rate is None else float(rate)
        if self.simulation.engine.platform_mode:
            row["preemptions"] = self.preemptions
            # per-processor columns only for concrete platforms; the virtual
            # per-task processors of self-timed mode would flood the table
            if self.platform is not None and not self.platform.is_unbounded:
                for name, utilisation in self.processor_utilisation().items():
                    row[f"util[{name}]"] = round(utilisation, 9)
        return row

    def summary(self) -> str:
        # the engine's policy is always the one that actually ran -- a
        # platform= run builds it internally, so the scheduler kwarg alone
        # would mislabel those runs as self-timed
        policy = (
            self.scheduler if self.scheduler is not None else self.simulation.engine.policy
        )
        lines = [
            f"=== run: {self.program.name}, {float(self.duration):g} s simulated, "
            f"scheduler {policy} ===",
            self.trace.summary(),
            f"deadline violations: {self.deadline_misses}",
        ]
        violations = self.occupancy_violations()
        if violations:
            lines.append("occupancy EXCEEDED analysed capacities:")
            lines.extend(f"  {entry}" for entry in violations)
        elif self.trace.buffer_high_water:
            lines.append("occupancy within analysed capacities for all traced buffers")
        if self.simulation.engine.platform_mode:
            lines.append(f"preemptions: {self.preemptions}")
            # per-processor lines only for concrete platforms (the virtual
            # per-task processors of self-timed mode would just repeat the
            # task list), and only while they fit on a screen
            if self.platform is not None and not self.platform.is_unbounded:
                utilisation = self.processor_utilisation()
                if utilisation and len(utilisation) <= 16:
                    for name, value in utilisation.items():
                        lines.append(f"  {name}: busy {value:.1%} of the simulated window")
        return "\n".join(lines)

    @property
    def program(self) -> Program:
        return self.analysis.program

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunResult({self.program.name!r}, duration={float(self.duration):g}, "
            f"misses={self.deadline_misses}, firings={self.completed_firings})"
        )
