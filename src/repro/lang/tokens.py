"""Token definitions for the OIL lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Optional

from repro.lang.errors import SourceLocation


class TokenType(Enum):
    """Lexical token categories of the OIL language (Fig. 5 plus the
    condition operators the examples use)."""

    # literals and names
    IDENT = auto()
    NUMBER = auto()

    # keywords
    KW_MOD = auto()
    KW_PAR = auto()
    KW_SEQ = auto()
    KW_FIFO = auto()
    KW_SOURCE = auto()
    KW_SINK = auto()
    KW_START = auto()
    KW_AFTER = auto()
    KW_BEFORE = auto()
    KW_LOOP = auto()
    KW_WHILE = auto()
    KW_IF = auto()
    KW_ELSE = auto()
    KW_SWITCH = auto()
    KW_CASE = auto()
    KW_DEFAULT = auto()
    KW_OUT = auto()

    # punctuation
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    SEMICOLON = auto()
    COMMA = auto()
    COLON = auto()
    AT = auto()
    PARALLEL = auto()  # '||' or '‖'

    # operators
    ASSIGN = auto()     # '='
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()      # '/' (the grammar writes '\' which we also accept)
    PERCENT = auto()
    EQ = auto()         # '=='
    NEQ = auto()
    LT = auto()
    LE = auto()
    GT = auto()
    GE = auto()
    AND = auto()        # '&&'
    OR = auto()         # '||' inside expressions is ambiguous with PARALLEL;
                        # OIL uses 'or' / 'and' keywords inside conditions instead
    NOT = auto()        # '!'

    EOF = auto()


#: Reserved words of the language mapped to their token types.
KEYWORDS = {
    "mod": TokenType.KW_MOD,
    "par": TokenType.KW_PAR,
    "seq": TokenType.KW_SEQ,
    "fifo": TokenType.KW_FIFO,
    "source": TokenType.KW_SOURCE,
    "sink": TokenType.KW_SINK,
    "start": TokenType.KW_START,
    "after": TokenType.KW_AFTER,
    "before": TokenType.KW_BEFORE,
    "loop": TokenType.KW_LOOP,
    "while": TokenType.KW_WHILE,
    "if": TokenType.KW_IF,
    "else": TokenType.KW_ELSE,
    "switch": TokenType.KW_SWITCH,
    "case": TokenType.KW_CASE,
    "default": TokenType.KW_DEFAULT,
    "out": TokenType.KW_OUT,
    "and": TokenType.AND,
    "or": TokenType.OR,
    "not": TokenType.NOT,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    type: TokenType
    text: str
    location: SourceLocation
    #: numeric value for NUMBER tokens (int or float)
    value: Optional[object] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.type.name}({self.text!r})@{self.location}"
