"""Pretty printer (unparser) for OIL programs.

Renders an AST back into OIL source text.  The output parses back to an
equivalent AST (modulo source locations), which is exercised by a round-trip
property test; it is also used to emit canonical listings of generated or
programmatically constructed programs (e.g. the PAL decoder used by the
examples and benchmarks).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence

from repro.lang import ast


def _frequency_literal(frequency_hz: Fraction) -> str:
    value = Fraction(frequency_hz)
    for factor, unit in ((Fraction(10**6), "MHz"), (Fraction(10**3), "kHz")):
        scaled = value / factor
        if scaled >= 1:
            return f"{_number(scaled)} {unit}"
    return f"{_number(value)} Hz"


def _time_literal(seconds: Fraction) -> str:
    value = Fraction(seconds)
    for factor, unit in ((Fraction(1), "s"), (Fraction(1, 10**3), "ms"), (Fraction(1, 10**6), "us")):
        scaled = value / factor
        if scaled >= 1 or value == 0:
            if unit == "s" and scaled < 1:
                continue
            if value == 0:
                return "0 ms"
            return f"{_number(scaled)} {unit}"
    return f"{_number(value * 10**9)} ns"


def _number(value) -> str:
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        return str(float(value))
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


class PrettyPrinter:
    """Stateful pretty printer with two-space indentation."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def _emit(self, text: str) -> None:
        self.lines.append("  " * self.indent + text)

    # ------------------------------------------------------------------ nodes
    def print_program(self, program: ast.Program) -> str:
        for i, module in enumerate(program.modules):
            if i:
                self._emit("")
            self.print_module(module)
        return "\n".join(self.lines) + "\n"

    def print_module(self, module: ast.Module) -> None:
        if isinstance(module, ast.ParallelModule):
            self._print_parallel(module)
        else:
            self._print_sequential(module)

    def _params(self, params: Sequence[ast.StreamParam]) -> str:
        rendered = []
        for param in params:
            prefix = "out " if param.is_output else ""
            rendered.append(f"{prefix}{param.type_name} {param.name}")
        return ", ".join(rendered)

    def _print_parallel(self, module: ast.ParallelModule) -> None:
        header = "mod par"
        if module.name != "main" or module.params:
            header += f" {module.name}({self._params(module.params)})"
        self._emit(header + " {")
        self.indent += 1
        for fifo in module.fifos:
            self._emit(f"fifo {fifo.type_name} {fifo.name};")
        for source in module.sources:
            self._emit(
                f"source {source.type_name} {source.name} = {source.function}() @ "
                f"{_frequency_literal(source.frequency_hz)};"
            )
        for sink in module.sinks:
            self._emit(
                f"sink {sink.type_name} {sink.name} = {sink.function}() @ "
                f"{_frequency_literal(sink.frequency_hz)};"
            )
        for constraint in module.latency_constraints:
            self._emit(
                f"start {constraint.subject} {_time_literal(constraint.amount_seconds)} "
                f"{constraint.relation} {constraint.reference};"
            )
        if module.calls:
            rendered_calls = [self._call(call) for call in module.calls]
            self._emit(" ||\n".join(
                ("  " * self.indent + text if i else text)
                for i, text in enumerate(rendered_calls)
            ))
        self.indent -= 1
        self._emit("}")

    def _call(self, call: ast.ModuleCall) -> str:
        rendered = []
        for argument in call.arguments:
            prefix = "out " if argument.is_output else ""
            rendered.append(prefix + argument.name)
        return f"{call.module}({', '.join(rendered)})"

    def _print_sequential(self, module: ast.SequentialModule) -> None:
        self._emit(f"mod seq {module.name}({self._params(module.params)}) {{")
        self.indent += 1
        for variable in module.variables:
            self._emit(f"{variable.type_name} {variable.name};")
        self.print_statements(module.body)
        self.indent -= 1
        self._emit("}")

    def print_statements(self, statements: Sequence[ast.Statement]) -> None:
        for statement in statements:
            self.print_statement(statement)

    def print_statement(self, statement: ast.Statement) -> None:
        if isinstance(statement, ast.Assignment):
            self._emit(f"{statement.target} = {self.expression(statement.expression)};")
        elif isinstance(statement, ast.FunctionCall):
            self._emit(f"{statement.name}({self._arguments(statement.arguments)});")
        elif isinstance(statement, ast.IfStatement):
            self._emit(f"if ({self.expression(statement.condition)}) {{")
            self.indent += 1
            self.print_statements(statement.then_body)
            self.indent -= 1
            if statement.else_body:
                self._emit("} else {")
                self.indent += 1
                self.print_statements(statement.else_body)
                self.indent -= 1
            self._emit("}")
        elif isinstance(statement, ast.SwitchStatement):
            self._emit(f"switch ({self.expression(statement.selector)})")
            for case in statement.cases:
                self._emit(f"case {case.value} {{")
                self.indent += 1
                self.print_statements(case.body)
                self.indent -= 1
                self._emit("}")
            self._emit("default {")
            self.indent += 1
            self.print_statements(statement.default)
            self.indent -= 1
            self._emit("}")
        elif isinstance(statement, ast.LoopStatement):
            self._emit("loop {")
            self.indent += 1
            self.print_statements(statement.body)
            self.indent -= 1
            self._emit(f"}} while ({self.expression(statement.condition)});")
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown statement node {type(statement).__name__}")

    def _arguments(self, arguments: Sequence[ast.Argument]) -> str:
        rendered = []
        for argument in arguments:
            if isinstance(argument, ast.OutArgument):
                suffix = f":{argument.count}" if argument.count != 1 else ""
                rendered.append(f"out {argument.name}{suffix}")
            else:
                rendered.append(self.expression(argument.expression))
        return ", ".join(rendered)

    # ------------------------------------------------------------ expressions
    def expression(self, expression: ast.Expression) -> str:
        if isinstance(expression, ast.NumberLiteral):
            return _number(expression.value)
        if isinstance(expression, ast.VarRef):
            return expression.name
        if isinstance(expression, ast.StreamRead):
            suffix = f":{expression.count}" if expression.count != 1 else ""
            return f"{expression.name}{suffix}"
        if isinstance(expression, ast.FunctionExpr):
            return f"{expression.name}({self._arguments(expression.arguments)})"
        if isinstance(expression, ast.BinaryOp):
            op = expression.op
            if op in ("and", "or"):
                rendered_op = f" {op} "
            else:
                rendered_op = f" {op} "
            return f"({self.expression(expression.left)}{rendered_op}{self.expression(expression.right)})"
        if isinstance(expression, ast.UnaryOp):
            return f"{expression.op}({self.expression(expression.operand)})"
        raise TypeError(f"unknown expression node {type(expression).__name__}")


def format_program(program: ast.Program) -> str:
    """Render *program* as OIL source text."""
    return PrettyPrinter().print_program(program)


def format_module(module: ast.Module) -> str:
    """Render a single module definition as OIL source text."""
    printer = PrettyPrinter()
    printer.print_module(module)
    return "\n".join(printer.lines) + "\n"
