"""Abstract syntax tree of the OIL language.

The node classes follow the core grammar of Fig. 5:

* a *program* is a list of module definitions (plus an optional anonymous
  top-level ``mod par { ... }`` block as used by the PAL decoder of Fig. 11),
* a ``mod par`` module declares FIFOs, sources, sinks and latency constraints
  and instantiates other modules in parallel,
* a ``mod seq`` module declares local variables and contains a sequential
  statement list with ``if``, ``switch`` and ``loop ... while`` control
  statements coordinating function calls and assignments,
* streams are read with the colon notation ``r:n`` (n values per loop
  iteration) and written with ``out r:n``.

All nodes are frozen dataclasses carrying their source location, which keeps
them hashable and makes the AST safe to share between the semantic analyser,
the task-graph extractor and the pretty printer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence, Tuple, Union

from repro.lang.errors import SourceLocation


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Expression:
    """Base class of all expression nodes."""

    location: Optional[SourceLocation] = field(default=None, compare=False, kw_only=True)


@dataclass(frozen=True)
class NumberLiteral(Expression):
    """An integer or decimal literal."""

    value: Union[int, float]


@dataclass(frozen=True)
class VarRef(Expression):
    """A reference to a local variable, parameter or stream (single value)."""

    name: str


@dataclass(frozen=True)
class StreamRead(Expression):
    """A multi-value stream read ``r:n`` (n values consumed per iteration)."""

    name: str
    count: int


@dataclass(frozen=True)
class FunctionExpr(Expression):
    """A function call in expression position, e.g. ``g()`` in ``y = g();``."""

    name: str
    arguments: Tuple["Argument", ...] = ()


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary arithmetic / comparison / logical operation."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class UnaryOp(Expression):
    """A unary operation (negation or logical not)."""

    op: str
    operand: Expression


# --------------------------------------------------------------------------
# Arguments
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Argument:
    """Base class of call-argument nodes."""

    location: Optional[SourceLocation] = field(default=None, compare=False, kw_only=True)


@dataclass(frozen=True)
class InArgument(Argument):
    """A value argument (an expression evaluated and passed by value)."""

    expression: Expression


@dataclass(frozen=True)
class OutArgument(Argument):
    """An output argument ``out x`` / ``out r:n`` (the callee produces values)."""

    name: str
    count: int = 1


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Statement:
    """Base class of statement nodes."""

    location: Optional[SourceLocation] = field(default=None, compare=False, kw_only=True)


@dataclass(frozen=True)
class Assignment(Statement):
    """``x = e;`` -- assignment to a variable or (single-value) output stream."""

    target: str
    expression: Expression


@dataclass(frozen=True)
class FunctionCall(Statement):
    """``F(a, out b:2, ...);`` -- a coordination-level function call."""

    name: str
    arguments: Tuple[Argument, ...] = ()


@dataclass(frozen=True)
class IfStatement(Statement):
    """``if (e) { ... } else { ... }`` (the else branch may be empty)."""

    condition: Expression
    then_body: Tuple[Statement, ...]
    else_body: Tuple[Statement, ...] = ()


@dataclass(frozen=True)
class SwitchCase:
    """One ``case n { ... }`` alternative of a switch statement."""

    value: int
    body: Tuple[Statement, ...]
    location: Optional[SourceLocation] = field(default=None, compare=False, kw_only=True)


@dataclass(frozen=True)
class SwitchStatement(Statement):
    """``switch (e) case n { ... } ... default { ... }``."""

    selector: Expression
    cases: Tuple[SwitchCase, ...]
    default: Tuple[Statement, ...] = ()


@dataclass(frozen=True)
class LoopStatement(Statement):
    """``loop { ... } while (e);`` -- a do-while loop (body runs at least once).

    ``while(1)`` denotes an infinite streaming loop; data-dependent conditions
    select modes of the application.
    """

    body: Tuple[Statement, ...]
    condition: Expression


# --------------------------------------------------------------------------
# Declarations inside modules
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class VariableDecl:
    """``T x;`` -- a local variable of a sequential module."""

    type_name: str
    name: str
    location: Optional[SourceLocation] = field(default=None, compare=False, kw_only=True)


@dataclass(frozen=True)
class StreamParam:
    """A stream parameter of a module: ``out T r`` or ``T r``."""

    type_name: str
    name: str
    is_output: bool
    location: Optional[SourceLocation] = field(default=None, compare=False, kw_only=True)


@dataclass(frozen=True)
class FifoDecl:
    """``fifo T x;`` (or ``fifo T x, y;`` which the parser expands)."""

    type_name: str
    name: str
    location: Optional[SourceLocation] = field(default=None, compare=False, kw_only=True)


@dataclass(frozen=True)
class SourceDecl:
    """``source T x = F() @ n Hz;`` -- a periodic, time-triggered source."""

    type_name: str
    name: str
    function: str
    frequency_hz: Fraction
    location: Optional[SourceLocation] = field(default=None, compare=False, kw_only=True)


@dataclass(frozen=True)
class SinkDecl:
    """``sink T x = F() @ n Hz;`` -- a periodic, time-triggered sink."""

    type_name: str
    name: str
    function: str
    frequency_hz: Fraction
    location: Optional[SourceLocation] = field(default=None, compare=False, kw_only=True)


@dataclass(frozen=True)
class LatencyDecl:
    """``start x n ms after y;`` / ``start x n ms before y;``."""

    subject: str
    amount_seconds: Fraction
    relation: str  # "after" | "before"
    reference: str
    location: Optional[SourceLocation] = field(default=None, compare=False, kw_only=True)


@dataclass(frozen=True)
class CallArgument:
    """An argument of a module instantiation: ``out r`` or ``r``."""

    name: str
    is_output: bool
    location: Optional[SourceLocation] = field(default=None, compare=False, kw_only=True)


@dataclass(frozen=True)
class ModuleCall:
    """An instantiation ``A(out x, y)`` inside a parallel module."""

    module: str
    arguments: Tuple[CallArgument, ...]
    location: Optional[SourceLocation] = field(default=None, compare=False, kw_only=True)


# --------------------------------------------------------------------------
# Modules and programs
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SequentialModule:
    """``mod seq A(R) { V* S* }``."""

    name: str
    params: Tuple[StreamParam, ...]
    variables: Tuple[VariableDecl, ...]
    body: Tuple[Statement, ...]
    location: Optional[SourceLocation] = field(default=None, compare=False, kw_only=True)


@dataclass(frozen=True)
class ParallelModule:
    """``mod par A(R) { G* L* N }`` (name may be empty for the anonymous
    top-level module of a program, e.g. the PAL decoder's main block)."""

    name: str
    params: Tuple[StreamParam, ...]
    fifos: Tuple[FifoDecl, ...]
    sources: Tuple[SourceDecl, ...]
    sinks: Tuple[SinkDecl, ...]
    latency_constraints: Tuple[LatencyDecl, ...]
    calls: Tuple[ModuleCall, ...]
    location: Optional[SourceLocation] = field(default=None, compare=False, kw_only=True)


Module = Union[SequentialModule, ParallelModule]


@dataclass(frozen=True)
class Program:
    """A complete OIL program: a list of module definitions.

    ``main`` is the anonymous or explicitly selected top-level parallel module
    that instantiates the application; it may be ``None`` for library-only
    programs (collections of modules meant to be composed elsewhere).
    """

    modules: Tuple[Module, ...]
    main: Optional[ParallelModule] = None

    def module(self, name: str) -> Module:
        """Look up a module definition by name."""
        for module in self.modules:
            if module.name == name:
                return module
        raise KeyError(f"program has no module named {name!r}")

    def module_names(self) -> Tuple[str, ...]:
        return tuple(m.name for m in self.modules if m.name)

    def sequential_modules(self) -> Tuple[SequentialModule, ...]:
        return tuple(m for m in self.modules if isinstance(m, SequentialModule))

    def parallel_modules(self) -> Tuple[ParallelModule, ...]:
        return tuple(m for m in self.modules if isinstance(m, ParallelModule))


# --------------------------------------------------------------------------
# Small helpers used across the compiler
# --------------------------------------------------------------------------

def statement_children(statement: Statement) -> Tuple[Statement, ...]:
    """The directly nested statements of a control statement (empty for
    assignments and calls)."""
    if isinstance(statement, IfStatement):
        return statement.then_body + statement.else_body
    if isinstance(statement, SwitchStatement):
        children: Tuple[Statement, ...] = ()
        for case in statement.cases:
            children += case.body
        return children + statement.default
    if isinstance(statement, LoopStatement):
        return statement.body
    return ()


def walk_statements(statements: Sequence[Statement]):
    """Yield every statement in *statements* and all nested statements,
    pre-order."""
    for statement in statements:
        yield statement
        yield from walk_statements(statement_children(statement))


def expression_stream_reads(expression: Expression):
    """Yield ``(name, count)`` for every stream/variable read in *expression*."""
    if isinstance(expression, VarRef):
        yield expression.name, 1
    elif isinstance(expression, StreamRead):
        yield expression.name, expression.count
    elif isinstance(expression, FunctionExpr):
        for argument in expression.arguments:
            if isinstance(argument, InArgument):
                yield from expression_stream_reads(argument.expression)
    elif isinstance(expression, BinaryOp):
        yield from expression_stream_reads(expression.left)
        yield from expression_stream_reads(expression.right)
    elif isinstance(expression, UnaryOp):
        yield from expression_stream_reads(expression.operand)
