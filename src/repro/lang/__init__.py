"""The OIL language frontend.

* :mod:`repro.lang.lexer` / :mod:`repro.lang.parser` -- turn OIL source text
  into the AST of :mod:`repro.lang.ast` (grammar of Fig. 5),
* :mod:`repro.lang.semantics` -- the language rules that make OIL analyzable
  (single FIFO writer, output streams written every loop iteration, no
  recursion, ...), plus black-box module declarations,
* :mod:`repro.lang.pretty` -- unparser used for canonical listings and
  round-trip tests,
* :mod:`repro.lang.errors` -- diagnostics.
"""

from repro.lang import ast
from repro.lang.errors import (
    Diagnostic,
    DiagnosticCollector,
    OilError,
    OilSemanticError,
    OilSyntaxError,
    SourceLocation,
)
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse_module, parse_program
from repro.lang.pretty import format_module, format_program
from repro.lang.semantics import (
    AnalyzedProgram,
    BlackBoxModule,
    BlackBoxPort,
    StreamAccessSummary,
    analyze_program,
)

__all__ = [
    "ast",
    "Diagnostic",
    "DiagnosticCollector",
    "OilError",
    "OilSemanticError",
    "OilSyntaxError",
    "SourceLocation",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_module",
    "parse_program",
    "format_module",
    "format_program",
    "AnalyzedProgram",
    "BlackBoxModule",
    "BlackBoxPort",
    "StreamAccessSummary",
    "analyze_program",
]
