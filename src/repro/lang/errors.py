"""Diagnostics for the OIL language frontend.

All frontend errors carry a source location (line, column) and a message so
that programs written against the reproduction get compiler-quality error
reporting.  :class:`OilSyntaxError` is raised by the lexer/parser,
:class:`OilSemanticError` by the semantic validator; both derive from
:class:`OilError` so callers can catch either category or both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class SourceLocation:
    """A position in an OIL source text (1-based line and column)."""

    line: int
    column: int
    filename: Optional[str] = None

    def to_dict(self) -> dict:
        """The JSON shape used by structured diagnostics (:mod:`repro.rules`)."""
        data: dict = {"line": self.line, "column": self.column}
        if self.filename:
            data["filename"] = self.filename
        return data

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        prefix = f"{self.filename}:" if self.filename else ""
        return f"{prefix}{self.line}:{self.column}"


class OilError(Exception):
    """Base class for all OIL frontend errors."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None) -> None:
        self.message = message
        self.location = location
        super().__init__(str(self))

    def __str__(self) -> str:
        if self.location is not None:
            return f"{self.location}: {self.message}"
        return self.message


class OilSyntaxError(OilError):
    """A lexical or syntactic error in an OIL program."""


class OilSemanticError(OilError):
    """A violation of the OIL language rules (Sec. IV)."""


@dataclass
class Diagnostic:
    """A single semantic diagnostic (error or warning)."""

    severity: str  # "error" | "warning"
    message: str
    location: Optional[SourceLocation] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        loc = f"{self.location}: " if self.location else ""
        return f"{loc}{self.severity}: {self.message}"


class DiagnosticCollector:
    """Accumulates diagnostics during semantic analysis."""

    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []

    def error(self, message: str, location: Optional[SourceLocation] = None) -> None:
        self.diagnostics.append(Diagnostic("error", message, location))

    def warning(self, message: str, location: Optional[SourceLocation] = None) -> None:
        self.diagnostics.append(Diagnostic("warning", message, location))

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def raise_if_errors(self) -> None:
        if self.errors:
            summary = "\n".join(str(d) for d in self.errors)
            raise OilSemanticError(f"{len(self.errors)} semantic error(s):\n{summary}")
