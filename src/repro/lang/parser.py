"""Recursive-descent parser for the OIL language.

Implements the core grammar of Fig. 5 with the small practical extensions the
paper's listings use:

* the anonymous top-level module ``mod par { ... }`` (Fig. 11),
* frequencies with units (``@ 6.4 MHz``, ``@ 32 kHz``) and latency amounts
  with units (``5 ms``),
* comma-separated declarations (``fifo sample mas, mvs;``),
* comparison / logical operators in conditions (needed to express the modes
  the paper motivates; the published grammar elides condition syntax),
* C-style comments.

The parser produces the AST of :mod:`repro.lang.ast`; all language *rules*
(single FIFO writer, output streams written every iteration, ...) are checked
separately by :mod:`repro.lang.semantics`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple

from repro.lang import ast
from repro.lang.errors import OilSyntaxError, SourceLocation
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenType

_FREQUENCY_UNITS = {
    "hz": Fraction(1),
    "khz": Fraction(1000),
    "mhz": Fraction(10**6),
    "ghz": Fraction(10**9),
}

_TIME_UNITS = {
    "s": Fraction(1),
    "sec": Fraction(1),
    "ms": Fraction(1, 1000),
    "us": Fraction(1, 10**6),
    "ns": Fraction(1, 10**9),
}


def _number_to_fraction(token: Token) -> Fraction:
    if isinstance(token.value, int):
        return Fraction(token.value)
    return Fraction(str(token.value))


class Parser:
    """Parses one OIL source text into a :class:`repro.lang.ast.Program`."""

    def __init__(self, source: str, filename: Optional[str] = None) -> None:
        self.tokens = tokenize(source, filename)
        self.index = 0

    # ------------------------------------------------------------------ utils
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, token_type: TokenType, offset: int = 0) -> bool:
        return self._peek(offset).type == token_type

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def _expect(self, token_type: TokenType, what: str) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise OilSyntaxError(
                f"expected {what}, found {token.text!r}", token.location
            )
        return self._advance()

    def _expect_ident(self, what: str) -> Token:
        return self._expect(TokenType.IDENT, what)

    # ------------------------------------------------------------------ entry
    def parse_program(self) -> ast.Program:
        modules: List[ast.Module] = []
        anonymous_main: Optional[ast.ParallelModule] = None
        while not self._at(TokenType.EOF):
            module = self.parse_module()
            modules.append(module)
            if isinstance(module, ast.ParallelModule) and module.name == "main" and anonymous_main is None:
                anonymous_main = module
        main = anonymous_main
        if main is None:
            # Fall back to the unique parallel module that no other module
            # instantiates, if there is exactly one.
            instantiated = set()
            for module in modules:
                if isinstance(module, ast.ParallelModule):
                    for call in module.calls:
                        instantiated.add(call.module)
            candidates = [
                m
                for m in modules
                if isinstance(m, ast.ParallelModule) and m.name not in instantiated
            ]
            if len(candidates) == 1:
                main = candidates[0]
        return ast.Program(modules=tuple(modules), main=main)

    # ---------------------------------------------------------------- modules
    def parse_module(self) -> ast.Module:
        start = self._expect(TokenType.KW_MOD, "'mod'")
        if self._at(TokenType.KW_PAR):
            self._advance()
            return self._parse_parallel_module(start.location)
        if self._at(TokenType.KW_SEQ):
            self._advance()
            return self._parse_sequential_module(start.location)
        token = self._peek()
        raise OilSyntaxError("expected 'par' or 'seq' after 'mod'", token.location)

    def _parse_module_header(self) -> Tuple[str, Tuple[ast.StreamParam, ...]]:
        """Parse the optional name and parameter list of a module."""
        name = "main"
        params: Tuple[ast.StreamParam, ...] = ()
        if self._at(TokenType.IDENT):
            name = self._advance().text
            self._expect(TokenType.LPAREN, "'(' after module name")
            params = self._parse_stream_params()
            self._expect(TokenType.RPAREN, "')' after module parameters")
        elif self._at(TokenType.LPAREN):
            self._advance()
            params = self._parse_stream_params()
            self._expect(TokenType.RPAREN, "')' after module parameters")
        return name, params

    def _parse_stream_params(self) -> Tuple[ast.StreamParam, ...]:
        params: List[ast.StreamParam] = []
        if self._at(TokenType.RPAREN):
            return ()
        while True:
            location = self._peek().location
            is_output = False
            if self._at(TokenType.KW_OUT):
                is_output = True
                self._advance()
            type_name = self._expect_ident("stream type name").text
            stream_name = self._expect_ident("stream name").text
            params.append(
                ast.StreamParam(type_name, stream_name, is_output, location=location)
            )
            if self._at(TokenType.COMMA):
                self._advance()
                continue
            break
        return tuple(params)

    # -------------------------------------------------------- parallel module
    def _parse_parallel_module(self, location: SourceLocation) -> ast.ParallelModule:
        name, params = self._parse_module_header()
        self._expect(TokenType.LBRACE, "'{' starting the module body")

        fifos: List[ast.FifoDecl] = []
        sources: List[ast.SourceDecl] = []
        sinks: List[ast.SinkDecl] = []
        latencies: List[ast.LatencyDecl] = []
        calls: List[ast.ModuleCall] = []

        while not self._at(TokenType.RBRACE):
            if self._at(TokenType.KW_FIFO):
                fifos.extend(self._parse_fifo_decl())
            elif self._at(TokenType.KW_SOURCE):
                sources.append(self._parse_source_or_sink(is_source=True))
            elif self._at(TokenType.KW_SINK):
                sinks.append(self._parse_source_or_sink(is_source=False))
            elif self._at(TokenType.KW_START):
                latencies.append(self._parse_latency_decl())
            elif self._at(TokenType.IDENT):
                calls.extend(self._parse_module_calls())
            else:
                token = self._peek()
                raise OilSyntaxError(
                    f"unexpected {token.text!r} in parallel module body", token.location
                )
        self._expect(TokenType.RBRACE, "'}' ending the module body")

        return ast.ParallelModule(
            name=name,
            params=params,
            fifos=tuple(fifos),
            sources=tuple(sources),
            sinks=tuple(sinks),
            latency_constraints=tuple(latencies),
            calls=tuple(calls),
            location=location,
        )

    def _parse_fifo_decl(self) -> List[ast.FifoDecl]:
        start = self._expect(TokenType.KW_FIFO, "'fifo'")
        type_name = self._expect_ident("FIFO element type").text
        decls: List[ast.FifoDecl] = []
        while True:
            name = self._expect_ident("FIFO name").text
            decls.append(ast.FifoDecl(type_name, name, location=start.location))
            if self._at(TokenType.COMMA):
                self._advance()
                continue
            break
        self._expect(TokenType.SEMICOLON, "';' after fifo declaration")
        return decls

    def _parse_source_or_sink(self, *, is_source: bool):
        start = self._advance()  # 'source' or 'sink'
        type_name = self._expect_ident("element type").text
        name = self._expect_ident("stream name").text
        self._expect(TokenType.ASSIGN, "'=' in source/sink declaration")
        function = self._expect_ident("source/sink function name").text
        self._expect(TokenType.LPAREN, "'(' after function name")
        self._expect(TokenType.RPAREN, "')' after function name")
        self._expect(TokenType.AT, "'@' before the frequency")
        number = self._expect(TokenType.NUMBER, "frequency value")
        unit = self._expect_ident("frequency unit (Hz, kHz, MHz)")
        unit_factor = _FREQUENCY_UNITS.get(unit.text.lower())
        if unit_factor is None:
            raise OilSyntaxError(f"unknown frequency unit {unit.text!r}", unit.location)
        self._expect(TokenType.SEMICOLON, "';' after source/sink declaration")
        frequency = _number_to_fraction(number) * unit_factor
        cls = ast.SourceDecl if is_source else ast.SinkDecl
        return cls(type_name, name, function, frequency, location=start.location)

    def _parse_latency_decl(self) -> ast.LatencyDecl:
        start = self._expect(TokenType.KW_START, "'start'")
        subject = self._expect_ident("stream name").text
        number = self._expect(TokenType.NUMBER, "latency amount")
        unit = self._expect_ident("time unit (ms, us, s)")
        unit_factor = _TIME_UNITS.get(unit.text.lower())
        if unit_factor is None:
            raise OilSyntaxError(f"unknown time unit {unit.text!r}", unit.location)
        if self._at(TokenType.KW_AFTER):
            relation = "after"
            self._advance()
        elif self._at(TokenType.KW_BEFORE):
            relation = "before"
            self._advance()
        else:
            token = self._peek()
            raise OilSyntaxError("expected 'after' or 'before'", token.location)
        reference = self._expect_ident("stream name").text
        self._expect(TokenType.SEMICOLON, "';' after latency constraint")
        amount = _number_to_fraction(number) * unit_factor
        return ast.LatencyDecl(subject, amount, relation, reference, location=start.location)

    def _parse_module_calls(self) -> List[ast.ModuleCall]:
        calls = [self._parse_module_call()]
        while self._at(TokenType.PARALLEL):
            self._advance()
            calls.append(self._parse_module_call())
        # An optional trailing semicolon after the composition is tolerated.
        if self._at(TokenType.SEMICOLON):
            self._advance()
        return calls

    def _parse_module_call(self) -> ast.ModuleCall:
        name_token = self._expect_ident("module name")
        self._expect(TokenType.LPAREN, "'(' after module name")
        arguments: List[ast.CallArgument] = []
        if not self._at(TokenType.RPAREN):
            while True:
                location = self._peek().location
                is_output = False
                if self._at(TokenType.KW_OUT):
                    is_output = True
                    self._advance()
                argument = self._expect_ident("stream argument").text
                arguments.append(ast.CallArgument(argument, is_output, location=location))
                if self._at(TokenType.COMMA):
                    self._advance()
                    continue
                break
        self._expect(TokenType.RPAREN, "')' after module arguments")
        return ast.ModuleCall(name_token.text, tuple(arguments), location=name_token.location)

    # ------------------------------------------------------ sequential module
    def _parse_sequential_module(self, location: SourceLocation) -> ast.SequentialModule:
        name, params = self._parse_module_header()
        self._expect(TokenType.LBRACE, "'{' starting the module body")
        variables: List[ast.VariableDecl] = []
        statements: List[ast.Statement] = []
        while not self._at(TokenType.RBRACE):
            # ``T x;`` or ``T x, y;`` -- two identifiers in a row start a
            # variable declaration; everything else is a statement.
            if self._at(TokenType.IDENT) and self._at(TokenType.IDENT, 1):
                variables.extend(self._parse_variable_decl())
            else:
                statements.append(self._parse_statement())
        self._expect(TokenType.RBRACE, "'}' ending the module body")
        return ast.SequentialModule(
            name=name,
            params=params,
            variables=tuple(variables),
            body=tuple(statements),
            location=location,
        )

    def _parse_variable_decl(self) -> List[ast.VariableDecl]:
        type_token = self._expect_ident("variable type")
        decls: List[ast.VariableDecl] = []
        while True:
            name = self._expect_ident("variable name")
            decls.append(
                ast.VariableDecl(type_token.text, name.text, location=name.location)
            )
            if self._at(TokenType.COMMA):
                self._advance()
                continue
            break
        self._expect(TokenType.SEMICOLON, "';' after variable declaration")
        return decls

    # -------------------------------------------------------------- statements
    def _parse_block(self) -> Tuple[ast.Statement, ...]:
        self._expect(TokenType.LBRACE, "'{'")
        statements: List[ast.Statement] = []
        while not self._at(TokenType.RBRACE):
            statements.append(self._parse_statement())
        self._expect(TokenType.RBRACE, "'}'")
        return tuple(statements)

    def _parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.type is TokenType.KW_IF:
            return self._parse_if()
        if token.type is TokenType.KW_SWITCH:
            return self._parse_switch()
        if token.type is TokenType.KW_LOOP:
            return self._parse_loop()
        if token.type is TokenType.IDENT:
            if self._at(TokenType.ASSIGN, 1):
                return self._parse_assignment()
            if self._at(TokenType.LPAREN, 1):
                return self._parse_call_statement()
            raise OilSyntaxError(
                f"expected '=' or '(' after identifier {token.text!r}", token.location
            )
        raise OilSyntaxError(f"unexpected {token.text!r}; expected a statement", token.location)

    def _parse_if(self) -> ast.IfStatement:
        start = self._expect(TokenType.KW_IF, "'if'")
        self._expect(TokenType.LPAREN, "'(' after 'if'")
        condition = self._parse_expression()
        self._expect(TokenType.RPAREN, "')' after condition")
        then_body = self._parse_block()
        else_body: Tuple[ast.Statement, ...] = ()
        if self._at(TokenType.KW_ELSE):
            self._advance()
            if self._at(TokenType.KW_IF):
                else_body = (self._parse_if(),)
            else:
                else_body = self._parse_block()
        return ast.IfStatement(condition, then_body, else_body, location=start.location)

    def _parse_switch(self) -> ast.SwitchStatement:
        start = self._expect(TokenType.KW_SWITCH, "'switch'")
        self._expect(TokenType.LPAREN, "'(' after 'switch'")
        selector = self._parse_expression()
        self._expect(TokenType.RPAREN, "')' after switch selector")
        cases: List[ast.SwitchCase] = []
        default: Tuple[ast.Statement, ...] = ()
        saw_default = False
        while self._at(TokenType.KW_CASE) or self._at(TokenType.KW_DEFAULT):
            if self._at(TokenType.KW_CASE):
                case_token = self._advance()
                value_token = self._expect(TokenType.NUMBER, "case value")
                if not isinstance(value_token.value, int):
                    raise OilSyntaxError("case values must be integers", value_token.location)
                body = self._parse_block()
                cases.append(ast.SwitchCase(value_token.value, body, location=case_token.location))
            else:
                if saw_default:
                    token = self._peek()
                    raise OilSyntaxError("duplicate 'default' in switch", token.location)
                self._advance()
                default = self._parse_block()
                saw_default = True
        if not saw_default:
            raise OilSyntaxError("switch statement requires a 'default' block", start.location)
        return ast.SwitchStatement(selector, tuple(cases), default, location=start.location)

    def _parse_loop(self) -> ast.LoopStatement:
        start = self._expect(TokenType.KW_LOOP, "'loop'")
        body = self._parse_block()
        self._expect(TokenType.KW_WHILE, "'while' after loop body")
        self._expect(TokenType.LPAREN, "'(' after 'while'")
        condition = self._parse_expression()
        self._expect(TokenType.RPAREN, "')' after loop condition")
        self._expect(TokenType.SEMICOLON, "';' after loop statement")
        return ast.LoopStatement(body, condition, location=start.location)

    def _parse_assignment(self) -> ast.Assignment:
        target = self._expect_ident("assignment target")
        self._expect(TokenType.ASSIGN, "'='")
        expression = self._parse_expression()
        self._expect(TokenType.SEMICOLON, "';' after assignment")
        return ast.Assignment(target.text, expression, location=target.location)

    def _parse_call_statement(self) -> ast.FunctionCall:
        name = self._expect_ident("function name")
        arguments = self._parse_call_arguments()
        self._expect(TokenType.SEMICOLON, "';' after function call")
        return ast.FunctionCall(name.text, arguments, location=name.location)

    def _parse_call_arguments(self) -> Tuple[ast.Argument, ...]:
        self._expect(TokenType.LPAREN, "'('")
        arguments: List[ast.Argument] = []
        if not self._at(TokenType.RPAREN):
            while True:
                arguments.append(self._parse_argument())
                if self._at(TokenType.COMMA):
                    self._advance()
                    continue
                break
        self._expect(TokenType.RPAREN, "')'")
        return tuple(arguments)

    def _parse_argument(self) -> ast.Argument:
        token = self._peek()
        if token.type is TokenType.KW_OUT:
            self._advance()
            name = self._expect_ident("output argument name")
            count = 1
            if self._at(TokenType.COLON):
                self._advance()
                count_token = self._expect(TokenType.NUMBER, "output count")
                if not isinstance(count_token.value, int) or count_token.value <= 0:
                    raise OilSyntaxError("stream access counts must be positive integers", count_token.location)
                count = count_token.value
            return ast.OutArgument(name.text, count, location=token.location)
        expression = self._parse_expression()
        return ast.InArgument(expression, location=token.location)

    # ------------------------------------------------------------ expressions
    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._at(TokenType.OR):
            op = self._advance()
            right = self._parse_and()
            left = ast.BinaryOp("or", left, right, location=op.location)
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_comparison()
        while self._at(TokenType.AND):
            op = self._advance()
            right = self._parse_comparison()
            left = ast.BinaryOp("and", left, right, location=op.location)
        return left

    _COMPARISON = {
        TokenType.EQ: "==",
        TokenType.NEQ: "!=",
        TokenType.LT: "<",
        TokenType.LE: "<=",
        TokenType.GT: ">",
        TokenType.GE: ">=",
    }

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.type in self._COMPARISON:
            self._advance()
            right = self._parse_additive()
            return ast.BinaryOp(self._COMPARISON[token.type], left, right, location=token.location)
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while self._at(TokenType.PLUS) or self._at(TokenType.MINUS):
            op = self._advance()
            right = self._parse_multiplicative()
            left = ast.BinaryOp(op.text, left, right, location=op.location)
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while self._at(TokenType.STAR) or self._at(TokenType.SLASH) or self._at(TokenType.PERCENT):
            op = self._advance()
            text = "/" if op.type is TokenType.SLASH else op.text
            right = self._parse_unary()
            left = ast.BinaryOp(text, left, right, location=op.location)
        return left

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.MINUS:
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp("-", operand, location=token.location)
        if token.type is TokenType.NOT:
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp("!", operand, location=token.location)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.NumberLiteral(token.value, location=token.location)
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self._parse_expression()
            self._expect(TokenType.RPAREN, "')'")
            return inner
        if token.type is TokenType.IDENT:
            self._advance()
            if self._at(TokenType.LPAREN):
                arguments = self._parse_call_arguments()
                return ast.FunctionExpr(token.text, arguments, location=token.location)
            if self._at(TokenType.COLON):
                self._advance()
                count_token = self._expect(TokenType.NUMBER, "stream access count")
                if not isinstance(count_token.value, int) or count_token.value <= 0:
                    raise OilSyntaxError(
                        "stream access counts must be positive integers", count_token.location
                    )
                return ast.StreamRead(token.text, count_token.value, location=token.location)
            return ast.VarRef(token.text, location=token.location)
        raise OilSyntaxError(f"unexpected {token.text!r} in expression", token.location)


def parse_program(source: str, filename: Optional[str] = None) -> ast.Program:
    """Parse OIL source text into a :class:`~repro.lang.ast.Program`."""
    return Parser(source, filename).parse_program()


def parse_module(source: str, filename: Optional[str] = None) -> ast.Module:
    """Parse a source text containing exactly one module definition."""
    program = parse_program(source, filename)
    if len(program.modules) != 1:
        raise OilSyntaxError(
            f"expected exactly one module definition, found {len(program.modules)}"
        )
    return program.modules[0]
