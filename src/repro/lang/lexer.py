"""Lexer for the OIL language.

Converts OIL source text into a stream of :class:`~repro.lang.tokens.Token`
objects.  The lexer accepts both the ASCII spelling ``||`` and the Unicode
parallel-bars symbol ``‖`` used in the paper's listings for parallel module
composition, C/C++-style line (``//``) and block (``/* */``) comments, and
numbers with decimal points (``6.4`` in ``@ 6.4 MHz``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang.errors import OilSyntaxError, SourceLocation
from repro.lang.tokens import KEYWORDS, Token, TokenType

_SINGLE_CHAR = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ";": TokenType.SEMICOLON,
    ",": TokenType.COMMA,
    ":": TokenType.COLON,
    "@": TokenType.AT,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "\\": TokenType.SLASH,
    "%": TokenType.PERCENT,
}


class Lexer:
    """Tokenises one OIL source text."""

    def __init__(self, source: str, filename: Optional[str] = None) -> None:
        self.source = source
        self.filename = filename
        self.position = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------ utils
    def _location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column, self.filename)

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.position : self.position + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.position += count
        return text

    # ------------------------------------------------------------------ main
    def tokenize(self) -> List[Token]:
        """Produce the full token list (terminated by an EOF token)."""
        tokens: List[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.position >= len(self.source):
                tokens.append(Token(TokenType.EOF, "", self._location()))
                return tokens
            tokens.append(self._next_token())

    def _skip_whitespace_and_comments(self) -> None:
        while self.position < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
                continue
            if ch == "/" and self._peek(1) == "/":
                while self.position < len(self.source) and self._peek() != "\n":
                    self._advance()
                continue
            if ch == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while self.position < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.position >= len(self.source):
                    raise OilSyntaxError("unterminated block comment", start)
                self._advance(2)
                continue
            break

    def _next_token(self) -> Token:
        location = self._location()
        ch = self._peek()

        # parallel composition: '||' or the Unicode double bar
        if ch == "|" and self._peek(1) == "|":
            self._advance(2)
            return Token(TokenType.PARALLEL, "||", location)
        if ch in ("‖", "∥"):
            self._advance()
            return Token(TokenType.PARALLEL, "||", location)

        # multi-character operators
        if ch == "=" and self._peek(1) == "=":
            self._advance(2)
            return Token(TokenType.EQ, "==", location)
        if ch == "!" and self._peek(1) == "=":
            self._advance(2)
            return Token(TokenType.NEQ, "!=", location)
        if ch == "<" and self._peek(1) == "=":
            self._advance(2)
            return Token(TokenType.LE, "<=", location)
        if ch == ">" and self._peek(1) == "=":
            self._advance(2)
            return Token(TokenType.GE, ">=", location)
        if ch == "&" and self._peek(1) == "&":
            self._advance(2)
            return Token(TokenType.AND, "&&", location)

        if ch == "=":
            self._advance()
            return Token(TokenType.ASSIGN, "=", location)
        if ch == "<":
            self._advance()
            return Token(TokenType.LT, "<", location)
        if ch == ">":
            self._advance()
            return Token(TokenType.GT, ">", location)
        if ch == "!":
            self._advance()
            return Token(TokenType.NOT, "!", location)

        if ch in _SINGLE_CHAR:
            self._advance()
            return Token(_SINGLE_CHAR[ch], ch, location)

        if ch.isdigit():
            return self._number(location)

        if ch.isalpha() or ch == "_":
            return self._identifier(location)

        raise OilSyntaxError(f"unexpected character {ch!r}", location)

    def _number(self, location: SourceLocation) -> Token:
        start = self.position
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.position]
        value: object = float(text) if is_float else int(text)
        return Token(TokenType.NUMBER, text, location, value)

    def _identifier(self, location: SourceLocation) -> Token:
        start = self.position
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.position]
        keyword = KEYWORDS.get(text)
        if keyword is not None:
            return Token(keyword, text, location)
        return Token(TokenType.IDENT, text, location)


def tokenize(source: str, filename: Optional[str] = None) -> List[Token]:
    """Convenience wrapper: tokenise *source* and return the token list."""
    return Lexer(source, filename).tokenize()
