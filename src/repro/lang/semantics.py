"""Semantic validation of OIL programs.

The OIL language obtains its analyzability from a set of rules the grammar
alone cannot enforce (Sec. IV).  This module checks them and reports
compiler-style diagnostics:

* module instantiation: called modules must exist (or be registered black-box
  modules), argument counts and in/out directions must match, and the
  instantiation graph must be acyclic (no recursion -- the language is not
  Turing complete),
* FIFOs: exactly one writing module, at least one reader (multiple readers
  all observe the same values); sources are only read, sinks only written,
* sequential modules: variables are declared before use, input streams are
  never written, output streams are never read, and **every output stream is
  written in every loop iteration** (Sec. IV-A) -- checked as "written on all
  control paths of every loop body and of the module body",
* sources and sinks must be accessed in every loop iteration of modules that
  use them (Sec. III-B / V-B) -- checked for the streams a sequential module
  receives, so that the CTA abstraction of while-loops is valid,
* the colon (multi-value) notation is restricted to stream parameters.

Black-box modules (like the Video/Audio modules of the PAL decoder) are
declared by the host application through :class:`BlackBoxModule`; they
participate in the call checks and later get CTA components built from their
declared interface rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.lang import ast
from repro.lang.errors import DiagnosticCollector, OilSemanticError


@dataclass(frozen=True)
class BlackBoxPort:
    """One stream port of a black-box module."""

    name: str
    is_output: bool
    #: values transferred per firing (the colon count of the interface)
    count: int = 1


@dataclass(frozen=True)
class BlackBoxModule:
    """An externally implemented module with a declared temporal interface.

    ``firing_duration`` is the worst-case response time per firing in seconds;
    ``max_rate`` optionally bounds the firing rate (both are used when the
    black box is turned into a CTA component).
    """

    name: str
    ports: Tuple[BlackBoxPort, ...]
    firing_duration: Fraction = Fraction(0)
    max_rate: Optional[Fraction] = None

    def port(self, index: int) -> BlackBoxPort:
        return self.ports[index]


@dataclass
class StreamAccessSummary:
    """How a sequential module uses one of its stream parameters."""

    name: str
    is_output: bool
    reads: int = 0
    writes: int = 0
    read_counts: List[int] = field(default_factory=list)
    write_counts: List[int] = field(default_factory=list)

    @property
    def max_read_count(self) -> int:
        return max(self.read_counts, default=0)

    @property
    def max_write_count(self) -> int:
        return max(self.write_counts, default=0)


@dataclass
class AnalyzedProgram:
    """The result of semantic analysis: the program plus derived tables."""

    program: ast.Program
    diagnostics: DiagnosticCollector
    black_boxes: Mapping[str, BlackBoxModule]
    #: per sequential module: stream name -> access summary
    stream_usage: Dict[str, Dict[str, StreamAccessSummary]] = field(default_factory=dict)
    #: names of C/C++ functions referenced by each sequential module
    functions: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.diagnostics.errors


# --------------------------------------------------------------------------
# Statement helpers
# --------------------------------------------------------------------------

def _writes_of_statement(statement: ast.Statement) -> List[Tuple[str, int]]:
    """Direct writes (name, count) performed by *statement* itself."""
    if isinstance(statement, ast.Assignment):
        return [(statement.target, 1)]
    if isinstance(statement, ast.FunctionCall):
        return [
            (arg.name, arg.count)
            for arg in statement.arguments
            if isinstance(arg, ast.OutArgument)
        ]
    return []


def _reads_of_statement(statement: ast.Statement) -> List[Tuple[str, int]]:
    """Direct reads (name, count) performed by *statement* itself (conditions
    of control statements count as reads of the guarding statement)."""
    reads: List[Tuple[str, int]] = []
    if isinstance(statement, ast.Assignment):
        reads.extend(ast.expression_stream_reads(statement.expression))
    elif isinstance(statement, ast.FunctionCall):
        for arg in statement.arguments:
            if isinstance(arg, ast.InArgument):
                reads.extend(ast.expression_stream_reads(arg.expression))
    elif isinstance(statement, ast.IfStatement):
        reads.extend(ast.expression_stream_reads(statement.condition))
    elif isinstance(statement, ast.SwitchStatement):
        reads.extend(ast.expression_stream_reads(statement.selector))
    elif isinstance(statement, ast.LoopStatement):
        reads.extend(ast.expression_stream_reads(statement.condition))
    return reads


def writes_on_all_paths(statements: Sequence[ast.Statement], name: str) -> bool:
    """True when every control path through *statements* writes *name*.

    A ``loop ... while`` executes its body at least once (do-while semantics),
    so a write inside a loop body counts; a write inside only one branch of an
    ``if`` without ``else`` does not.
    """
    for statement in statements:
        if any(target == name for target, _ in _writes_of_statement(statement)):
            return True
        if isinstance(statement, ast.IfStatement):
            if statement.else_body and writes_on_all_paths(statement.then_body, name) and writes_on_all_paths(
                statement.else_body, name
            ):
                return True
        elif isinstance(statement, ast.SwitchStatement):
            branches = [case.body for case in statement.cases] + [statement.default]
            if all(writes_on_all_paths(branch, name) for branch in branches):
                return True
        elif isinstance(statement, ast.LoopStatement):
            if writes_on_all_paths(statement.body, name):
                return True
    return False


def accesses_on_all_paths(statements: Sequence[ast.Statement], name: str) -> bool:
    """True when every control path through *statements* reads or writes *name*."""
    for statement in statements:
        if any(target == name for target, _ in _writes_of_statement(statement)):
            return True
        if any(source == name for source, _ in _reads_of_statement(statement)):
            return True
        if isinstance(statement, ast.IfStatement):
            if statement.else_body and accesses_on_all_paths(statement.then_body, name) and accesses_on_all_paths(
                statement.else_body, name
            ):
                return True
        elif isinstance(statement, ast.SwitchStatement):
            branches = [case.body for case in statement.cases] + [statement.default]
            if all(accesses_on_all_paths(branch, name) for branch in branches):
                return True
        elif isinstance(statement, ast.LoopStatement):
            if accesses_on_all_paths(statement.body, name):
                return True
    return False


def top_level_loops(module: ast.SequentialModule) -> List[ast.LoopStatement]:
    """The top-level ``loop ... while`` statements of a sequential module."""
    return [s for s in module.body if isinstance(s, ast.LoopStatement)]


# --------------------------------------------------------------------------
# Main analysis
# --------------------------------------------------------------------------

def analyze_program(
    program: ast.Program,
    black_boxes: Optional[Sequence[BlackBoxModule]] = None,
    *,
    strict: bool = False,
) -> AnalyzedProgram:
    """Run all semantic checks on *program* and return the analysis result.

    With ``strict=True`` an :class:`~repro.lang.errors.OilSemanticError` is
    raised when any error-level diagnostic was produced.
    """
    diagnostics = DiagnosticCollector()
    boxes = {box.name: box for box in (black_boxes or [])}

    module_table: Dict[str, ast.Module] = {}
    for module in program.modules:
        if module.name in module_table:
            diagnostics.error(f"duplicate module name {module.name!r}", module.location)
            continue
        if module.name in boxes:
            diagnostics.error(
                f"module {module.name!r} clashes with a registered black-box module",
                module.location,
            )
        module_table[module.name] = module

    analyzed = AnalyzedProgram(program=program, diagnostics=diagnostics, black_boxes=boxes)

    for module in program.modules:
        if isinstance(module, ast.ParallelModule):
            _check_parallel_module(module, module_table, boxes, diagnostics)
        else:
            usage, functions = _check_sequential_module(module, diagnostics)
            analyzed.stream_usage[module.name] = usage
            analyzed.functions[module.name] = functions

    _check_instantiation_acyclic(program, module_table, diagnostics)

    if strict:
        diagnostics.raise_if_errors()
    return analyzed


def _module_params(module_or_box) -> List[Tuple[str, bool]]:
    """(name, is_output) per parameter of a module definition or black box."""
    if isinstance(module_or_box, BlackBoxModule):
        return [(p.name, p.is_output) for p in module_or_box.ports]
    return [(p.name, p.is_output) for p in module_or_box.params]


def _check_parallel_module(
    module: ast.ParallelModule,
    module_table: Mapping[str, ast.Module],
    boxes: Mapping[str, BlackBoxModule],
    diagnostics: DiagnosticCollector,
) -> None:
    # Streams visible in this module: its own parameters, FIFOs, sources, sinks.
    params = {p.name: p for p in module.params}
    fifos = {f.name for f in module.fifos}
    sources = {s.name for s in module.sources}
    sinks = {s.name for s in module.sinks}

    for collection, kind in ((fifos, "fifo"), (sources, "source"), (sinks, "sink")):
        for name in collection:
            if name in params:
                diagnostics.error(
                    f"{kind} {name!r} shadows a parameter of module {module.name!r}",
                    module.location,
                )
    duplicate_check: Dict[str, str] = {}
    for name, kind in [(f.name, "fifo") for f in module.fifos] + [
        (s.name, "source") for s in module.sources
    ] + [(s.name, "sink") for s in module.sinks]:
        if name in duplicate_check:
            diagnostics.error(
                f"stream {name!r} declared twice (as {duplicate_check[name]} and {kind}) "
                f"in module {module.name!r}",
                module.location,
            )
        duplicate_check[name] = kind

    known_streams = set(params) | fifos | sources | sinks

    if not module.calls:
        diagnostics.warning(
            f"parallel module {module.name!r} instantiates no modules", module.location
        )

    writers: Dict[str, List[str]] = {name: [] for name in known_streams}
    readers: Dict[str, List[str]] = {name: [] for name in known_streams}

    for call in module.calls:
        target = module_table.get(call.module) or boxes.get(call.module)
        if target is None:
            diagnostics.error(
                f"module {module.name!r} instantiates unknown module {call.module!r} "
                "(define it or register it as a black-box module)",
                call.location,
            )
            continue
        if isinstance(target, ast.ParallelModule) and target.name == module.name:
            diagnostics.error(
                f"module {module.name!r} instantiates itself", call.location
            )
        params_of_target = _module_params(target)
        if len(params_of_target) != len(call.arguments):
            diagnostics.error(
                f"call to {call.module!r} passes {len(call.arguments)} arguments, "
                f"expected {len(params_of_target)}",
                call.location,
            )
            continue
        for (param_name, param_is_out), argument in zip(params_of_target, call.arguments):
            if argument.name not in known_streams:
                diagnostics.error(
                    f"call to {call.module!r} references undeclared stream {argument.name!r}",
                    argument.location,
                )
                continue
            if param_is_out != argument.is_output:
                expected = "out" if param_is_out else "input"
                diagnostics.error(
                    f"argument {argument.name!r} of call to {call.module!r} must be an "
                    f"{expected} argument (parameter {param_name!r})",
                    argument.location,
                )
            if argument.is_output:
                writers[argument.name].append(call.module)
            else:
                readers[argument.name].append(call.module)

    # Writer/reader rules per stream kind.
    for name in fifos:
        if len(writers[name]) == 0:
            diagnostics.error(
                f"fifo {name!r} in module {module.name!r} has no writer", module.location
            )
        elif len(writers[name]) > 1:
            diagnostics.error(
                f"fifo {name!r} in module {module.name!r} has multiple writers: "
                f"{sorted(writers[name])} (only one module can write to a FIFO)",
                module.location,
            )
        if len(readers[name]) == 0:
            diagnostics.warning(
                f"fifo {name!r} in module {module.name!r} is never read", module.location
            )
    for name in sources:
        if writers[name]:
            diagnostics.error(
                f"source {name!r} is written by {sorted(writers[name])}; sources are produced "
                "by the environment and can only be read",
                module.location,
            )
        if not readers[name]:
            diagnostics.warning(f"source {name!r} is never read", module.location)
    for name in sinks:
        if readers[name]:
            diagnostics.error(
                f"sink {name!r} is read by {sorted(readers[name])}; sinks are consumed by the "
                "environment and can only be written",
                module.location,
            )
        if len(writers[name]) == 0:
            diagnostics.error(f"sink {name!r} is never written", module.location)
        elif len(writers[name]) > 1:
            diagnostics.error(
                f"sink {name!r} has multiple writers: {sorted(writers[name])}", module.location
            )
    for name, param in params.items():
        if param.is_output:
            if len(writers[name]) == 0:
                diagnostics.error(
                    f"output stream {name!r} of module {module.name!r} is never written by "
                    "any instantiated module",
                    module.location,
                )
            elif len(writers[name]) > 1:
                diagnostics.error(
                    f"output stream {name!r} of module {module.name!r} has multiple writers: "
                    f"{sorted(writers[name])}",
                    module.location,
                )
        else:
            if writers[name]:
                diagnostics.error(
                    f"input stream {name!r} of module {module.name!r} is written by "
                    f"{sorted(writers[name])}; input streams are read-only",
                    module.location,
                )

    # Latency constraints must reference sources or sinks declared here.
    timed = sources | sinks
    for constraint in module.latency_constraints:
        for endpoint in (constraint.subject, constraint.reference):
            if endpoint not in timed:
                diagnostics.error(
                    f"latency constraint references {endpoint!r} which is not a source or "
                    f"sink of module {module.name!r}",
                    constraint.location,
                )
        if constraint.amount_seconds < 0:
            diagnostics.error(
                "latency constraint amounts must be non-negative", constraint.location
            )


def _check_sequential_module(
    module: ast.SequentialModule,
    diagnostics: DiagnosticCollector,
) -> Tuple[Dict[str, StreamAccessSummary], Set[str]]:
    params = {p.name: p for p in module.params}
    variables = {v.name for v in module.variables}
    functions: Set[str] = set()

    for variable in module.variables:
        if variable.name in params:
            diagnostics.error(
                f"variable {variable.name!r} shadows a stream parameter of module "
                f"{module.name!r}",
                variable.location,
            )

    usage: Dict[str, StreamAccessSummary] = {
        name: StreamAccessSummary(name=name, is_output=param.is_output)
        for name, param in params.items()
    }

    declared = set(params) | variables
    assigned: Set[str] = set()

    def note_read(name: str, count: int, location) -> None:
        if name not in declared:
            diagnostics.error(
                f"module {module.name!r} reads undeclared name {name!r}", location
            )
            return
        if name in usage:
            summary = usage[name]
            if summary.is_output:
                diagnostics.error(
                    f"module {module.name!r} reads its output stream {name!r}; output "
                    "streams are write-only",
                    location,
                )
            summary.reads += 1
            summary.read_counts.append(count)
        else:
            if count != 1:
                diagnostics.error(
                    f"the colon notation can only be applied to streams, not to local "
                    f"variable {name!r}",
                    location,
                )
            if name not in assigned:
                # Reading an unassigned local is allowed for stateful C
                # functions' outputs but is suspicious for plain variables.
                diagnostics.warning(
                    f"local variable {name!r} may be read before it is written in module "
                    f"{module.name!r}",
                    location,
                )

    def note_write(name: str, count: int, location) -> None:
        if name not in declared:
            diagnostics.error(
                f"module {module.name!r} writes undeclared name {name!r}", location
            )
            return
        if name in usage:
            summary = usage[name]
            if not summary.is_output:
                diagnostics.error(
                    f"module {module.name!r} writes its input stream {name!r}; input "
                    "streams are read-only",
                    location,
                )
            summary.writes += 1
            summary.write_counts.append(count)
        else:
            if count != 1:
                diagnostics.error(
                    f"the colon notation can only be applied to streams, not to local "
                    f"variable {name!r}",
                    location,
                )
            assigned.add(name)

    def visit(statements: Sequence[ast.Statement]) -> None:
        for statement in statements:
            location = statement.location
            if isinstance(statement, ast.Assignment):
                for name, count in ast.expression_stream_reads(statement.expression):
                    note_read(name, count, location)
                for expr_call in _function_names(statement.expression):
                    functions.add(expr_call)
                note_write(statement.target, 1, location)
            elif isinstance(statement, ast.FunctionCall):
                functions.add(statement.name)
                for argument in statement.arguments:
                    if isinstance(argument, ast.InArgument):
                        for name, count in ast.expression_stream_reads(argument.expression):
                            note_read(name, count, location)
                        for expr_call in _function_names(argument.expression):
                            functions.add(expr_call)
                    else:
                        note_write(argument.name, argument.count, location)
            elif isinstance(statement, ast.IfStatement):
                for name, count in ast.expression_stream_reads(statement.condition):
                    note_read(name, count, location)
                visit(statement.then_body)
                visit(statement.else_body)
            elif isinstance(statement, ast.SwitchStatement):
                for name, count in ast.expression_stream_reads(statement.selector):
                    note_read(name, count, location)
                for case in statement.cases:
                    visit(case.body)
                visit(statement.default)
            elif isinstance(statement, ast.LoopStatement):
                visit(statement.body)
                for name, count in ast.expression_stream_reads(statement.condition):
                    note_read(name, count, location)

    visit(module.body)

    # Every output stream must be written on all paths of the module body and
    # of every loop body (Sec. IV-A: "Output streams have to be written every
    # loop iteration").
    loops = top_level_loops(module)
    for name, param in params.items():
        if not param.is_output:
            continue
        if not writes_on_all_paths(module.body, name):
            diagnostics.error(
                f"output stream {name!r} of module {module.name!r} is not written on every "
                "control path",
                module.location,
            )
        for index, loop in enumerate(loops):
            if not writes_on_all_paths(loop.body, name):
                diagnostics.error(
                    f"output stream {name!r} of module {module.name!r} is not written in "
                    f"every iteration of loop #{index}",
                    loop.location,
                )

    # Streams (inputs and outputs) should be accessed in every loop iteration
    # so that the periodic abstraction of Sec. V-B is valid; inputs that are
    # not accessed in some loop produce a warning (the abstraction is then
    # conservative only if the stream tolerates it).
    for name, param in params.items():
        if param.is_output:
            continue
        for index, loop in enumerate(loops):
            if not accesses_on_all_paths(loop.body, name):
                diagnostics.warning(
                    f"input stream {name!r} of module {module.name!r} is not accessed in "
                    f"every iteration of loop #{index}; the derived temporal model assumes "
                    "periodic accesses",
                    loop.location,
                )

    if not module.body:
        diagnostics.warning(f"module {module.name!r} has an empty body", module.location)

    return usage, functions


def _function_names(expression: ast.Expression) -> List[str]:
    names: List[str] = []
    if isinstance(expression, ast.FunctionExpr):
        names.append(expression.name)
        for argument in expression.arguments:
            if isinstance(argument, ast.InArgument):
                names.extend(_function_names(argument.expression))
    elif isinstance(expression, ast.BinaryOp):
        names.extend(_function_names(expression.left))
        names.extend(_function_names(expression.right))
    elif isinstance(expression, ast.UnaryOp):
        names.extend(_function_names(expression.operand))
    return names


def _check_instantiation_acyclic(
    program: ast.Program,
    module_table: Mapping[str, ast.Module],
    diagnostics: DiagnosticCollector,
) -> None:
    """The module instantiation graph must be acyclic (no recursion)."""
    graph: Dict[str, List[str]] = {}
    for module in program.modules:
        if isinstance(module, ast.ParallelModule):
            graph[module.name] = [
                call.module for call in module.calls if call.module in module_table
            ]
        else:
            graph[module.name] = []

    WHITE, GREY, BLACK = 0, 1, 2
    color = {name: WHITE for name in graph}

    def dfs(node: str, stack: List[str]) -> None:
        color[node] = GREY
        for neighbour in graph.get(node, []):
            if color.get(neighbour, WHITE) == WHITE:
                dfs(neighbour, stack + [neighbour])
            elif color.get(neighbour) == GREY:
                cycle = " -> ".join(stack + [neighbour])
                diagnostics.error(
                    f"recursive module instantiation is not allowed: {cycle}"
                )
        color[node] = BLACK

    for name in graph:
        if color[name] == WHITE:
            dfs(name, [name])
