"""Tests for the CTA data model (components, ports, connections, buffers)."""

from fractions import Fraction

import pytest

from repro.cta import BufferParameter, Component, CTAModel, PortRef
from repro.cta.model import Connection


def small_model():
    model = CTAModel("m")
    a = model.new_component("a", kind="task")
    b = model.new_component("b", kind="task")
    a.add_port("out", max_rate=10)
    b.add_port("in", max_rate=10)
    model.connect(a.port_ref("out"), b.port_ref("in"), epsilon=Fraction(1, 10))
    return model, a, b


class TestComponentStructure:
    def test_paths(self):
        model, a, b = small_model()
        assert a.path() == ("m", "a")
        assert model.path() == ("m",)

    def test_duplicate_port_rejected(self):
        model, a, _ = small_model()
        with pytest.raises(ValueError):
            a.add_port("out")

    def test_duplicate_child_rejected(self):
        model, _, _ = small_model()
        with pytest.raises(ValueError):
            model.new_component("a")

    def test_reparent_rejected(self):
        model, a, _ = small_model()
        other = CTAModel("other")
        with pytest.raises(ValueError):
            other.add_component(a)

    def test_port_ref_unknown(self):
        _, a, _ = small_model()
        with pytest.raises(ValueError):
            a.port_ref("nope")

    def test_walk_and_all_ports(self):
        model, _, _ = small_model()
        assert len(list(model.walk())) == 3
        assert len(model.all_ports()) == 2
        assert len(model.all_connections()) == 1

    def test_find(self):
        model, a, _ = small_model()
        assert model.find(["a"]) is a

    def test_summary_mentions_components(self):
        model, _, _ = small_model()
        text = model.summary()
        assert "task a" in text
        assert "task b" in text


class TestPorts:
    def test_fixed_above_max_rejected(self):
        model = CTAModel("m")
        c = model.new_component("c")
        with pytest.raises(ValueError):
            c.add_port("p", max_rate=5, fixed_rate=10)

    def test_negative_rate_rejected(self):
        model = CTAModel("m")
        c = model.new_component("c")
        with pytest.raises(ValueError):
            c.add_port("p", max_rate=-1)


class TestConnections:
    def test_gamma_positive(self):
        model, a, b = small_model()
        with pytest.raises(ValueError):
            model.connect(a.port_ref("out"), b.port_ref("in"), gamma=0)

    def test_delay_with_buffer(self):
        buffer = BufferParameter("buf", minimum=2, value=5)
        connection = Connection(
            PortRef(("m", "a"), "out"),
            PortRef(("m", "b"), "in"),
            phi=Fraction(1),
            buffer=buffer,
        )
        # effective phi = 1 - 5 = -4; delay at rate 2 = -2
        assert connection.effective_phi() == -4
        assert connection.delay(2) == -2

    def test_unsized_buffer_raises(self):
        buffer = BufferParameter("buf")
        connection = Connection(
            PortRef(("m", "a"), "out"), PortRef(("m", "b"), "in"), buffer=buffer
        )
        with pytest.raises(ValueError):
            connection.effective_phi()

    def test_all_buffers_deduplicated(self):
        model, a, b = small_model()
        buffer = BufferParameter("shared")
        model.connect(a.port_ref("out"), b.port_ref("in"), buffer=buffer)
        model.connect(b.port_ref("in"), a.port_ref("out"), buffer=buffer)
        assert model.all_buffers() == [buffer]


class TestBufferParameter:
    def test_resolved_unsized(self):
        with pytest.raises(ValueError):
            BufferParameter("b").resolved()

    def test_value_below_minimum_rejected(self):
        with pytest.raises(ValueError):
            BufferParameter("b", minimum=3, value=2)

    def test_resolved(self):
        assert BufferParameter("b", minimum=1, value=4).resolved() == 4
