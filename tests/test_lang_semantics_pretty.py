"""Tests for OIL semantic validation and the pretty printer."""

import pytest

from repro.lang import (
    BlackBoxModule,
    BlackBoxPort,
    OilSemanticError,
    analyze_program,
    format_program,
    parse_program,
)
from repro.apps.modal_audio import MUTE_OIL_SOURCE, TWO_MODE_OIL_SOURCE
from repro.apps.pal_decoder import PalDecoderApp
from repro.apps.producer_consumer import QUICKSTART_OIL_SOURCE
from repro.apps.rate_converter import FIG2_OIL_SOURCE


def errors_of(source, boxes=None):
    program = parse_program(source)
    analysis = analyze_program(program, boxes or [])
    return [d.message for d in analysis.diagnostics.errors]


class TestValidPrograms:
    @pytest.mark.parametrize(
        "source",
        [FIG2_OIL_SOURCE, QUICKSTART_OIL_SOURCE, MUTE_OIL_SOURCE, TWO_MODE_OIL_SOURCE],
        ids=["fig2", "quickstart", "mute", "two-mode"],
    )
    def test_shipped_programs_are_clean(self, source):
        assert errors_of(source) == []

    def test_pal_program_with_black_boxes(self):
        app = PalDecoderApp(scale=1000)
        assert errors_of(app.source_text(), app.black_boxes()) == []

    def test_pal_program_without_black_boxes_fails(self):
        app = PalDecoderApp(scale=1000)
        messages = errors_of(app.source_text())
        assert any("unknown module" in m for m in messages)


class TestModuleCalls:
    def test_unknown_module(self):
        messages = errors_of("mod par Top(){ fifo int x; Ghost(out x) }")
        assert any("unknown module" in m for m in messages)

    def test_arity_mismatch(self):
        source = """
        mod seq S(int a, out int b){ loop{ f(a, out b); } while(1); }
        mod par Top(){ fifo int x; S(out x) }
        """
        assert any("arguments" in m for m in errors_of(source))

    def test_direction_mismatch(self):
        source = """
        mod seq S(int a, out int b){ loop{ f(a, out b); } while(1); }
        mod par Top(){ fifo int x, y; S(out x, out y) }
        """
        assert any("input argument" in m for m in errors_of(source))

    def test_recursive_instantiation(self):
        source = """
        mod par A(){ B() }
        mod par B(){ A() }
        """
        assert any("recursive" in m.lower() for m in errors_of(source))

    def test_self_instantiation(self):
        assert any("itself" in m for m in errors_of("mod par A(){ A() }"))


class TestStreamRules:
    def test_fifo_multiple_writers(self):
        source = """
        mod seq P(out int o){ loop{ f(out o); } while(1); }
        mod par Top(){ fifo int x; P(out x) || P(out x) }
        """
        assert any("multiple writers" in m for m in errors_of(source))

    def test_fifo_without_writer(self):
        source = """
        mod seq C(int i){ loop{ f(i); } while(1); }
        mod par Top(){ fifo int x; C(x) }
        """
        assert any("no writer" in m for m in errors_of(source))

    def test_source_cannot_be_written(self):
        source = """
        mod seq P(out int o){ loop{ f(out o); } while(1); }
        mod par Top(){ source int s = gen() @ 1 kHz; P(out s) }
        """
        assert any("sources are produced" in m for m in errors_of(source))

    def test_sink_must_be_written(self):
        source = "mod par Top(){ sink int s = put() @ 1 kHz; }"
        assert any("never written" in m for m in errors_of(source))

    def test_latency_requires_sources_or_sinks(self):
        source = """
        mod seq P(out int o){ loop{ f(out o); } while(1); }
        mod seq C(int i){ loop{ g(i); } while(1); }
        mod par Top(){ fifo int x; start x 1 ms after x; P(out x) || C(x) }
        """
        assert any("not a source or sink" in m for m in errors_of(source))


class TestSequentialRules:
    def test_undeclared_name(self):
        source = "mod seq S(out int o){ loop{ o = f(ghost); } while(1); }"
        assert any("undeclared" in m for m in errors_of(source))

    def test_input_stream_not_writable(self):
        source = "mod seq S(int i, out int o){ loop{ i = f(); o = g(); } while(1); }"
        assert any("read-only" in m for m in errors_of(source))

    def test_output_stream_not_readable(self):
        source = "mod seq S(out int o){ loop{ o = f(o); } while(1); }"
        assert any("write-only" in m for m in errors_of(source))

    def test_output_written_on_every_path(self):
        source = """
        mod seq S(int i, out int o){
          loop{ if (i > 0) { o = f(); } } while(1);
        }
        """
        assert any("not written" in m for m in errors_of(source))

    def test_output_written_in_both_branches_is_ok(self):
        source = """
        mod seq S(int i, out int o){
          loop{ if (i > 0) { o = f(); } else { o = g(); } } while(1);
        }
        """
        assert errors_of(source) == []

    def test_switch_all_cases_write(self):
        source = """
        mod seq S(int i, out int o){
          loop{ switch(i) case 0 { o = f(); } default { o = g(); } } while(1);
        }
        """
        assert errors_of(source) == []

    def test_colon_on_local_variable_rejected(self):
        source = "mod seq S(out int o){ int y; loop{ y = f(); o = g(y:2); } while(1); }"
        assert any("colon notation" in m for m in errors_of(source))

    def test_strict_mode_raises(self):
        program = parse_program("mod seq S(out int o){ loop{ o = f(ghost); } while(1); }")
        with pytest.raises(OilSemanticError):
            analyze_program(program, strict=True)

    def test_stream_usage_summary(self):
        program = parse_program(
            "mod seq S(sample i, out sample o){ loop{ f(i:25, out o:10); } while(1); }"
        )
        analysis = analyze_program(program)
        usage = analysis.stream_usage["S"]
        assert usage["i"].max_read_count == 25
        assert usage["o"].max_write_count == 10
        assert analysis.functions["S"] == {"f"}

    def test_input_not_accessed_every_loop_warns(self):
        source = """
        mod seq S(int i, int j, out int o){
          loop{ if (j > 0) { o = f(i); } else { o = g(j); } } while(1);
        }
        """
        program = parse_program(source)
        analysis = analyze_program(program)
        assert any("not accessed" in d.message for d in analysis.diagnostics.warnings)


class TestPrettyPrinter:
    @pytest.mark.parametrize(
        "source",
        [FIG2_OIL_SOURCE, QUICKSTART_OIL_SOURCE, MUTE_OIL_SOURCE, TWO_MODE_OIL_SOURCE],
        ids=["fig2", "quickstart", "mute", "two-mode"],
    )
    def test_round_trip(self, source):
        program = parse_program(source)
        printed = format_program(program)
        reparsed = parse_program(printed)
        assert [m.name for m in reparsed.modules] == [m.name for m in program.modules]
        # Round-tripping again is a fixed point.
        assert format_program(reparsed) == printed

    def test_pal_round_trip(self):
        app = PalDecoderApp(scale=1000)
        program = parse_program(app.source_text())
        printed = format_program(program)
        reparsed = parse_program(printed)
        assert reparsed.module("Splitter").calls == program.module("Splitter").calls

    def test_frequencies_rendered_with_units(self):
        app = PalDecoderApp(scale=1)
        printed = format_program(parse_program(app.source_text()))
        assert "6.4 MHz" in printed
        assert "32 kHz" in printed
