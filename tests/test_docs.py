"""The docs stay true.

Two enforcement mechanisms:

* **Registry sync** -- ``docs/registry.md`` is the one documented table of
  every stable ``rule_id`` and ``warning_code``.  The in-source registries
  are the ``rule_id = "..."`` declarations under ``src/repro/rules/builtin``
  (parsed from source, so a fence-registered throwaway rule cannot leak in)
  and :data:`repro.util.runwarnings.WARNING_CODES`.  Adding a code or rule
  without documenting it -- or documenting one that does not exist -- fails
  here.
* **Fence execution** -- every ```` ```python ```` fence in ``docs/*.md``
  and ``README.md`` is executed (cumulatively per file, so later fences may
  build on earlier ones).  A fence preceded by an ``<!-- doc-exec: skip -->``
  marker line is rendered but not executed (used for deliberately partial
  snippets, e.g. the ``@register_rule`` sketch that would pollute the global
  registry).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import List, Set, Tuple

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
BUILTIN = REPO / "src" / "repro" / "rules" / "builtin"
SKIP_MARKER = "<!-- doc-exec: skip -->"

DOC_FILES = sorted(DOCS.glob("*.md")) + [REPO / "README.md"]


# --------------------------------------------------------------------------
# Registry sync
# --------------------------------------------------------------------------
def builtin_rule_ids_from_source() -> Set[str]:
    """Every ``rule_id = "..."`` declared in the built-in rule modules."""
    ids: Set[str] = set()
    for path in sorted(BUILTIN.glob("*.py")):
        for node in ast.walk(ast.parse(path.read_text(encoding="utf-8"))):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "rule_id"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    ids.add(stmt.value.value)
    return ids


#: First-column backticked tokens of the registry.md tables.
TABLE_TOKEN = re.compile(r"^\|\s*`([a-z0-9.-]+)`", re.MULTILINE)


def documented_tokens() -> Set[str]:
    return set(TABLE_TOKEN.findall((DOCS / "registry.md").read_text(encoding="utf-8")))


class TestRegistryDocumentation:
    def test_tables_match_source(self):
        from repro.rules import INTERNAL_ERROR_RULE_ID
        from repro.util.runwarnings import WARNING_CODES

        expected = builtin_rule_ids_from_source() | {INTERNAL_ERROR_RULE_ID}
        expected |= set(WARNING_CODES)
        documented = documented_tokens()
        undocumented = expected - documented
        stale = documented - expected
        assert not undocumented, (
            f"exists in source but missing from docs/registry.md: {sorted(undocumented)}"
        )
        assert not stale, (
            f"documented in docs/registry.md but absent from source: {sorted(stale)}"
        )

    def test_source_declarations_match_live_registry(self):
        """The parsed declarations are the registry (guards the parser)."""
        from repro.rules import all_rule_classes

        live = {
            cls.rule_id
            for cls in all_rule_classes()
            # ignore throwaway rules another test may have registered
            if not cls.rule_id.startswith("local.")
        }
        assert live == builtin_rule_ids_from_source()

    def test_every_warning_code_construction_is_registered(self):
        """Any ``RunWarning(msg, "code")`` / ``code="..."`` call site in the
        package uses a code registered in WARNING_CODES."""
        from repro.util.runwarnings import WARNING_CODES

        used: Set[str] = set()
        for path in sorted((REPO / "src" / "repro").rglob("*.py")):
            if path.name == "runwarnings.py":
                continue
            for node in ast.walk(ast.parse(path.read_text(encoding="utf-8"))):
                if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
                    continue
                if node.func.id != "RunWarning":
                    continue
                if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
                    used.add(node.args[1].value)
                for keyword in node.keywords:
                    if keyword.arg == "code" and isinstance(keyword.value, ast.Constant):
                        used.add(keyword.value.value)
        used.discard("")
        unregistered = used - set(WARNING_CODES)
        assert not unregistered, (
            f"RunWarning codes constructed but not in WARNING_CODES: {sorted(unregistered)}"
        )


# --------------------------------------------------------------------------
# Fence execution
# --------------------------------------------------------------------------
def python_fences(path: Path) -> List[Tuple[int, str]]:
    """``(first_line, code)`` for every executable python fence in *path*."""
    fences: List[Tuple[int, str]] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    skip_next = False
    index = 0
    while index < len(lines):
        stripped = lines[index].strip()
        if stripped == SKIP_MARKER:
            skip_next = True
        elif stripped.startswith("```python"):
            start = index + 1
            end = start
            while end < len(lines) and lines[end].strip() != "```":
                end += 1
            assert end < len(lines), f"{path.name}: unterminated fence at line {index + 1}"
            if not skip_next:
                fences.append((start + 1, "\n".join(lines[start:end])))
            skip_next = False
            index = end
        index += 1
    return fences


class TestDocFencesExecute:
    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_fences_execute(self, path, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # fences must not depend on / write to the cwd
        fences = python_fences(path)
        namespace = {"__name__": f"docfence_{path.stem.replace('-', '_')}"}
        for first_line, code in fences:
            padded = "\n" * (first_line - 1) + code  # real line numbers in tracebacks
            exec(compile(padded, str(path), "exec"), namespace)

    def test_docs_exist_and_have_executable_fences(self):
        assert (DOCS / "rules.md").exists()
        assert (DOCS / "fast-forward.md").exists()
        assert (DOCS / "registry.md").exists()
        assert (REPO / "README.md").exists()
        assert python_fences(DOCS / "rules.md"), "rules.md lost its executable examples"
        assert python_fences(DOCS / "fast-forward.md")

    def test_skip_marker_is_honoured(self):
        skipped = DOCS / "rules.md"
        text = skipped.read_text(encoding="utf-8")
        assert SKIP_MARKER in text  # the @register_rule sketch stays non-executed
        executed = [code for _, code in python_fences(skipped)]
        assert not any("@register_rule" in code for code in executed)
