"""Every deprecated pre-facade helper must emit a ``DeprecationWarning``
naming its facade replacement.

The aliases are kept so pre-``repro.api`` code keeps working; the warning --
with the *correct* replacement spelled out -- is the only signpost users get,
so each call site of :func:`repro.util.deprecation.warn_deprecated` is pinned
here (the messages were previously untested and a renamed facade entry point
could silently point users at nothing).
"""

import re
import warnings
from fractions import Fraction

import pytest

from repro.apps.modal_audio import simulate_mute, simulate_two_mode
from repro.apps.pal_decoder import PalDecoderApp
from repro.apps.producer_consumer import compile_quickstart, simulate_quickstart
from repro.util.deprecation import warn_deprecated


def assert_single_deprecation(recorded, old, replacement):
    """Exactly one DeprecationWarning, naming both the alias and the
    facade replacement."""
    deprecations = [w for w in recorded if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1, [str(w.message) for w in recorded]
    message = str(deprecations[0].message)
    assert message == f"{old} is deprecated; use {replacement} instead"


class TestWarnDeprecated:
    def test_message_format_and_category(self):
        with pytest.warns(
            DeprecationWarning,
            match=re.escape("old_helper() is deprecated; use repro.api.New instead"),
        ):
            warn_deprecated("old_helper()", "repro.api.New", stacklevel=2)


class TestQuickstartAliases:
    def test_compile_quickstart_warns_with_replacement(self):
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            compile_quickstart()
        assert_single_deprecation(
            recorded, "compile_quickstart()", 'repro.api.Program.from_app("quickstart")'
        )

    def test_simulate_quickstart_warns_with_replacement(self, quickstart_sized):
        result, sizing = quickstart_sized
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            simulation, trace = simulate_quickstart(
                Fraction(1, 100), result=result, sizing=sizing
            )
        assert_single_deprecation(
            recorded,
            "simulate_quickstart()",
            'repro.api.Program.from_app("quickstart").analyze().run(...)',
        )
        assert len(trace.firings) > 0  # the alias still actually works


class TestModalAliases:
    def test_simulate_mute_warns_with_replacement(self, mute_sized):
        result, sizing = mute_sized
        signal = [0.5] * 64
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            simulate_mute(Fraction(1, 100), signal, result=result, sizing=sizing)
        assert_single_deprecation(
            recorded,
            "simulate_mute()",
            'repro.api.Program.from_app("modal_mute").analyze().run(...)',
        )

    def test_simulate_two_mode_warns_with_replacement(self, two_mode_sized):
        result, sizing = two_mode_sized
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            simulate_two_mode(Fraction(1, 100), result=result, sizing=sizing)
        assert_single_deprecation(
            recorded,
            "simulate_two_mode()",
            'repro.api.Program.from_app("modal_two_mode").analyze().run(...)',
        )


class TestBareIteratorSignals:
    def test_as_stimulus_pins_bare_iterator_message(self):
        from repro.runtime.sources import as_stimulus

        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            as_stimulus(iter([1.0, 2.0]))
        assert_single_deprecation(
            recorded,
            "a bare-Iterator source signal",
            "repro.runtime.sources.GeneratorStimulus",
        )

    def test_source_driver_warns_once_per_bare_iterator_signal(self, quickstart_sized):
        result, sizing = quickstart_sized
        from repro.api import Program

        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            Program.from_app("quickstart").analyze().run(
                Fraction(1, 100), signals={"samples": iter([1.0] * 100)}
            )
        assert_single_deprecation(
            recorded,
            "a bare-Iterator source signal",
            "repro.runtime.sources.GeneratorStimulus",
        )


class TestPalDecoderAliases:
    def test_analyze_warns_with_replacement(self, pal_app):
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            result, sizing = pal_app.analyze()
        assert_single_deprecation(
            recorded,
            "PalDecoderApp.analyze()",
            'repro.api.Program.from_app("pal_decoder").analyze()',
        )
        assert sizing.capacities  # the alias still returns real results

    def test_simulate_warns_with_replacement(self, pal_sized):
        result, sizing = pal_sized
        app = PalDecoderApp(scale=1000)
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            app.simulate(Fraction(1, 100), result=result, sizing=sizing)
        assert_single_deprecation(
            recorded,
            "PalDecoderApp.simulate()",
            'repro.api.Program.from_app("pal_decoder").analyze().run(...)',
        )
