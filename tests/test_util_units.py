"""Tests for frequency/time unit handling."""

from fractions import Fraction

import pytest

from repro.util.units import (
    Frequency,
    TimeValue,
    hz,
    khz,
    mhz,
    ms,
    parse_frequency,
    parse_time,
    seconds,
    us,
)


class TestFrequency:
    def test_constructors(self):
        assert hz(100).hertz == 100
        assert khz(32).hertz == 32000
        assert mhz(Fraction(32, 5)).hertz == 6_400_000

    def test_period(self):
        assert khz(1).period.seconds == Fraction(1, 1000)

    def test_ratio_of_frequencies(self):
        assert mhz(4) / mhz(Fraction(32, 5)) == Fraction(10, 16)

    def test_scale(self):
        assert (khz(1) * 2).hertz == 2000

    def test_positive_required(self):
        with pytest.raises(ValueError):
            Frequency(Fraction(0))

    def test_ordering(self):
        assert khz(1) < mhz(1)


class TestTimeValue:
    def test_constructors(self):
        assert ms(5).seconds == Fraction(5, 1000)
        assert us(250).seconds == Fraction(1, 4000)
        assert seconds(2).seconds == 2

    def test_arithmetic(self):
        assert (ms(5) + ms(3)).seconds == Fraction(8, 1000)
        assert (ms(5) - ms(3)).seconds == Fraction(2, 1000)
        assert (-ms(5)).seconds == Fraction(-5, 1000)

    def test_negative_allowed(self):
        assert TimeValue(Fraction(-1, 100)).seconds < 0

    def test_division_by_time(self):
        assert ms(10) / ms(5) == 2

    def test_to_ms(self):
        assert ms(5).to_ms() == pytest.approx(5.0)


class TestParsing:
    def test_parse_frequency_mhz(self):
        assert parse_frequency("6.4 MHz").hertz == 6_400_000

    def test_parse_frequency_khz_nospace(self):
        assert parse_frequency("32kHz").hertz == 32000

    def test_parse_frequency_invalid(self):
        with pytest.raises(ValueError):
            parse_frequency("12 parsec")

    def test_parse_time(self):
        assert parse_time("5 ms").seconds == Fraction(1, 200)
        assert parse_time("0.5s").seconds == Fraction(1, 2)

    def test_parse_time_invalid(self):
        with pytest.raises(ValueError):
            parse_time("three days")
